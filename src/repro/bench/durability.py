"""Durability benchmark logic (shared by CLI and suite).

What this measures
------------------
The durability layer's three cost/correctness claims
(``docs/DURABILITY.md``):

1. **Fsync policy is the write-path knob.**  ``commit`` pays one
   ``fsync`` per logged verb (the durability the recovery invariant is
   stated against); ``batch`` amortizes it with group commit; ``none``
   leaves syncing to the OS.  The profile times the same append
   sequence under all three and reports the group-commit speedup — the
   cost of per-verb durability, measured instead of assumed.
2. **Recovery replay is fast relative to the rebuild it avoids.**
   Replaying the log onto the loaded snapshot re-runs real maintenance
   verbs (index builds included), so replay throughput in verbs/second
   is the honest recovery-time estimate.  The profile asserts the
   recovered index is *fingerprint-identical* to the uncrashed primary
   — the crash-consistency invariant, checked on every bench run.
3. **A follower converges.**  A replica attached to the snapshot tails
   the same log; the profile times catch-up, requires the final
   replication lag to be zero, and byte-compares all eight
   ``QueryRequest`` kinds (:func:`repro.bench.sharding.parity_requests`)
   between primary and follower at the same generation.

Everything runs in a throwaway directory on synthetic DBLP data, so the
profile is deterministic up to wall-clock noise.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List

from repro.bench.incremental import added_documents
from repro.bench.reporting import BenchTable
from repro.bench.sharding import _response_signature, parity_requests
from repro.collection.io import load_collection, save_collection
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.datasets.dblp import DblpSpec, generate_dblp

#: appends per fsync policy in the write-path comparison; small enough
#: to keep the bench quick, large enough to amortize setup noise
FSYNC_APPENDS = 48


def _fsync_policy_profile(scratch: Path, payload: Dict) -> Dict:
    """Time the same append sequence under each fsync policy."""
    from repro.wal import WriteAheadLog

    results: Dict[str, Dict] = {}
    for policy in ("commit", "batch", "none"):
        path = scratch / f"policy-{policy}.log"
        wal = WriteAheadLog(path, base_generation=0, fsync=policy)
        started = time.perf_counter()
        for i in range(FSYNC_APPENDS):
            wal.append("add", i + 1, payload)
        wal.sync()
        elapsed = time.perf_counter() - started
        wal.close()
        results[policy] = {
            "appends": FSYNC_APPENDS,
            "seconds": elapsed,
            "per_append_ms": elapsed / FSYNC_APPENDS * 1000.0,
            "appends_per_second": FSYNC_APPENDS / elapsed if elapsed else 0.0,
        }
    return results


def profile_durability(
    documents: int = 24, mutations: int = 12, seed: int = 7
) -> Dict:
    """WAL write cost, recovery replay throughput, follower catch-up.

    Returns a JSON-ready dict (``BENCH_durability.json``); the floors
    ``tools/check_bench_regression.py`` guards live in the ``recovery``
    and ``follower`` sections.
    """
    from repro.wal import (
        FileWalSource,
        FollowerFlix,
        read_wal,
        recover_flix,
        replay_records,
        wal_path_for,
    )
    from repro.core.persistence import load_flix

    if mutations < 4:
        raise ValueError("mutations must be >= 4 (adds + batch + remove)")
    scratch = Path(tempfile.mkdtemp(prefix="flix-durability-"))
    try:
        coll_dir = scratch / "collection"
        index_dir = scratch / "index"
        collection = generate_dblp(DblpSpec(documents=documents, seed=seed))
        save_collection(collection, coll_dir)
        primary = Flix.build(collection, FlixConfig.naive())
        primary.save(index_dir)
        wal = primary.enable_wal(wal_path_for(index_dir))

        # --- the logged mutation history (adds + a batch + a remove) --
        new_docs = added_documents(mutations)
        started = time.perf_counter()
        for document in new_docs[: mutations - 3]:
            primary.add_document(document)
        primary.add_documents(new_docs[mutations - 3 : mutations - 1])
        primary.remove_document(new_docs[0].name)
        append_seconds = time.perf_counter() - started
        live_fingerprint = primary.index_fingerprint()
        live_generation = primary.layout_generation

        # --- fsync policy comparison over one real add payload --------
        from repro.wal.recovery import document_to_payload

        one_payload = {
            "documents": [document_to_payload(new_docs[0])]
        }
        policies = _fsync_policy_profile(scratch, one_payload)
        batching_speedup = (
            policies["commit"]["seconds"] / policies["batch"]["seconds"]
            if policies["batch"]["seconds"]
            else 0.0
        )

        # --- crash recovery: snapshot + replay-to-tail ----------------
        recovery_collection = load_collection(coll_dir)
        load_started = time.perf_counter()
        recovered = load_flix(recovery_collection, index_dir, verify=True)
        load_seconds = time.perf_counter() - load_started
        records, discarded = read_wal(wal_path_for(index_dir))
        replay_started = time.perf_counter()
        applied = replay_records(recovered, records)
        replay_seconds = time.perf_counter() - replay_started
        recovery = {
            "records": applied,
            "snapshot_load_seconds": load_seconds,
            "replay_seconds": replay_seconds,
            "records_per_second": (
                applied / replay_seconds if replay_seconds else 0.0
            ),
            "discarded_bytes": discarded,
            "fingerprint_match": (
                recovered.index_fingerprint() == live_fingerprint
            ),
            "generation_match": (
                recovered.layout_generation == live_generation
            ),
        }

        # --- follower catch-up + eight-kind parity --------------------
        follower_collection = load_collection(coll_dir)
        follower_flix = load_flix(follower_collection, index_dir, verify=True)
        follower = FollowerFlix(
            follower_flix, FileWalSource(wal_path_for(index_dir))
        )
        catchup_started = time.perf_counter()
        follower_applied = follower.poll()
        catchup_seconds = time.perf_counter() - catchup_started
        kinds: List[str] = []
        parity = True
        for name, request in parity_requests(collection):
            kinds.append(name)
            primary_sig = _response_signature(primary.query(request))
            follower_sig = _response_signature(follower.query(request))
            if primary_sig != follower_sig:
                parity = False
        follower_profile = {
            "records_applied": follower_applied,
            "catchup_seconds": catchup_seconds,
            "final_lag": follower.replication_lag,
            "generation": follower.generation,
            "parity": parity,
            "kinds": kinds,
        }
        follower.close()

        return {
            "documents": documents,
            "mutations": mutations,
            "primary": {
                "generation": live_generation,
                "logged_append_seconds": append_seconds,
            },
            "fsync_policies": policies,
            "fsync_batching_speedup": batching_speedup,
            "recovery": recovery,
            "follower": follower_profile,
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def render_durability_profile(profile: Dict) -> str:
    """The human-readable rendering of :func:`profile_durability`."""
    policy_table = BenchTable(
        f"WAL append cost by fsync policy ({FSYNC_APPENDS} appends)",
        ["policy", "per append (ms)", "appends/s"],
    )
    for policy, entry in profile["fsync_policies"].items():
        policy_table.add_row(
            policy,
            f"{entry['per_append_ms']:.3f}",
            f"{entry['appends_per_second']:.0f}",
        )
    recovery = profile["recovery"]
    follower = profile["follower"]
    lines = [
        policy_table.render(),
        f"group-commit speedup over per-commit fsync: "
        f"{profile['fsync_batching_speedup']:.2f}x",
        "",
        f"recovery: replayed {recovery['records']} record(s) in "
        f"{recovery['replay_seconds']:.3f}s "
        f"({recovery['records_per_second']:.1f} records/s), "
        f"fingerprint match: {recovery['fingerprint_match']}",
        f"follower: applied {follower['records_applied']} record(s) in "
        f"{follower['catchup_seconds']:.3f}s, final lag "
        f"{follower['final_lag']}, eight-kind parity: {follower['parity']}",
    ]
    return "\n".join(lines)


__all__ = [
    "FSYNC_APPENDS",
    "profile_durability",
    "render_durability_profile",
]
