"""Measurement utilities shared by all benchmark suites.

The six systems of section 6 are reified as :class:`SystemUnderTest`
instances: the two monolithic comparators (HOPI, APEX over the complete
collection) and the four FliX configurations (PPO-naive, Maximal PPO,
HOPI-5000, HOPI-20000 — partition sizes scale with the collection so the
scaled-down default corpus keeps the same partitions-to-collection ratio
as the paper's 5,000/20,000 against 168,991 elements).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.collection.collection import NodeId, XmlCollection
from repro.core.api import QueryRequest
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.graph.closure import TransitiveClosure


@dataclass
class SystemUnderTest:
    """A named, built system exposing the common query API."""

    name: str
    flix: Flix

    @property
    def size_bytes(self) -> int:
        return self.flix.size_bytes()

    @property
    def build_seconds(self) -> float:
        return self.flix.report.total_seconds

    @property
    def build_phase_totals(self) -> Dict[str, float]:
        """Per-phase build seconds summed across meta documents."""
        return self.flix.report.phase_totals()


def paper_partition_sizes(collection: XmlCollection) -> Tuple[int, int]:
    """Scaled analogues of the paper's 5,000- and 20,000-node partitions.

    The paper used 5,000 and 20,000 nodes against 168,991 elements, i.e.
    roughly 3% and 12% of the collection.  We preserve those fractions so
    partition counts stay comparable at any corpus scale.
    """
    n = collection.node_count
    small = max(50, round(n * 5000 / 168991))
    large = max(4 * small, round(n * 20000 / 168991))
    return small, large


def build_all_systems(
    collection: XmlCollection,
    include_transitive_closure: bool = False,
) -> List[SystemUnderTest]:
    """Build the paper's full system lineup over ``collection``."""
    small, large = paper_partition_sizes(collection)
    systems = [
        SystemUnderTest("HOPI", Flix.build_monolithic(collection, "hopi")),
        SystemUnderTest("APEX", Flix.build_monolithic(collection, "apex")),
        SystemUnderTest("PPO-naive", Flix.build(collection, FlixConfig.naive())),
        SystemUnderTest(
            f"HOPI-{small}", Flix.build(collection, FlixConfig.unconnected_hopi(small))
        ),
        SystemUnderTest(
            f"HOPI-{large}", Flix.build(collection, FlixConfig.unconnected_hopi(large))
        ),
        SystemUnderTest(
            "MaximalPPO", Flix.build(collection, FlixConfig.maximal_ppo())
        ),
    ]
    if include_transitive_closure:
        systems.insert(
            0,
            SystemUnderTest(
                "TransitiveClosure",
                Flix.build_monolithic(collection, "transitive_closure"),
            ),
        )
    return systems


def profile_build(
    collection: XmlCollection,
    config: FlixConfig,
    jobs_options: Sequence[int] = (1, 4),
    repeats: int = 3,
) -> Dict:
    """Build ``collection`` under each jobs setting; return a comparison.

    Each setting is built ``repeats`` times and reported at its fastest
    wall-clock sample (best-of-N suppresses scheduler noise, which on
    small corpora easily exceeds the build itself).  The returned dict is
    JSON-serializable — ``benchmarks/bench_build_time.py`` writes it to
    ``BENCH_build_time.json``.

    Every run's index fingerprint is included: identical fingerprints
    across jobs settings are the determinism guarantee, so a speedup
    never comes at the price of a different index.  ``speedup`` is
    measured against the first jobs setting (the sequential baseline);
    values above 1.0 require actual spare cores — ``effective_cpus``
    records what the machine offered.
    """
    import os

    runs: List[Dict] = []
    for jobs in jobs_options:
        samples: List[float] = []
        flix: Optional[Flix] = None
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            flix = Flix.build(collection, config, jobs=jobs)
            samples.append(time.perf_counter() - started)
        assert flix is not None
        report = flix.report
        runs.append(
            {
                "jobs": jobs,
                "executor": report.executor,
                "wall_seconds": round(min(samples), 6),
                "samples": [round(s, 6) for s in samples],
                "meta_documents": len(report.meta_documents),
                "strategies": sorted(
                    {m.strategy for m in report.meta_documents}
                ),
                "index_bytes": report.total_index_bytes,
                "phase_totals": {
                    phase: round(seconds, 6)
                    for phase, seconds in report.phase_totals().items()
                },
                "fingerprint": flix.index_fingerprint(),
            }
        )
    baseline = runs[0]["wall_seconds"]
    for run in runs:
        run["speedup"] = round(baseline / max(run["wall_seconds"], 1e-9), 4)
    try:
        effective_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        effective_cpus = os.cpu_count() or 1
    return {
        "workload": {
            "documents": collection.document_count,
            "elements": collection.node_count,
            "links": collection.link_edge_count,
            "config": config.name,
            "partition_size": config.partition_size,
        },
        "repeats": max(1, repeats),
        "effective_cpus": effective_cpus,
        "deterministic": len({run["fingerprint"] for run in runs}) == 1,
        "runs": runs,
    }


def profile_query_overhead(
    collection: XmlCollection,
    config: FlixConfig,
    queries: int = 20,
    repeats: int = 5,
) -> Dict:
    """Measure query latency with observability on vs off.

    Builds the same configuration twice — once with
    ``observability=True``, once with ``observability=False`` — and runs
    an identical wildcard-descendants workload (the first ``queries``
    document roots, in sorted name order) against each, ``repeats``
    times.  Per mode the fastest full-workload sample is reported
    (best-of-N, as in :func:`profile_build`); samples alternate between
    the modes after a warm-up pass so clock drift hits both equally.

    Because the instrumented code path *is* the shipped code path, the
    disabled-mode run doubles as the "no worse than the uninstrumented
    seed" check: with the knob off every hot-loop branch reduces to a
    single attribute test, so its latency is the seed's latency up to
    measurement noise.  To make that noise visible the disabled mode is
    sampled as two interleaved series and the spread between them is
    reported as ``noise_pct`` — an overhead smaller than the noise floor
    is indistinguishable from zero.  The returned dict is
    JSON-serializable; ``benchmarks/bench_query_overhead.py`` writes it
    to ``BENCH_query_overhead.json``.
    """

    def build(enabled: bool) -> Flix:
        return Flix.build(collection, config.with_observability(enabled))

    starts = [
        collection.document_root(name)
        for name in sorted(collection.documents)[: max(1, queries)]
    ]

    def one_pass(flix: Flix) -> Tuple[float, int]:
        results = 0
        started = time.perf_counter()
        for start in starts:
            for _result in flix.query_stream(QueryRequest.descendants(start)):
                results += 1
        return time.perf_counter() - started, results

    flix_off = build(False)
    flix_on = build(True)
    # warm both systems, then sample them alternately: clock drift (CPU
    # frequency scaling, background load) hits all modes equally instead
    # of whichever mode happens to be measured last
    one_pass(flix_off)
    one_pass(flix_on)
    off_samples: List[float] = []
    off_again_samples: List[float] = []
    on_samples: List[float] = []
    off_results = on_results = 0
    for _ in range(max(1, repeats)):
        seconds, off_results = one_pass(flix_off)
        off_samples.append(seconds)
        seconds, on_results = one_pass(flix_on)
        on_samples.append(seconds)
        seconds, _ = one_pass(flix_off)
        off_again_samples.append(seconds)
    off_seconds = min(off_samples)
    off_again_seconds = min(off_again_samples)
    on_seconds = min(on_samples)
    assert on_results == off_results, "observability changed query results"

    base = max(min(off_seconds, off_again_seconds), 1e-9)
    return {
        "workload": {
            "documents": collection.document_count,
            "elements": collection.node_count,
            "links": collection.link_edge_count,
            "config": config.name,
            "queries": len(starts),
            "results_per_pass": off_results,
        },
        "repeats": max(1, repeats),
        "method": (
            "best-of-N wall clock over an identical wildcard-descendants "
            "workload, modes sampled alternately after a warm-up pass; "
            "observability=False is the seed-equivalent baseline (disabled "
            "instrumentation reduces to attribute tests), and a second "
            "interleaved disabled series bounds measurement noise"
        ),
        "disabled_seconds": round(off_seconds, 6),
        "disabled_rerun_seconds": round(off_again_seconds, 6),
        "enabled_seconds": round(on_seconds, 6),
        "noise_pct": round(
            abs(off_seconds - off_again_seconds) / base * 100.0, 3
        ),
        "disabled_regression_pct": round(
            (off_seconds - off_again_seconds) / base * 100.0, 3
        ),
        "enabled_overhead_pct": round((on_seconds - base) / base * 100.0, 3),
    }


def profile_fault_overhead(
    collection: XmlCollection,
    config: FlixConfig,
    queries: int = 20,
    repeats: int = 5,
) -> Dict:
    """Measure the idle cost of the resilience machinery.

    Builds the same configuration twice — once plain, once with a
    resilience config attached (``with_resilience()``) but **no faults
    injected** — and compares both build wall clock and an identical
    wildcard-descendants query workload, sampled alternately after a
    warm-up pass as in :func:`profile_query_overhead`.  The plain mode
    is sampled as two interleaved series whose spread (``noise_pct``)
    bounds measurement noise.

    With no faults the resilient wrapper's only query-side costs are
    attribute tests (budget checks against ``None`` limits, the
    completeness bookkeeping); the storage wrapper sits on the build
    path only.  Both builds must produce fingerprint-identical indexes —
    asserted here, since transparency is the wrapper's core contract.
    The returned dict is JSON-serializable;
    ``benchmarks/bench_fault_overhead.py`` writes it to
    ``BENCH_fault_overhead.json``.
    """

    def timed_build(resilient: bool) -> Tuple[Flix, float]:
        cfg = config.with_resilience() if resilient else config
        started = time.perf_counter()
        flix = Flix.build(collection, cfg)
        return flix, time.perf_counter() - started

    plain, plain_build_seconds = timed_build(False)
    guarded, guarded_build_seconds = timed_build(True)
    assert plain.index_fingerprint() == guarded.index_fingerprint(), (
        "resilience wrapper changed the built index"
    )

    starts = [
        collection.document_root(name)
        for name in sorted(collection.documents)[: max(1, queries)]
    ]

    def one_pass(flix: Flix) -> Tuple[float, int]:
        results = 0
        started = time.perf_counter()
        for start in starts:
            for _result in flix.pee.find_descendants(start):
                results += 1
        return time.perf_counter() - started, results

    one_pass(plain)
    one_pass(guarded)
    plain_samples: List[float] = []
    plain_again_samples: List[float] = []
    guarded_samples: List[float] = []
    plain_results = guarded_results = 0
    for _ in range(max(1, repeats)):
        seconds, plain_results = one_pass(plain)
        plain_samples.append(seconds)
        seconds, guarded_results = one_pass(guarded)
        guarded_samples.append(seconds)
        seconds, _ = one_pass(plain)
        plain_again_samples.append(seconds)
    plain_seconds = min(plain_samples)
    plain_again_seconds = min(plain_again_samples)
    guarded_seconds = min(guarded_samples)
    assert guarded_results == plain_results, (
        "resilience wrapper changed query results"
    )

    base = max(min(plain_seconds, plain_again_seconds), 1e-9)
    build_base = max(plain_build_seconds, 1e-9)
    return {
        "workload": {
            "documents": collection.document_count,
            "elements": collection.node_count,
            "links": collection.link_edge_count,
            "config": config.name,
            "queries": len(starts),
            "results_per_pass": plain_results,
        },
        "repeats": max(1, repeats),
        "method": (
            "best-of-N wall clock over an identical wildcard-descendants "
            "workload, plain vs resilience-enabled-but-idle (no injected "
            "faults), modes sampled alternately after a warm-up pass; a "
            "second interleaved plain series bounds measurement noise, "
            "and both builds are asserted fingerprint-identical"
        ),
        "fingerprint_identical": True,
        "plain_build_seconds": round(plain_build_seconds, 6),
        "resilient_build_seconds": round(guarded_build_seconds, 6),
        "build_overhead_pct": round(
            (guarded_build_seconds - plain_build_seconds)
            / build_base * 100.0,
            3,
        ),
        "plain_seconds": round(plain_seconds, 6),
        "plain_rerun_seconds": round(plain_again_seconds, 6),
        "resilient_seconds": round(guarded_seconds, 6),
        "noise_pct": round(
            abs(plain_seconds - plain_again_seconds) / base * 100.0, 3
        ),
        "query_overhead_pct": round(
            (guarded_seconds - base) / base * 100.0, 3
        ),
    }


def time_to_k(
    query: Callable[[], Iterable],
    checkpoints: Sequence[int],
) -> Dict[int, float]:
    """Cumulative seconds until the k-th result, for each checkpoint k.

    This is Figure 5's measurement: "the time that the different indexes
    needed to return up to 100 results for this query".  Checkpoints the
    stream never reaches are reported at the stream-exhaustion time.
    """
    ordered = sorted(set(checkpoints))
    timings: Dict[int, float] = {}
    started = time.perf_counter()
    produced = 0
    pending = list(ordered)
    for _result in query():
        produced += 1
        while pending and produced >= pending[0]:
            timings[pending.pop(0)] = time.perf_counter() - started
        if not pending:
            break
    final = time.perf_counter() - started
    for k in pending:
        timings[k] = final
    return timings


def order_error_rate(
    results: Sequence,
    oracle: TransitiveClosure,
    start: NodeId,
) -> float:
    """Fraction of results delivered out of true-distance order.

    Section 6's metric ("fraction of all results that were returned in
    wrong order").  We count the minimum number of results that would have
    to move for the stream to be sorted by exact distance — i.e. everything
    outside a longest non-decreasing subsequence of the true distances.
    This charges one early-delivered stray result once, not once per later
    result it happens to precede.
    """
    if not results:
        return 0.0
    true_distances = oracle.descendants(start)
    sequence: List[int] = []
    for result in results:
        true = true_distances.get(result.node)
        if true is None:
            raise ValueError(
                f"result {result.node} is not a true descendant of {start}"
            )
        sequence.append(true)
    in_order = _longest_non_decreasing(sequence)
    return (len(sequence) - in_order) / len(sequence)


def _longest_non_decreasing(sequence: Sequence[int]) -> int:
    """Length of the longest non-decreasing subsequence (O(n log n))."""
    import bisect

    tails: List[int] = []
    for value in sequence:
        # bisect_right keeps equal values extending the subsequence
        position = bisect.bisect_right(tails, value)
        if position == len(tails):
            tails.append(value)
        else:
            tails[position] = value
    return len(tails)
