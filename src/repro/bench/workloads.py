"""Query workloads for the evaluation suites.

The paper's primary query (Figure 5) asks for "all article descendants of
Mohan's VLDB 99 paper about ARIES"; the in-text follow-up experiments use
"different start elements and different tag names" and connection tests
between node pairs.  These generators produce all three, deterministically.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.collection.collection import NodeId, XmlCollection
from repro.datasets.dblp import find_aries
from repro.graph.traversal import bfs_distances


def figure5_query(collection: XmlCollection) -> Tuple[NodeId, str]:
    """(start element, tag) of the Figure 5 query on a DBLP collection."""
    return find_aries(collection), "article"


def random_descendant_queries(
    collection: XmlCollection,
    count: int,
    seed: int = 0,
    min_results: int = 5,
    tags: Optional[List[str]] = None,
) -> List[Tuple[NodeId, str]]:
    """(start, tag) pairs whose exact answer has at least ``min_results``.

    Start elements are sampled from the collection and kept only when a BFS
    confirms enough matching descendants exist — queries with near-empty
    answers measure nothing.
    """
    rng = random.Random(seed)
    node_ids = list(collection.node_ids())
    candidate_tags = tags if tags is not None else collection.tags()
    queries: List[Tuple[NodeId, str]] = []
    attempts = 0
    while len(queries) < count and attempts < count * 200:
        attempts += 1
        start = rng.choice(node_ids)
        tag = rng.choice(candidate_tags)
        reachable = bfs_distances(collection.graph, start)
        matches = sum(
            1 for node in reachable if node != start and collection.tag(node) == tag
        )
        if matches >= min_results:
            queries.append((start, tag))
    if len(queries) < count:
        raise RuntimeError(
            f"could only find {len(queries)}/{count} sufficiently selective "
            "queries; lower min_results or enlarge the collection"
        )
    return queries


def connection_pairs(
    collection: XmlCollection,
    count: int,
    seed: int = 0,
    connected_fraction: float = 0.5,
) -> List[Tuple[NodeId, NodeId, bool]]:
    """(source, target, expected_connected) triples for connection tests.

    Roughly ``connected_fraction`` of the pairs are true positives sampled
    from actual BFS trees; the rest are sampled until unreachable.
    """
    rng = random.Random(seed)
    node_ids = list(collection.node_ids())
    pairs: List[Tuple[NodeId, NodeId, bool]] = []
    want_connected = round(count * connected_fraction)
    attempts = 0
    while len(pairs) < count and attempts < count * 500:
        attempts += 1
        source = rng.choice(node_ids)
        reachable = bfs_distances(collection.graph, source)
        need_connected = sum(1 for _, _, c in pairs if c) < want_connected
        if need_connected:
            descendants = [n for n in reachable if n != source]
            if descendants:
                pairs.append((source, rng.choice(descendants), True))
        else:
            target = rng.choice(node_ids)
            if target not in reachable:
                pairs.append((source, target, False))
    if len(pairs) < count:
        raise RuntimeError("could not sample enough connection pairs")
    return pairs
