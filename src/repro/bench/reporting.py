"""Paper-style result rendering for the benchmark suites.

Table 1 is a one-row table of index sizes; Figure 5 is a set of
time-vs-results series.  :class:`BenchTable` renders the former,
:func:`format_series` the latter (as aligned text — the numbers, not the
plot, are the reproduction target).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, int, float]


class BenchTable:
    """A small fixed-column text table."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_format_cell(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(name) for name in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        header = " | ".join(name.ljust(widths[i]) for i, name in enumerate(self.columns))
        lines.append(header)
        lines.append("-+-".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(
                " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print()
        print(self.render())
        print()


def format_series(
    title: str,
    checkpoints: Sequence[int],
    series: Dict[str, Dict[int, float]],
    unit: str = "s",
    precision: int = 4,
) -> str:
    """Render Figure-5-style series: one row per system, one column per k."""
    name_width = max(len(name) for name in series) if series else 8
    col_width = max(precision + 4, max(len(f"k={k}") for k in checkpoints))
    lines = [title]
    header = " " * (name_width + 2) + "  ".join(
        f"k={k}".rjust(col_width) for k in checkpoints
    )
    lines.append(header)
    for name in series:
        cells = "  ".join(
            f"{series[name].get(k, float('nan')):.{precision}f}".rjust(col_width)
            for k in checkpoints
        )
        lines.append(f"{name.ljust(name_width)}  {cells}")
    lines.append(f"(values in {unit})")
    return "\n".join(lines)


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
