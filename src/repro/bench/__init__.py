"""Benchmark harness: workloads, timers, and paper-style reporting.

The suites under ``benchmarks/`` use this package to regenerate every table
and figure of the paper's evaluation (section 6); see DESIGN.md for the
experiment index and EXPERIMENTS.md for measured-vs-paper results.
"""

from repro.bench.harness import (
    SystemUnderTest,
    build_all_systems,
    order_error_rate,
    time_to_k,
)
from repro.bench.reporting import BenchTable, format_series
from repro.bench.workloads import (
    connection_pairs,
    figure5_query,
    random_descendant_queries,
)

__all__ = [
    "SystemUnderTest",
    "build_all_systems",
    "time_to_k",
    "order_error_rate",
    "BenchTable",
    "format_series",
    "figure5_query",
    "random_descendant_queries",
    "connection_pairs",
]
