"""Concurrent-serving benchmark logic (shared by CLI and benchmark suite).

What this measures
------------------
The serving layer's two claims: (1) worker threads overlap evaluation
stalls, so throughput scales with workers on latency-bound workloads;
(2) the shared result cache turns repeated queries into replays.

The workload is deliberately **lookup-latency-bound**: the fixture wraps
the evaluator in a proxy that sleeps a fixed interval in front of every
PEE call, modeling a disk- or network-backed index lookup (in this
reproduction the indexes themselves are in-memory; real deployments pay
an I/O round trip exactly here).  ``time.sleep`` releases the GIL like a
real stall would, so worker threads overlap their waits — an honest
model of an I/O-bound server, and the only one a single-core CI box can
measure meaningfully (pure-CPU work cannot scale across threads under
the GIL no matter how many workers run).  Cache hits never reach the
evaluator, so the warm-cache runs skip the stall — which is precisely
the serving-layer behavior being benchmarked.

Determinism: every run evaluates the same request list against the same
collection; the harness asserts that every concurrent configuration
returns byte-identical results to the serial baseline.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.api import QueryRequest
from repro.core.config import CacheConfig, FlixConfig
from repro.core.framework import Flix
from repro.datasets.dblp import DblpSpec, generate_dblp


class LatencyEvaluator:
    """Delegating PEE proxy that stalls before every search call.

    The sleep models the storage round trip of a disk/remote-backed
    index; it releases the GIL, so concurrent workers overlap it.
    """

    def __init__(self, inner, latency_seconds: float) -> None:
        self._inner = inner
        self._latency = latency_seconds

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def _stall(self) -> None:
        if self._latency > 0:
            time.sleep(self._latency)

    def find_descendants(self, *args, **kwargs):
        self._stall()
        return self._inner.find_descendants(*args, **kwargs)

    def find_ancestors(self, *args, **kwargs):
        self._stall()
        return self._inner.find_ancestors(*args, **kwargs)

    def evaluate_type_query(self, *args, **kwargs):
        self._stall()
        return self._inner.evaluate_type_query(*args, **kwargs)

    def connection_test(self, *args, **kwargs):
        self._stall()
        return self._inner.connection_test(*args, **kwargs)

    def connection_test_bidirectional(self, *args, **kwargs):
        self._stall()
        return self._inner.connection_test_bidirectional(*args, **kwargs)


def build_serving_fixture(
    documents: int = 24,
    lookup_latency_seconds: float = 0.0005,
    cache: Optional[CacheConfig] = None,
    seed: int = 7,
) -> Tuple[Flix, List[QueryRequest]]:
    """A latency-bound Flix plus a repetitive request mix to serve.

    Every evaluator call stalls ``lookup_latency_seconds`` (GIL
    released), so query latency is dominated by waits that worker
    threads can overlap.  The request list mixes descendant, type,
    ancestor, and connection-test queries with heavy repetition (the
    hot-pair shape the cache exists for).
    """
    collection = generate_dblp(DblpSpec(documents=documents, seed=seed))
    config = FlixConfig.naive().with_cache(
        cache if cache is not None else CacheConfig(maxsize=512, shards=8)
    )
    flix = Flix.build(collection, config)
    flix.pee = LatencyEvaluator(flix.pee, lookup_latency_seconds)
    roots = [
        collection.document_root(name) for name in sorted(collection.documents)
    ]
    requests: List[QueryRequest] = []
    for index, root in enumerate(roots):
        requests.append(QueryRequest.descendants(root))
        requests.append(QueryRequest.descendants(root, tag="author"))
        requests.append(QueryRequest.ancestors(root + 1))
        requests.append(
            QueryRequest.test(root, roots[(index + 1) % len(roots)])
        )
    # hot repeats: the first few queries dominate the mix, as in HOPI's
    # hot-pair workloads
    requests = requests + requests[: max(4, len(requests) // 2)] * 2
    return flix, requests


def _fingerprint(responses) -> str:
    """A canonical, order-sensitive digest of a batch of responses."""
    rows = []
    for response in responses:
        if response.request.is_scalar:
            rows.append(("value", response.value))
        else:
            rows.append(("results", [repr(r) for r in response.results]))
    return json.dumps(rows, sort_keys=False, default=repr)


def profile_concurrent_queries(
    documents: int = 24,
    lookup_latency_seconds: float = 0.0005,
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    repeats: int = 1,
) -> Dict:
    """Throughput for 1..N workers, cold and warm cache, plus integrity.

    Returns a JSON-ready dict: per worker count, requests/second with a
    cold cache (invalidated before the run) and a warm one (primed by the
    previous pass), and whether every configuration's responses matched
    the serial baseline exactly.
    """
    flix, requests = build_serving_fixture(
        documents=documents, lookup_latency_seconds=lookup_latency_seconds
    )
    flix.invalidate_caches()
    serial_started = time.perf_counter()
    baseline = [flix.query(request) for request in requests]
    serial_seconds = time.perf_counter() - serial_started
    expected = _fingerprint(baseline)

    runs = []
    all_identical = True
    for workers in worker_counts:
        # cold: every run starts from an invalidated cache
        cold_seconds = 0.0
        cold_identical = True
        for _ in range(repeats):
            flix.invalidate_caches()
            started = time.perf_counter()
            with flix.serve(
                workers=workers, max_pending=len(requests) + 8
            ) as service:
                responses = service.submit_many(requests)
            cold_seconds += time.perf_counter() - started
            cold_identical &= _fingerprint(responses) == expected
        cold_seconds /= repeats

        # warm: the cache already holds every cacheable answer
        flix.invalidate_caches()
        for request in requests:
            flix.query(request)
        started = time.perf_counter()
        with flix.serve(
            workers=workers, max_pending=len(requests) + 8
        ) as service:
            responses = service.submit_many(requests)
        warm_seconds = time.perf_counter() - started
        warm_identical = _fingerprint(responses) == expected
        all_identical &= cold_identical and warm_identical

        runs.append(
            {
                "workers": workers,
                "cold_seconds": round(cold_seconds, 6),
                "cold_rps": round(len(requests) / cold_seconds, 2),
                "warm_seconds": round(warm_seconds, 6),
                "warm_rps": round(len(requests) / warm_seconds, 2),
                "identical_to_serial": cold_identical and warm_identical,
            }
        )

    by_workers = {run["workers"]: run for run in runs}
    speedup_4v1 = (
        by_workers[4]["cold_rps"] / by_workers[1]["cold_rps"]
        if 1 in by_workers and 4 in by_workers
        else None
    )
    warm_over_cold = max(
        run["warm_rps"] / run["cold_rps"] for run in runs
    )
    cache_stats = flix.cache_stats()
    return {
        "benchmark": "concurrent_queries",
        "documents": documents,
        "requests": len(requests),
        "lookup_latency_seconds": lookup_latency_seconds,
        "serial_seconds": round(serial_seconds, 6),
        "serial_rps": round(len(requests) / serial_seconds, 2),
        "runs": runs,
        "speedup_4_workers_vs_1": (
            round(speedup_4v1, 2) if speedup_4v1 is not None else None
        ),
        "best_warm_over_cold": round(warm_over_cold, 2),
        "all_results_identical_to_serial": all_identical,
        "cache": {
            "hits": cache_stats.hits,
            "misses": cache_stats.misses,
            "evictions": cache_stats.evictions,
            "hit_rate": round(cache_stats.hit_rate, 4),
        },
    }


def render_profile(profile: Dict) -> str:
    """A human-readable table of :func:`profile_concurrent_queries`."""
    lines = [
        f"concurrent serving: {profile['requests']} requests over "
        f"{profile['documents']} documents "
        f"({profile['lookup_latency_seconds'] * 1000:.2f}ms injected "
        "lookup latency)",
        f"serial baseline: {profile['serial_rps']:.0f} req/s",
        f"{'workers':>8} {'cold req/s':>12} {'warm req/s':>12} {'identical':>10}",
    ]
    for run in profile["runs"]:
        lines.append(
            f"{run['workers']:>8} {run['cold_rps']:>12.0f} "
            f"{run['warm_rps']:>12.0f} "
            f"{'yes' if run['identical_to_serial'] else 'NO':>10}"
        )
    lines.append(
        f"speedup 4 workers vs 1 (cold): "
        f"{profile['speedup_4_workers_vs_1']}x; best warm/cold: "
        f"{profile['best_warm_over_cold']}x; cache hit rate "
        f"{profile['cache']['hit_rate']:.0%}"
    )
    return "\n".join(lines)


__all__ = [
    "LatencyEvaluator",
    "build_serving_fixture",
    "profile_concurrent_queries",
    "render_profile",
]
