"""Multi-process sharded-serving benchmark (shared by CLI and suite).

What this measures
------------------
``profile_concurrent_queries`` (PR 4) showed cold throughput flattening
between 4 and 8 *threads*: once the injected I/O stalls overlap, the GIL
serializes everything else.  This harness extends the same methodology
across *processes*: N shard workers each mmap-attach the saved packed
index (``docs/DATA_LAYOUT.md`` — one page-cache copy shared by all of
them) and a :class:`~repro.shard.coordinator.ShardCoordinator` drives
the request mix through them concurrently.

The latency model is inherited unchanged from :mod:`repro.bench.serving`
and applied symmetrically: the serial baseline *and* every shard worker
wrap their evaluator in the same
:class:`~repro.bench.serving.LatencyEvaluator` stall (via
``FLIX_SHARD_LATENCY_MS``), modeling the storage round trip of a disk-
or network-backed index.  The serial pass pays every stall sequentially;
N worker processes pay them concurrently — so cold throughput scales
with shards for the same reason a real I/O-bound fleet scales, and the
numbers stay meaningful on a single-core CI runner (pure-CPU work could
not show honest process scaling there).

The request mix contains **no repeats**, so caches cannot flatter the
cold numbers: cold rps is all misses end-to-end.  The warm pass repeats
the mix against the coordinator's primed result cache.

Integrity: every configuration's responses are fingerprint-compared to
the serial ``Flix.query`` baseline, and a dedicated parity pass checks
all eight ``QueryRequest`` kinds individually.
"""

from __future__ import annotations

import json
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.serving import LatencyEvaluator, _fingerprint
from repro.collection.io import save_collection
from repro.core.api import QueryRequest
from repro.core.config import CacheConfig, FlixConfig
from repro.core.framework import Flix
from repro.datasets.dblp import DblpSpec, generate_dblp
from repro.shard.coordinator import ShardCoordinator
from repro.shard.plan import ShardPlanner, write_shard_map
from repro.shard.worker import WorkerProcess, spawn_worker


def build_request_mix(collection) -> List[QueryRequest]:
    """A repeat-free, delegation-shaped request list over ``collection``.

    One evaluator call (= one injected stall) per request, so serial
    time ≈ requests × latency and ideal N-shard time ≈ serial / N.
    """
    roots = [
        collection.document_root(name) for name in sorted(collection.documents)
    ]
    requests: List[QueryRequest] = []
    for index, root in enumerate(roots):
        other = roots[(index + 1) % len(roots)]
        requests.append(QueryRequest.descendants(root))
        requests.append(QueryRequest.descendants(root, tag="author"))
        requests.append(QueryRequest.descendants(root, tag="title"))
        requests.append(QueryRequest.ancestors(root + 1))
        requests.append(QueryRequest.ancestors(root + 2))
        requests.append(QueryRequest.test(root, other))
        requests.append(QueryRequest.test(root + 1, other))
        requests.append(QueryRequest.type_query("article", tag="author")
                        if index == 0 else QueryRequest.descendants(root + 1))
    return requests


def parity_requests(collection) -> List[Tuple[str, QueryRequest]]:
    """One request per ``QueryRequest`` kind/form — the eight legacy entry
    points the unified API absorbed."""
    roots = [
        collection.document_root(name) for name in sorted(collection.documents)
    ]
    a, b = roots[0], roots[1 % len(roots)]
    return [
        ("descendants", QueryRequest.descendants(a)),
        ("type_query", QueryRequest.type_query("article", tag="author")),
        ("ancestors", QueryRequest.ancestors(a + 1)),
        ("children", QueryRequest.children(a)),
        ("path", QueryRequest.find_path(a, ["author"])),
        ("connections", QueryRequest.connections(a)),
        ("cost", QueryRequest.cost(a, b)),
        ("test", QueryRequest.test(a, b)),
    ]


def _response_signature(response) -> str:
    return json.dumps(
        {
            "results": [repr(row) for row in response.results],
            "value": response.value,
            "completeness": response.completeness,
        },
        default=repr,
    )


def profile_sharded_queries(
    documents: int = 16,
    lookup_latency_seconds: float = 0.01,
    shard_counts: Sequence[int] = (2, 4, 8),
    repeats: int = 2,
    drivers_per_shard: int = 2,
    work_dir: Optional[Path] = None,
) -> Dict:
    """Serial vs N-shard-process throughput, parity, and cache effect.

    Builds one packed DBLP deployment, saves it once, then for each shard
    count: plans the shard map, spawns that many worker subprocesses
    (each with the injected stall), and drives the repeat-free mix
    through a coordinator with ``drivers_per_shard × N`` threads.
    """
    scratch = tempfile.TemporaryDirectory() if work_dir is None else None
    base = Path(scratch.name if scratch is not None else work_dir)
    try:
        collection = generate_dblp(DblpSpec(documents=documents, seed=7))
        flix = Flix.build(collection, FlixConfig.naive().with_packed())
        collection_dir = base / "collection"
        index_dir = base / "index"
        save_collection(collection, collection_dir)
        flix.save(index_dir)

        requests = build_request_mix(collection)
        parity = parity_requests(collection)

        # serial baseline: same stall, one process, sequential
        flix.pee = LatencyEvaluator(flix.pee, lookup_latency_seconds)
        serial_started = time.perf_counter()
        baseline = [flix.query(request) for request in requests]
        serial_seconds = time.perf_counter() - serial_started
        expected = _fingerprint(baseline)
        parity_expected = {
            name: _response_signature(flix.query(request))
            for name, request in parity
        }

        runs = []
        all_identical = True
        parity_all = True
        for shards in shard_counts:
            write_shard_map(ShardPlanner(shards).plan(flix), index_dir)
            workers: List[WorkerProcess] = [
                spawn_worker(
                    collection_dir, index_dir, shard,
                    latency_seconds=lookup_latency_seconds,
                )
                for shard in range(shards)
            ]
            coordinator = ShardCoordinator.connect(
                index_dir,
                [(worker.host, worker.port) for worker in workers],
                cache=CacheConfig(maxsize=4096, shards=8),
            )
            drivers = max(2, drivers_per_shard * shards)
            try:
                with ThreadPoolExecutor(max_workers=drivers) as pool:
                    # one throwaway pass warms worker connections/pages
                    list(pool.map(coordinator.query, requests[:drivers]))
                    cold_seconds = 0.0
                    cold_identical = True
                    for _ in range(repeats):
                        coordinator.invalidate_cache()
                        started = time.perf_counter()
                        responses = list(pool.map(coordinator.query, requests))
                        cold_seconds += time.perf_counter() - started
                        cold_identical &= _fingerprint(responses) == expected
                    cold_seconds /= repeats

                    # warm: the cache now holds every cacheable answer
                    started = time.perf_counter()
                    responses = list(pool.map(coordinator.query, requests))
                    warm_seconds = time.perf_counter() - started
                    warm_identical = _fingerprint(responses) == expected

                kind_parity = {
                    name: _response_signature(coordinator.query(request))
                    == parity_expected[name]
                    for name, request in parity
                }
                cache_stats = coordinator.cache_stats()
            finally:
                coordinator.shutdown_workers()
                coordinator.close()
                for worker in workers:
                    worker.close()

            identical = cold_identical and warm_identical
            all_identical &= identical
            parity_all &= all(kind_parity.values())
            runs.append(
                {
                    "shards": shards,
                    "cold_seconds": round(cold_seconds, 6),
                    "cold_rps": round(len(requests) / cold_seconds, 2),
                    "warm_seconds": round(warm_seconds, 6),
                    "warm_rps": round(len(requests) / warm_seconds, 2),
                    "identical_to_serial": identical,
                    "parity_by_kind": kind_parity,
                    "cache_hits": cache_stats.hits,
                    "cache_misses": cache_stats.misses,
                }
            )

        max_shards = max(run["shards"] for run in runs)
        best = next(run for run in runs if run["shards"] == max_shards)
        serial_rps = len(requests) / serial_seconds
        return {
            "benchmark": "sharded_queries",
            "documents": documents,
            "requests": len(requests),
            "lookup_latency_seconds": lookup_latency_seconds,
            "repeats": repeats,
            "serial_seconds": round(serial_seconds, 6),
            "serial_rps": round(serial_rps, 2),
            "runs": runs,
            "speedup_max_shards_vs_serial": round(
                best["cold_rps"] / serial_rps, 2
            ),
            "all_results_identical_to_serial": all_identical,
            "parity_all_kinds": parity_all,
        }
    finally:
        if scratch is not None:
            scratch.cleanup()


def render_sharded_profile(profile: Dict) -> str:
    """A human-readable table of :func:`profile_sharded_queries`."""
    lines = [
        f"sharded serving: {profile['requests']} unique requests over "
        f"{profile['documents']} documents "
        f"({profile['lookup_latency_seconds'] * 1000:.2f}ms injected "
        "lookup latency, per worker process)",
        f"serial baseline: {profile['serial_rps']:.0f} req/s",
        f"{'shards':>8} {'cold req/s':>12} {'warm req/s':>12} "
        f"{'identical':>10} {'all kinds':>10}",
    ]
    for run in profile["runs"]:
        lines.append(
            f"{run['shards']:>8} {run['cold_rps']:>12.0f} "
            f"{run['warm_rps']:>12.0f} "
            f"{'yes' if run['identical_to_serial'] else 'NO':>10} "
            f"{'yes' if all(run['parity_by_kind'].values()) else 'NO':>10}"
        )
    lines.append(
        f"speedup at {profile['runs'][-1]['shards']} shard processes vs "
        f"serial (cold): {profile['speedup_max_shards_vs_serial']}x"
    )
    return "\n".join(lines)


__all__ = [
    "build_request_mix",
    "parity_requests",
    "profile_sharded_queries",
    "render_sharded_profile",
]
