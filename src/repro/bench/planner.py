"""Probe-planner benchmark: planned vs fixed discipline latencies.

Measures what the cost-based probe planner (:mod:`repro.core.planner`,
``docs/PLANNING.md``) buys on the workload it was designed for — and
what it costs where it cannot help:

* **skewed** — a Zipf-weighted mix of ancestor and type queries aimed at
  citation hubs of a preferential-attachment DBLP corpus under the
  ``naive`` configuration (one meta document per document, so long-range
  queries cross many residual links and §5.1 coverage discards piles of
  duplicate heap entries; the planner's frontier prunes them before the
  heap).  The planner must win here: ``p95_ratio`` (planned p95 / fixed
  p95) is expected well under 1.
* **uniform** — descendant queries spread evenly over document roots.
  Little duplicate work exists, so this workload bounds the planner's
  bookkeeping overhead: ``p95_ratio`` must stay near 1.

Every request is answered by both systems and the responses compared
byte-for-byte (``parity``) — a benchmark that changed results would be
measuring a bug.  ``benchmarks/bench_planner.py`` asserts the floors and
writes ``BENCH_planner.json``; ``tools/check_bench_regression.py``
re-checks the committed numbers.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Sequence, Tuple

from repro.collection.collection import XmlCollection
from repro.core.api import QueryRequest
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.datasets.dblp import DblpSpec, generate_dblp


def _percentile(samples: Sequence[float], fraction: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _hub_ranked_documents(collection: XmlCollection) -> List[str]:
    """Document names by incoming citation-link count, most-cited first
    (ties broken by name for determinism)."""
    incoming: Dict[str, int] = {name: 0 for name in collection.documents}
    for _source, target in collection.link_edges:
        incoming[collection.info(target).document] += 1
    return sorted(incoming, key=lambda name: (-incoming[name], name))


def _zipf_pick(rng: random.Random, count: int, exponent: float = 1.2) -> int:
    weights = [1.0 / (rank + 1) ** exponent for rank in range(count)]
    return rng.choices(range(count), weights=weights, k=1)[0]


def _skewed_requests(
    collection: XmlCollection, queries: int, seed: int
) -> List[QueryRequest]:
    """Zipf-weighted ancestor/type queries aimed at citation hubs."""
    rng = random.Random(seed)
    ranked = _hub_ranked_documents(collection)
    requests: List[QueryRequest] = []
    for _ in range(queries):
        name = ranked[_zipf_pick(rng, len(ranked))]
        nodes = collection.document_nodes(name)
        if rng.random() < 0.75:
            # ancestors of an element inside a hub: the search fans in
            # over every citation chain reaching the hub
            requests.append(QueryRequest.ancestors(rng.choice(nodes)))
        else:
            requests.append(
                QueryRequest.descendants(
                    collection.document_root(name), tag="author"
                )
            )
    return requests


def _uniform_requests(
    collection: XmlCollection, queries: int, seed: int
) -> List[QueryRequest]:
    rng = random.Random(seed)
    names = sorted(collection.documents)
    requests: List[QueryRequest] = []
    for _ in range(queries):
        root = collection.document_root(rng.choice(names))
        tag = rng.choice([None, "author", "title"])
        requests.append(QueryRequest.descendants(root, tag=tag))
    return requests


def _signature(response) -> Tuple:
    return (
        tuple(repr(row) for row in response.results),
        response.value,
        response.stats.completeness,
    )


def _run_workload(
    fixed: Flix,
    planned: Flix,
    requests: Sequence[QueryRequest],
    repetitions: int,
) -> dict:
    # warm both systems once (first-touch costs: memo'd statistics,
    # lazily-built fallback structures) so the samples measure steady
    # state, then alternate whole passes so clock drift hits both sides
    parity = True
    for request in requests:
        if _signature(fixed.query(request)) != _signature(
            planned.query(request)
        ):
            parity = False
    fixed_samples: List[float] = []
    planned_samples: List[float] = []
    pruned = 0
    pops_fixed = 0
    pops_planned = 0
    for _ in range(repetitions):
        for system, samples in (
            (fixed, fixed_samples), (planned, planned_samples),
        ):
            for request in requests:
                started = time.perf_counter()
                response = system.query(request)
                samples.append(time.perf_counter() - started)
                stats = response.stats
                if system is planned:
                    pruned += (
                        stats.planner_pruned_pops
                        + stats.planner_pruned_pushes
                    )
                    pops_planned += stats.queue_pops
                else:
                    pops_fixed += stats.queue_pops
    fixed_p95 = _percentile(fixed_samples, 0.95)
    planned_p95 = _percentile(planned_samples, 0.95)
    return {
        "queries": len(requests),
        "repetitions": repetitions,
        "parity": parity,
        "fixed": {
            "p50_ms": _percentile(fixed_samples, 0.5) * 1000.0,
            "p95_ms": fixed_p95 * 1000.0,
            "total_queue_pops": pops_fixed,
        },
        "planned": {
            "p50_ms": _percentile(planned_samples, 0.5) * 1000.0,
            "p95_ms": planned_p95 * 1000.0,
            "total_queue_pops": pops_planned,
            "pruned_probes": pruned,
        },
        "p95_ratio": planned_p95 / fixed_p95 if fixed_p95 > 0 else 1.0,
    }


def profile_planner(
    documents: int = 100,
    mean_citations: float = 10.0,
    citation_skew: float = 0.95,
    queries: int = 60,
    repetitions: int = 3,
    seed: int = 17,
) -> dict:
    """Profile the planner on skewed and uniform workloads.

    Returns a JSON-ready payload (``BENCH_planner.json`` methodology).
    The caches are disabled on both systems — the benchmark measures the
    evaluator, not result reuse.
    """
    spec = DblpSpec(
        documents=documents,
        mean_citations=mean_citations,
        citation_skew=citation_skew,
        seed=seed,
    )
    collection = generate_dblp(spec)
    config = FlixConfig.naive()  # cache off by default: we time the PEE
    fixed = Flix.build(collection, config)
    planned = Flix.build(collection, config.with_planner())
    workloads = {
        "skewed": _run_workload(
            fixed, planned,
            _skewed_requests(collection, queries, seed), repetitions,
        ),
        "uniform": _run_workload(
            fixed, planned,
            _uniform_requests(collection, queries, seed + 1), repetitions,
        ),
    }
    return {
        "planner": planned.config.planner.to_dict(),
        "collection": {
            "documents": documents,
            "mean_citations": mean_citations,
            "citation_skew": citation_skew,
            "elements": collection.node_count,
            "link_edges": collection.link_edge_count,
            "config": "naive",
        },
        "workloads": workloads,
        "fingerprint_match": (
            fixed.index_fingerprint() == planned.index_fingerprint()
        ),
    }


def render_planner_profile(profile: dict) -> str:
    lines = []
    meta = profile["collection"]
    lines.append(
        f"planner benchmark: {meta['documents']} documents, "
        f"{meta['link_edges']} citation links, config={meta['config']}"
    )
    header = (
        f"{'workload':<10} {'fixed p95':>10} {'planned p95':>12} "
        f"{'ratio':>6} {'pruned':>8} {'parity':>6}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in profile["workloads"].items():
        lines.append(
            f"{name:<10} {row['fixed']['p95_ms']:>8.2f}ms "
            f"{row['planned']['p95_ms']:>10.2f}ms "
            f"{row['p95_ratio']:>6.2f} "
            f"{row['planned']['pruned_probes']:>8} "
            f"{str(row['parity']):>6}"
        )
    return "\n".join(lines)


__all__ = ["profile_planner", "render_planner_profile"]
