"""Incremental-maintenance benchmark logic (shared by CLI and suite).

What this measures
------------------
The maintenance layer's three cost claims (docs/MAINTENANCE.md):

1. **Batched growth amortizes the publish.**  Every ``add_document``
   copies the layout tables, rebuilds the evaluator, and invalidates
   the cache once; ``add_documents`` pays all of that once for the
   whole batch.  With a large standing collection the per-publish cost
   dominates tiny additions, so a batch of N lands several times faster
   than N sequential adds — the acceptance floor asserted by
   ``benchmarks/bench_incremental.py`` is 3x.
2. **An incremental add is far cheaper than the rebuild it avoids.**
   The profile reports seconds-per-add next to a from-scratch build of
   the same final collection.
3. **Compaction trades one re-index for a permanently smaller layout.**
   After N incremental adds the layout holds N singleton meta documents
   joined by residual links; ``compact`` merges them, absorbing the
   now-internal links.  The profile reports the compaction's cost
   (seconds) and benefit (meta documents and residual links removed,
   plus query latency over the compacted region before vs after).

Determinism: the sequential and batched runs grow two independently
generated but identical collections, and the profile records whether
both answer the same probe queries with the same node sets.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.collection.builder import build_collection
from repro.collection.collection import XmlCollection
from repro.collection.document import XmlDocument
from repro.core.api import QueryRequest
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.datasets.dblp import DblpSpec, generate_dblp_documents


def added_documents(count: int) -> List[XmlDocument]:
    """``count`` tiny chained documents: ``incr_i`` cites ``incr_i-1``.

    The chain keeps each addition small (per-document index work must
    not drown the per-publish layout cost being measured) while giving
    compaction inter-meta residual links to absorb.
    """
    documents = []
    for i in range(count):
        cite = (
            f'<cite xlink:href="incr_{i - 1:04d}.xml"/>' if i else ""
        )
        documents.append(
            XmlDocument.from_text(
                f"incr_{i:04d}.xml",
                f"<incremental>{cite}<title>inc {i}</title></incremental>",
            )
        )
    return documents


def _fresh(
    base_documents: int, seed: int
) -> Tuple[XmlCollection, Flix]:
    """An independent base collection + built index (mutations are
    destructive, so every measured scenario gets its own copy)."""
    documents = generate_dblp_documents(
        DblpSpec(documents=base_documents, seed=seed)
    )
    collection = build_collection(documents)
    return collection, Flix.build(collection, FlixConfig.naive())


def _chain_probe(collection: XmlCollection, count: int) -> QueryRequest:
    """Descendants of the chain head — spans every added document."""
    return QueryRequest.descendants(
        collection.document_root(f"incr_{count - 1:04d}.xml")
    )


def _answer(flix: Flix, request: QueryRequest) -> frozenset:
    return frozenset(r.node for r in flix.query(request))


def _timed_queries(
    flix: Flix, request: QueryRequest, repeats: int
) -> float:
    flix.invalidate_caches()
    started = time.perf_counter()
    for _ in range(repeats):
        flix.invalidate_caches()
        flix.query(request)
    return (time.perf_counter() - started) / repeats


def profile_incremental(
    base_documents: int = 1500,
    added: int = 24,
    seed: int = 7,
    repeats: int = 3,
    query_repeats: int = 20,
) -> Dict:
    """Sequential vs batched growth, add vs rebuild, compaction cost.

    Each growth scenario mutates a fresh copy of the base collection
    and is repeated ``repeats`` times; the best wall-clock is reported
    (the timed regions are milliseconds, so a single pass on a shared
    CI runner is scheduler noise).  Returns a JSON-ready dict; see the
    module docstring for what each figure claims.
    """
    new_docs = added_documents(added)

    # --- sequential: N publishes ------------------------------------
    sequential_seconds = float("inf")
    for _ in range(repeats):
        collection_seq, flix_seq = _fresh(base_documents, seed)
        started = time.perf_counter()
        for document in new_docs:
            flix_seq.add_document(document)
        sequential_seconds = min(
            sequential_seconds, time.perf_counter() - started
        )

    # --- batched: one publish ---------------------------------------
    batched_seconds = float("inf")
    for _ in range(repeats):
        collection_bat, flix_bat = _fresh(base_documents, seed)
        started = time.perf_counter()
        flix_bat.add_documents(new_docs)
        batched_seconds = min(
            batched_seconds, time.perf_counter() - started
        )

    # both growth paths must answer identically (node ids are
    # deterministic, so the sets compare across the two collections)
    probe = _chain_probe(collection_seq, added)
    answers_identical = _answer(flix_seq, probe) == _answer(
        flix_bat, _chain_probe(collection_bat, added)
    )

    # --- the rebuild an incremental add avoids ----------------------
    full_documents = generate_dblp_documents(
        DblpSpec(documents=base_documents, seed=seed)
    ) + added_documents(added)
    started = time.perf_counter()
    Flix.build(build_collection(full_documents), FlixConfig.naive())
    rebuild_seconds = time.perf_counter() - started

    # --- compaction cost/benefit (on the sequentially grown index) --
    layout_before = flix_seq.layout
    candidates = layout_before.compaction_candidates()
    metas_before = layout_before.live_count
    residuals_before = flix_seq.report.residual_link_count
    query_before = _timed_queries(flix_seq, probe, query_repeats)

    started = time.perf_counter()
    merged = flix_seq.compact()
    compact_seconds = time.perf_counter() - started

    layout_after = flix_seq.layout
    query_after = _timed_queries(flix_seq, probe, query_repeats)
    compacted_identical = _answer(flix_seq, probe) == _answer(
        flix_bat, _chain_probe(collection_bat, added)
    )

    per_add_seconds = sequential_seconds / added
    return {
        "benchmark": "incremental_maintenance",
        "base_documents": base_documents,
        "added_documents": added,
        "sequential_seconds": round(sequential_seconds, 6),
        "sequential_per_add_seconds": round(per_add_seconds, 6),
        "batched_seconds": round(batched_seconds, 6),
        "batch_speedup": round(sequential_seconds / batched_seconds, 2),
        "rebuild_seconds": round(rebuild_seconds, 6),
        "rebuild_over_per_add": round(rebuild_seconds / per_add_seconds, 2),
        "answers_identical": answers_identical and compacted_identical,
        "compaction": {
            "candidates": len(candidates),
            "seconds": round(compact_seconds, 6),
            "metas_before": metas_before,
            "metas_after": layout_after.live_count,
            "residual_links_before": residuals_before,
            "residual_links_after": flix_seq.report.residual_link_count,
            "merged_strategy": merged.strategy if merged else None,
            "chain_query_seconds_before": round(query_before, 6),
            "chain_query_seconds_after": round(query_after, 6),
        },
    }


def render_incremental(profile: Dict) -> str:
    """A human-readable summary of :func:`profile_incremental`."""
    compaction = profile["compaction"]
    return "\n".join(
        [
            f"incremental maintenance: {profile['added_documents']} tiny "
            f"documents onto a {profile['base_documents']}-document base",
            f"sequential adds: {profile['sequential_seconds']:.3f}s "
            f"({profile['sequential_per_add_seconds'] * 1000:.1f}ms/add); "
            f"batched: {profile['batched_seconds']:.3f}s "
            f"-> {profile['batch_speedup']}x speedup",
            f"full rebuild of the final collection: "
            f"{profile['rebuild_seconds']:.3f}s = "
            f"{profile['rebuild_over_per_add']}x one incremental add",
            f"compaction: merged {compaction['candidates']} metas in "
            f"{compaction['seconds'] * 1000:.1f}ms; live metas "
            f"{compaction['metas_before']} -> {compaction['metas_after']}, "
            f"residual links {compaction['residual_links_before']} -> "
            f"{compaction['residual_links_after']}; chain query "
            f"{compaction['chain_query_seconds_before'] * 1000:.2f}ms -> "
            f"{compaction['chain_query_seconds_after'] * 1000:.2f}ms",
            "answers identical across growth paths: "
            + ("yes" if profile["answers_identical"] else "NO"),
        ]
    )


__all__ = [
    "added_documents",
    "profile_incremental",
    "render_incremental",
]
