"""Per-operation microbenchmarks: object vs packed index layouts.

Times the four hot operations the packed layout (docs/DATA_LAYOUT.md)
exists for, over the same built per-meta indexes in both representations:

* ``probe_reachable`` / ``probe_distance`` — one connection probe, the
  innermost PEE operation (millions per evaluation);
* ``link_hop`` — a prepared ``reachable_subset`` call, the residual-link
  crossing step of the path evaluation engine;
* ``extent_scan`` — ``find_descendants_by_tag`` with a concrete tag, the
  per-meta extent enumeration behind tag queries;
* ``cold_attach`` — bringing one saved meta document's index to a
  queryable state (including the node-set read load-time routing needs):
  full SQLite table deserialization (object) vs an ``mmap`` + header
  checksum (packed).  Profiled for both paper configurations — the
  hybrid partitioning the probe workload uses and ``maximal_ppo``, the
  maximal meta-document layout where restart deserialization is most
  expensive.

Measurement discipline, same spirit as the other bench suites but
tightened for nanosecond-scale ops:

* probe batches run through ``deque(map(probe, sources, targets),
  maxlen=0)`` — the C-level driver adds no interpreted loop overhead, so
  per-op times are not diluted toward parity by harness cost;
* object and packed batches alternate inside one measurement window
  (``_time_pair``), so machine-regime drift hits both sides equally
  instead of whichever happened to run second;
* the garbage collector is paused across the timed section (collector
  pauses are not part of a probe).

Probe timings are reported per strategy (each strategy's hot path is
different code) and summarized as ``median_probe_speedup``: the median
over all per-meta probe-op speedups, i.e. weighted by how many metas of
each strategy the evaluation collection actually produces — the same mix
a query workload hits.

``benchmarks/bench_microops.py`` writes the result to
``BENCH_microops.json``; ``tools/check_bench_regression.py`` is the CI
guard over that file.
"""

from __future__ import annotations

import gc
import random
import time
from collections import deque
from statistics import median
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.collection.collection import XmlCollection
from repro.core.config import FlixConfig
from repro.core.framework import Flix

#: timed batch repetitions; the best batch per side is reported
#: (suppresses scheduler noise, as everywhere else in the bench suites)
BATCHES = 5

#: cold-attach passes per layout; the median pass is reported (see
#: :func:`_profile_cold_attach` for why medians, not minima)
COLD_PASSES = 7


def _time_pair(
    object_fn: Callable[[], int],
    packed_fn: Callable[[], int],
    batches: int = BATCHES,
) -> Tuple[float, int, float, int]:
    """Best-of-N wall time of both sides, batches interleaved.

    Each function returns its operation count.  Alternating object and
    packed batches inside the same window keeps slow host intervals from
    landing entirely on one side of the ratio.
    """
    object_best = packed_best = float("inf")
    object_ops = packed_ops = 0
    for _ in range(batches):
        started = time.perf_counter()
        object_ops = object_fn()
        elapsed = time.perf_counter() - started
        if elapsed < object_best:
            object_best = elapsed
        started = time.perf_counter()
        packed_ops = packed_fn()
        elapsed = time.perf_counter() - started
        if elapsed < packed_best:
            packed_best = elapsed
    return object_best, object_ops, packed_best, packed_ops


def _probe_pairs(
    index, nodes: Sequence[int], rng: random.Random, count: int = 120
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Half ancestor/descendant pairs (positive probes), half random."""
    pairs: List[Tuple[int, int]] = []
    for source in rng.sample(list(nodes), min(20, len(nodes))):
        for target, _score in index.find_descendants_by_tag(source, None)[:6]:
            pairs.append((source, target))
            if len(pairs) >= count // 2:
                break
        if len(pairs) >= count // 2:
            break
    while len(pairs) < count:
        pairs.append((rng.choice(nodes), rng.choice(nodes)))
    sources = tuple(pair[0] for pair in pairs)
    targets = tuple(pair[1] for pair in pairs)
    return sources, targets


def _common_tag(collection: XmlCollection, nodes: Sequence[int]) -> str:
    counts: Dict[str, int] = {}
    for node in nodes:
        tag = collection.tag(node)
        counts[tag] = counts.get(tag, 0) + 1
    return max(sorted(counts), key=lambda t: counts[t])


class _StrategyWorkload:
    """Per-strategy probe material: (object index, packed index, inputs)."""

    def __init__(self) -> None:
        self.metas: List[dict] = []

    def add(
        self, obj_index, pak_index, sources, targets, roots, tag, candidates
    ) -> None:
        self.metas.append(
            {
                "obj": obj_index,
                "pak": pak_index,
                "sources": sources,
                "targets": targets,
                "roots": roots,
                "tag": tag,
                "candidates": candidates,
            }
        )


def _op_entry(object_best: float, object_ops: int, packed_best: float, packed_ops: int) -> dict:
    object_ns = object_best / max(object_ops, 1) * 1e9
    packed_ns = packed_best / max(packed_ops, 1) * 1e9
    return {
        "object_ns_per_op": round(object_ns, 1),
        "packed_ns_per_op": round(packed_ns, 1),
        "speedup": round(object_ns / max(packed_ns, 1e-9), 3),
    }


def profile_microops(
    collection: XmlCollection,
    config: Optional[FlixConfig] = None,
    probe_rounds: int = 40,
    seed: int = 60,
) -> Dict:
    """Build ``collection`` once, pack every meta, time both layouts.

    The packed twins are compiled via ``packed_clone`` from the *same*
    built object indexes, so both sides answer from identical content
    (the parity suite asserts byte-identical answers; this module only
    times them).
    """
    from repro.indexes.packed import packed_clone

    rng = random.Random(seed)
    if config is None:
        from repro.bench.harness import paper_partition_sizes

        small, _large = paper_partition_sizes(collection)
        config = FlixConfig.hybrid(small)

    flix = Flix.build(collection, config)
    workloads: Dict[str, _StrategyWorkload] = {}
    packable = 0
    for meta in flix.meta_documents:
        pak = packed_clone(meta.index)
        if pak is None:
            continue
        packable += 1
        nodes = sorted(meta.nodes)
        pak.reachable(nodes[0], nodes[0])  # install the hot-path closures
        sources, targets = _probe_pairs(meta.index, nodes, rng)
        roots = rng.sample(nodes, min(8, len(nodes)))
        tag = _common_tag(collection, nodes)
        candidates = meta.link_sources or frozenset(
            rng.sample(nodes, min(12, len(nodes)))
        )
        meta.index.prepare_link_candidates(candidates)
        pak.prepare_link_candidates(candidates)
        workloads.setdefault(meta.strategy, _StrategyWorkload()).add(
            meta.index, pak, sources, targets, roots, tag, candidates
        )

    def run_probe(layout: str, method: str, workload: _StrategyWorkload) -> Callable[[], int]:
        def batch() -> int:
            ops = 0
            for entry in workload.metas:
                probe = getattr(entry[layout], method)
                sources = entry["sources"]
                targets = entry["targets"]
                for _ in range(probe_rounds):
                    deque(map(probe, sources, targets), maxlen=0)
                ops += probe_rounds * len(sources)
            return ops

        return batch

    def run_link_hop(layout: str, workload: _StrategyWorkload) -> Callable[[], int]:
        def batch() -> int:
            ops = 0
            for entry in workload.metas:
                index = entry[layout]
                candidates = entry["candidates"]
                for _ in range(probe_rounds):
                    for root in entry["roots"]:
                        index.reachable_subset(root, candidates)
                ops += probe_rounds * len(entry["roots"])
            return ops

        return batch

    def run_extent(layout: str, workload: _StrategyWorkload) -> Callable[[], int]:
        def batch() -> int:
            ops = 0
            for entry in workload.metas:
                index = entry[layout]
                tag = entry["tag"]
                for _ in range(probe_rounds):
                    for root in entry["roots"]:
                        index.find_descendants_by_tag(root, tag)
                ops += probe_rounds * len(entry["roots"])
            return ops

        return batch

    ops: Dict[str, Dict[str, dict]] = {
        "probe_reachable": {},
        "probe_distance": {},
        "link_hop": {},
        "extent_scan": {},
    }
    # built before the collector pause: index construction churns enough
    # garbage to fragment the heap under a disabled collector, which
    # would tax the attach timings below
    maximal_flix = Flix.build(collection, FlixConfig.maximal_ppo())

    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for strategy, workload in sorted(workloads.items()):
            for op, runner in (
                ("probe_reachable", lambda l: run_probe(l, "reachable", workload)),
                ("probe_distance", lambda l: run_probe(l, "distance", workload)),
                ("link_hop", lambda l: run_link_hop(l, workload)),
                ("extent_scan", lambda l: run_extent(l, workload)),
            ):
                entry = _op_entry(*_time_pair(runner("obj"), runner("pak")))
                entry["metas"] = len(workload.metas)
                ops[op][strategy] = entry

        cold_attach_maximal = _profile_cold_attach(collection, maximal_flix)
        cold_attach_hybrid = _profile_cold_attach(collection, flix)
    finally:
        if gc_was_enabled:
            gc.enable()

    # the acceptance summary: every per-meta single-probe op contributes
    # its strategy's measured speedup — the median is what a probe drawn
    # from the collection's real strategy mix gains
    probe_speedups: List[float] = []
    for op in ("probe_reachable", "probe_distance"):
        for strategy, entry in ops[op].items():
            probe_speedups.extend([entry["speedup"]] * entry["metas"])
    payload = {
        "workload": {
            "documents": collection.document_count,
            "elements": collection.node_count,
            "links": collection.link_edge_count,
            "config": config.name,
            "partition_size": config.partition_size,
        },
        "meta_documents": len(flix.meta_documents),
        "packable_meta_documents": packable,
        "metas_by_strategy": {
            strategy: len(workload.metas)
            for strategy, workload in sorted(workloads.items())
        },
        "ops": ops,
        "median_probe_speedup": round(median(probe_speedups), 3),
        "cold_attach": cold_attach_maximal,
        "cold_attach_hybrid": cold_attach_hybrid,
    }
    return payload


def _profile_cold_attach(collection: XmlCollection, flix: Flix) -> dict:
    """Time to a queryable index per saved meta: SQLite loaders vs mmap.

    Both sides do what :func:`repro.core.persistence.load_flix` — whose
    default is the *verified* path (``verify=True``) — does for their
    layout, including each layout's manifest integrity check and the
    node-set read load-time routing needs:

    * object: SQLite attach, the manifest's ``sha256-table-content``
      fingerprint pass, then full deserialization through the strategy
      loader;
    * packed: ``mmap`` attach (which verifies the blob's integrated
      payload checksum) plus the manifest's raw-byte fingerprint off the
      mapped buffer.

    Cheap integrated verification is a design point of the packed
    format, so the comparison deliberately charges both layouts for
    integrity.  Handles are closed *outside* the timed window for both:
    teardown (connection close / ``munmap``) is not part of the time to
    a queryable index.

    Each layout attaches its metas consecutively — the shape of the real
    ``load_flix`` loop — and the pass is repeated ``COLD_PASSES`` times
    with the layouts alternating; the *median* pass per side is
    reported.  SQLite attach has a heavy, skewed per-pass spread on
    shared hosts, so a best-pass estimator would compare one side's
    lucky pass against the other's typical one — medians keep the ratio
    an estimate of typical-vs-typical.
    """
    import os
    import shutil
    import tempfile
    from pathlib import Path

    from repro.core.persistence import _loaders, save_flix
    from repro.indexes.packed import attach_packed_file
    from repro.storage.sqlite_backend import SqliteBackend

    tmp = Path(tempfile.mkdtemp(prefix="flix-microops-"))
    try:
        # a packed save carries both representations of every meta
        flix.pack()
        save_flix(flix, tmp)
        os.sync()  # writeback of the fresh save must not tax the passes

        tags = {node: collection.tag(node) for node in collection.node_ids()}
        loaders = _loaders()
        entries = [
            (meta.meta_id, meta.strategy)
            for meta in flix.meta_documents
            if (tmp / f"meta_{meta.meta_id:04d}.pack").is_file()
        ]
        sqlite_paths = {
            meta_id: str(tmp / f"meta_{meta_id:04d}.sqlite")
            for meta_id, _strategy in entries
        }
        pack_paths = {
            meta_id: str(tmp / f"meta_{meta_id:04d}.pack")
            for meta_id, _strategy in entries
        }

        def attach_object() -> list:
            handles = []
            append = handles.append
            for meta_id, strategy in entries:
                backend = SqliteBackend.attach(sqlite_paths[meta_id])
                backend.fingerprint()  # the manifest integrity check
                index = loaders[strategy](backend, tags)
                index._node_set()
                append(backend)
            return handles

        def attach_packed() -> list:
            handles = []
            append = handles.append
            for meta_id, _strategy in entries:
                index = attach_packed_file(pack_paths[meta_id])
                index.blob.raw_fingerprint()  # the manifest integrity check
                index._node_set()
                append(index.blob)
            return handles

        count = len(entries)
        gc.collect()  # reclaim save/pack garbage before the timed passes
        obj_passes: List[float] = []
        pak_passes: List[float] = []
        for _ in range(COLD_PASSES):
            started = time.perf_counter()
            handles = attach_object()
            obj_passes.append(time.perf_counter() - started)
            for handle in handles:
                handle.close()
            started = time.perf_counter()
            handles = attach_packed()
            pak_passes.append(time.perf_counter() - started)
            for handle in handles:
                handle.close()
        obj_best = median(obj_passes)
        pak_best = median(pak_passes)
        return {
            "config": flix.config.name,
            "verified": True,  # both sides include their integrity check
            "meta_documents": count,
            "object_ms_per_meta": round(obj_best / max(count, 1) * 1e3, 3),
            "packed_ms_per_meta": round(pak_best / max(count, 1) * 1e3, 3),
            "object_ms_total": round(obj_best * 1e3, 2),
            "packed_ms_total": round(pak_best * 1e3, 2),
            "speedup": round(obj_best / max(pak_best, 1e-9), 2),
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def render_microops(payload: Dict) -> str:
    from repro.bench.reporting import BenchTable

    table = BenchTable(
        "Per-op microbenchmarks (ns/op, object vs packed)",
        ["op", "strategy", "object", "packed", "speedup", "metas"],
    )
    for op, strategies in payload["ops"].items():
        for strategy, entry in strategies.items():
            table.add_row(
                op,
                strategy,
                entry["object_ns_per_op"],
                entry["packed_ns_per_op"],
                f"{entry['speedup']:.2f}x",
                entry["metas"],
            )
    lines = [table.render()]
    for key in ("cold_attach", "cold_attach_hybrid"):
        cold = payload[key]
        lines.append(
            f"cold attach [{cold['config']}]: {cold['object_ms_per_meta']}ms"
            f" -> {cold['packed_ms_per_meta']}ms per meta "
            f"({cold['speedup']:.0f}x over {cold['meta_documents']} metas)"
        )
    lines.append(
        f"median probe speedup: {payload['median_probe_speedup']:.2f}x"
    )
    return "\n".join(lines)
