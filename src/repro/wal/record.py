"""The WAL's on-disk record format: length-framed, CRC-checksummed.

A log file is the 8-byte magic ``FLXWAL01`` followed by zero or more
records::

    +----------------+----------------+------------------------+
    | 4 bytes        | 4 bytes        | ``length`` bytes       |
    | big-endian u32 | big-endian u32 | UTF-8 JSON body        |
    | body length    | CRC-32 of body |                        |
    +----------------+----------------+------------------------+

The body is the compact JSON rendering of one :class:`WalRecord`:
``{"verb": ..., "generation": ..., "payload": {...}}``.  ``generation``
is the layout generation the verb *produces* — replay applies records
whose generation exceeds the loaded snapshot's and verifies the layout
lands exactly there (the generation is the replication cursor, see
``docs/DURABILITY.md``).

Torn-tail semantics: :func:`decode_records` walks the file front to
back and stops at the first record it cannot fully validate — a header
that announces more bytes than remain (a write cut short by a crash), a
CRC mismatch (a bit flip), unparsable JSON, or an implausible length.
Everything before that point is returned; everything from it on is
reported as ``discarded_bytes`` and never applied.  A corrupt *middle*
record is indistinguishable from a torn tail by design — the log is
only ever appended to, so the first bad byte ends the trustworthy
prefix either way.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: file magic: format name + version, 8 bytes so records stay aligned
WAL_MAGIC = b"FLXWAL01"

#: a single record body above this is corruption, not data (the largest
#: legitimate record is an ``add_batch`` of serialized documents)
MAX_RECORD_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">II")


class WalError(RuntimeError):
    """Base class for WAL format violations."""


class WalCorruptionError(WalError):
    """The log's magic is wrong or a record fails validation where the
    caller demanded strictness (replay mismatches, bad file preamble)."""


@dataclass(frozen=True)
class WalRecord:
    """One logged maintenance verb (or the ``begin`` base marker)."""

    verb: str
    #: the layout generation after applying this verb
    generation: int
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        """The full framed record (header + body), ready to append."""
        body = json.dumps(
            {
                "verb": self.verb,
                "generation": self.generation,
                "payload": self.payload,
            },
            separators=(",", ":"),
            sort_keys=True,
        ).encode("utf-8")
        return _HEADER.pack(len(body), zlib.crc32(body)) + body

    @classmethod
    def from_body(cls, body: bytes) -> "WalRecord":
        data = json.loads(body.decode("utf-8"))
        return cls(
            verb=data["verb"],
            generation=int(data["generation"]),
            payload=data.get("payload", {}),
        )


def decode_records(data: bytes) -> Tuple[List[WalRecord], int]:
    """Parse a whole log image into ``(records, discarded_bytes)``.

    ``data`` must start with :data:`WAL_MAGIC` (raises
    :class:`WalCorruptionError` otherwise — a wrong magic means this is
    not a WAL at all, silently returning nothing would mask it).
    ``discarded_bytes`` counts the unusable tail: 0 for a clean log.
    """
    if data[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise WalCorruptionError(
            "not a FliX WAL: bad magic "
            f"{data[: len(WAL_MAGIC)]!r} (expected {WAL_MAGIC!r})"
        )
    records: List[WalRecord] = []
    offset = len(WAL_MAGIC)
    total = len(data)
    while offset < total:
        if total - offset < _HEADER.size:
            break  # torn header
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            break  # implausible length: a bit flip in the header
        body_start = offset + _HEADER.size
        if total - body_start < length:
            break  # torn body
        body = data[body_start : body_start + length]
        if zlib.crc32(body) != crc:
            break  # bit-flipped body (or header CRC)
        try:
            record = WalRecord.from_body(body)
        except (ValueError, KeyError, TypeError):
            break  # CRC collided with garbage; do not apply it
        records.append(record)
        offset = body_start + length
    return records, total - offset


__all__ = [
    "MAX_RECORD_BYTES",
    "WAL_MAGIC",
    "WalCorruptionError",
    "WalError",
    "WalRecord",
    "decode_records",
]
