"""Crash-consistent recovery: last snapshot + WAL replay-to-tail.

The contract (``docs/DURABILITY.md``): for *any* crash point — between
verbs, mid-record (a torn write), even a bit flip in the tail —
:func:`recover_flix` reloads the last ``save_flix`` snapshot and
re-applies the longest valid prefix of logged verbs, producing an
``index_fingerprint`` and layout generation identical to a process that
ran exactly those verbs and never crashed.  Torn or corrupt tail
records were, by the write-ahead ordering, never acknowledged; they are
discarded, never applied.

Verb payloads carry everything replay needs, independent of the live
collection objects that died with the primary:

``add`` / ``add_batch``
    ``{"documents": [{"name": ..., "xml": <serialized document>}]}`` —
    the document text round-trips through the parser, so replay
    re-registers byte-identical DOMs.
``remove``
    ``{"name": ...}``.
``compact``
    ``{"meta_ids": [...]}`` — the candidate list actually compacted,
    pinned so replay does not depend on re-deriving candidates.

``update_document`` logs as its two halves (``remove`` then ``add``),
mirroring its two published swaps; a crash between them recovers to
the removed-but-not-readded state the uncrashed process would also
have been in had the add failed — a valid verb-sequence prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.wal.log import BEGIN_VERB, WriteAheadLog, read_wal
from repro.wal.record import WalCorruptionError, WalRecord

#: the log's file name inside a saved index directory
WAL_NAME = "wal.log"


def wal_path_for(index_dir) -> Path:
    """Where a deployment's WAL lives: beside the manifest."""
    return Path(index_dir) / WAL_NAME


def document_to_payload(document) -> Dict[str, str]:
    """Serialize one document for a WAL record body."""
    from repro.xmlmodel.serializer import serialize

    return {
        "name": document.name,
        "xml": serialize(document.root, declaration=True),
    }


def document_from_payload(payload: Dict[str, str]):
    """Rebuild the document a WAL record describes."""
    from repro.collection.document import XmlDocument

    return XmlDocument.from_text(payload["name"], payload["xml"])


@dataclass
class RecoveryReport:
    """What one recovery (or follower poll) did."""

    base_generation: int = 0
    snapshot_generation: int = 0
    records_seen: int = 0
    records_applied: int = 0
    records_skipped: int = 0
    discarded_bytes: int = 0
    final_generation: int = 0
    applied_verbs: List[str] = field(default_factory=list)

    def describe(self) -> str:
        torn = (
            f", discarded {self.discarded_bytes} torn tail byte(s)"
            if self.discarded_bytes
            else ""
        )
        return (
            f"recovered to generation {self.final_generation}: snapshot at "
            f"{self.snapshot_generation}, replayed "
            f"{self.records_applied}/{self.records_seen} record(s)"
            f"{torn}"
        )


def apply_record(flix, record: WalRecord) -> bool:
    """Apply one verb record to ``flix``; returns whether it applied.

    Records at or below the current layout generation are already
    reflected (the snapshot was saved after them, or a follower applied
    them on an earlier poll) and are skipped.  After applying, the
    layout must land exactly on the record's generation — a mismatch
    means the log and the snapshot disagree about history, which is
    corruption, not something to paper over.
    """
    if record.verb == BEGIN_VERB:
        return False
    if record.generation <= flix.layout_generation:
        return False
    if record.verb in ("add", "add_batch"):
        documents = [
            document_from_payload(entry)
            for entry in record.payload["documents"]
        ]
        flix.add_documents(documents)
    elif record.verb == "remove":
        flix.remove_document(record.payload["name"])
    elif record.verb == "compact":
        flix.compact(record.payload["meta_ids"])
    else:
        raise WalCorruptionError(
            f"write-ahead log names unknown verb {record.verb!r}"
        )
    if flix.layout_generation != record.generation:
        raise WalCorruptionError(
            f"replaying {record.verb!r} produced generation "
            f"{flix.layout_generation}, the log recorded "
            f"{record.generation}; snapshot and log disagree"
        )
    return True


def replay_records(
    flix, records: List[WalRecord], report: Optional[RecoveryReport] = None
) -> int:
    """Apply ``records`` in order; returns how many actually applied."""
    applied = 0
    for record in records:
        if apply_record(flix, record):
            applied += 1
            if report is not None:
                report.records_applied += 1
                report.applied_verbs.append(record.verb)
        elif report is not None and record.verb != BEGIN_VERB:
            report.records_skipped += 1
    return applied


def recover_flix(
    collection,
    index_dir,
    wal_path=None,
    verify: bool = True,
    attach: bool = True,
    fsync: str = "commit",
) -> Tuple["object", RecoveryReport]:
    """Load the last snapshot and replay the WAL to its valid tail.

    Returns ``(flix, report)``.  ``attach`` (default) leaves the
    recovered instance logging to the same WAL, so service can resume
    immediately; the attach also trims any torn tail in place.  With no
    WAL file at all this degrades to a plain ``load_flix`` — a pre-WAL
    save is just a deployment with an empty log.

    One subtlety: the collection passed in must be the *snapshot-time*
    collection (``load_collection`` of the directory saved beside the
    index) — replay re-applies the post-snapshot document changes from
    the log itself.
    """
    from repro.core.persistence import load_flix

    path = wal_path_for(index_dir) if wal_path is None else Path(wal_path)
    flix = load_flix(collection, index_dir, verify=verify)
    records, discarded = read_wal(path)
    report = RecoveryReport(
        base_generation=records[0].generation if records else 0,
        snapshot_generation=flix.layout_generation,
        records_seen=sum(1 for r in records if r.verb != BEGIN_VERB),
        discarded_bytes=discarded,
    )
    replay_records(flix, records, report)
    report.final_generation = flix.layout_generation
    if attach:
        flix.attach_wal(
            WriteAheadLog(
                path,
                base_generation=flix.layout_generation,
                fsync=fsync,
                observability=flix.obs if flix.obs.enabled else None,
            )
        )
    return flix, report


__all__ = [
    "RecoveryReport",
    "WAL_NAME",
    "apply_record",
    "document_from_payload",
    "document_to_payload",
    "recover_flix",
    "replay_records",
    "wal_path_for",
]
