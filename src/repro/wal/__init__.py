"""``repro.wal`` — the durable write-ahead mutation log.

Incremental maintenance (``docs/MAINTENANCE.md``) publishes every verb
as one atomic in-memory layout swap; this package makes those swaps
*durable* and *replicable*:

* :class:`WalRecord` / :func:`~repro.wal.record.decode_records` — the
  checksummed, length-framed record format (:mod:`repro.wal.record`);
  torn or bit-flipped tails are detected per record and discarded;
* :class:`WriteAheadLog` — append with a configurable fsync policy
  (fsync-on-commit, group commit, or none), truncate at snapshot time
  (:mod:`repro.wal.log`);
* :func:`recover_flix` — crash recovery as ``load_flix`` (last
  snapshot) + replay-to-tail, with a :class:`RecoveryReport` of what
  was applied and what was discarded (:mod:`repro.wal.recovery`);
* :class:`FollowerFlix` — read replicas that tail the log from a file
  or over the shard protocol's ``wal_pull`` verb and apply verbs with
  atomic generation swaps (:mod:`repro.wal.follower`); the layout
  generation is the replication cursor.

``Flix.enable_wal`` attaches a log to a live instance; ``Flix.save``
then checkpoints it (snapshot + truncate).  See ``docs/DURABILITY.md``
for the format, the fsync policy trade-offs, and the recovery
invariant the ``tests/wal`` crash-point matrix enforces.
"""

from repro.wal.follower import (
    FileWalSource,
    FollowerFlix,
    RemoteWalSource,
    ReplicationError,
    WalSegment,
)
from repro.wal.log import BEGIN_VERB, FSYNC_POLICIES, WriteAheadLog, read_wal
from repro.wal.record import (
    MAX_RECORD_BYTES,
    WAL_MAGIC,
    WalCorruptionError,
    WalError,
    WalRecord,
    decode_records,
)
from repro.wal.recovery import (
    RecoveryReport,
    WAL_NAME,
    apply_record,
    document_from_payload,
    document_to_payload,
    recover_flix,
    replay_records,
    wal_path_for,
)

__all__ = [
    "BEGIN_VERB",
    "FSYNC_POLICIES",
    "FileWalSource",
    "FollowerFlix",
    "MAX_RECORD_BYTES",
    "RecoveryReport",
    "RemoteWalSource",
    "ReplicationError",
    "WAL_MAGIC",
    "WAL_NAME",
    "WalCorruptionError",
    "WalError",
    "WalRecord",
    "WalSegment",
    "WriteAheadLog",
    "apply_record",
    "decode_records",
    "document_from_payload",
    "document_to_payload",
    "read_wal",
    "recover_flix",
    "replay_records",
    "wal_path_for",
]
