"""The write-ahead log itself: append, fsync policy, truncation.

One :class:`WriteAheadLog` owns one log file.  ``Flix`` appends a
record for every maintenance verb *before* publishing the layout swap
(write-ahead: the durable intent precedes the visible effect), and
truncates the log back to a ``begin`` marker whenever a snapshot is
saved — recovery is then ``load_flix`` + replay-to-tail
(:mod:`repro.wal.recovery`).

Fsync policy (the group-commit knob, ``docs/DURABILITY.md``):

``"commit"`` (default)
    ``fsync`` after every append.  An acked verb survives a power cut;
    this is the durability the recovery invariant is stated against.
``"batch"``
    ``flush`` every append, ``fsync`` once per ``batch_size`` appends
    (and on :meth:`sync`/:meth:`close`/truncation).  Amortizes the
    fsync cost across a batch — the classic group commit; a crash can
    lose at most the last unsynced batch, never tear what was synced.
``"none"``
    Leave syncing to the OS entirely (benchmarks, throwaway indexes).

Crash-fault injection: a :class:`~repro.faults.plan.FaultPlan` with
``crash_after_writes`` set makes append N+1 write only the first
``torn_write_bytes`` bytes of its record and then raise
:class:`~repro.faults.injector.InjectedCrash` — a deterministic torn
write, the shape every recovery test in ``tests/wal`` replays.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.storage.atomic import fsync_directory
from repro.wal.record import (
    WAL_MAGIC,
    WalCorruptionError,
    WalRecord,
    decode_records,
)

FSYNC_POLICIES = ("commit", "batch", "none")

#: the synthetic record opening every (fresh or truncated) log; carries
#: the snapshot generation the following records build on
BEGIN_VERB = "begin"


class WriteAheadLog:
    """A checksummed, length-framed, fsync-on-commit verb log."""

    def __init__(
        self,
        path,
        base_generation: int = 0,
        fsync: str = "commit",
        batch_size: int = 8,
        observability=None,
        fault_plan=None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.path = Path(path)
        self.fsync_policy = fsync
        self.batch_size = batch_size
        self._lock = threading.RLock()
        self._handle = None
        self._pending = 0  # appends since the last fsync
        self._appends = 0  # lifetime appends (crash-fault counter)
        self._crashed = False
        self._closed = False
        self._plan = fault_plan
        if observability is not None:
            registry = observability.registry
            self._m_records = registry.counter(
                "flix_wal_records_total",
                "Records appended to the write-ahead log, by verb.",
            )
            self._m_bytes = registry.counter(
                "flix_wal_bytes_total",
                "Bytes appended to the write-ahead log.",
            )
            self._m_fsyncs = registry.counter(
                "flix_wal_fsyncs_total",
                "fsync calls issued by the write-ahead log.",
            )
            self._m_truncations = registry.counter(
                "flix_wal_truncations_total",
                "Write-ahead log truncations (snapshot checkpoints).",
            )
        else:
            self._m_records = self._m_bytes = None
            self._m_fsyncs = self._m_truncations = None
        self._open(base_generation)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _open(self, base_generation: int) -> None:
        """Create a fresh log, or attach to an existing one.

        Attaching trims any torn tail in place (the bytes a previous
        crash left behind must not sit under future appends) and leaves
        the write position at the end of the last valid record.

        Two crash leftovers are indistinguishable from a fresh log and
        are treated as one: a file that is empty or holds only (part of)
        the magic — a crash during creation or inside
        :meth:`truncate` — and a magic plus a torn ``begin`` record.
        Neither can hold an acknowledged verb (the write-ahead ordering
        fsyncs the begin before acking anything after it), so the log
        restarts at the caller's ``base_generation`` instead of refusing
        to attach — refusing would fail recovery at exactly the crash
        point the snapshot just made consistent.
        """
        data = self.path.read_bytes() if self.path.is_file() else b""
        if WAL_MAGIC.startswith(data):
            # missing, empty, or bare/torn magic: no record ever existed
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "wb")
            begin = WalRecord(
                BEGIN_VERB, base_generation,
                {"base_generation": base_generation},
            )
            self._handle.write(WAL_MAGIC + begin.to_bytes())
            self._handle.flush()
            os.fsync(self._handle.fileno())
            fsync_directory(self.path.parent)
            self._tail_generation = base_generation
            self._base_generation = base_generation
            return
        records, discarded = decode_records(data)  # raises on bad magic
        if not records:
            # valid magic, zero decodable records: a truncate() that
            # crashed between its truncate and begin append (or a torn
            # first-ever begin) — state is consistent, restart fresh
            self._handle = open(self.path, "r+b")
            self._write_begin_locked(base_generation)
            return
        if records[0].verb != BEGIN_VERB:
            raise WalCorruptionError(
                f"{self.path} has no begin record; refusing to append"
            )
        self._base_generation = records[0].generation
        self._tail_generation = records[-1].generation
        self._handle = open(self.path, "r+b")
        if discarded:
            self._handle.truncate(len(data) - discarded)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._handle.seek(0, os.SEEK_END)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._handle is not None:
                try:
                    if self._pending and not self._crashed:
                        self._handle.flush()
                        os.fsync(self._handle.fileno())
                except (OSError, ValueError):
                    pass
                try:
                    self._handle.close()
                except OSError:
                    pass

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------
    @property
    def base_generation(self) -> int:
        """The snapshot generation the log's records build on."""
        return self._base_generation

    @property
    def tail_generation(self) -> int:
        """The generation of the last appended record (the replication
        cursor a fully caught-up follower sits at)."""
        return self._tail_generation

    def append(
        self, verb: str, generation: int, payload: Dict[str, Any]
    ) -> WalRecord:
        """Frame, checksum, and append one verb record; returns it.

        Durability follows the fsync policy; with ``"commit"`` the
        record is on disk when this returns.
        """
        record = WalRecord(verb, generation, dict(payload))
        frame = record.to_bytes()
        with self._lock:
            if self._closed:
                raise WalCorruptionError(f"{self.path} is closed")
            if self._crashed:
                from repro.faults.injector import InjectedCrash

                raise InjectedCrash(
                    f"write-ahead log {self.path} already crashed"
                )
            self._maybe_crash(frame)
            self._handle.write(frame)
            self._pending += 1
            self._appends += 1
            self._tail_generation = generation
            if self.fsync_policy == "commit":
                self._sync_locked()
            elif self.fsync_policy == "batch":
                self._handle.flush()
                if self._pending >= self.batch_size:
                    self._sync_locked()
        if self._m_records is not None:
            self._m_records.inc(verb=verb)
            self._m_bytes.inc(len(frame))
        return record

    def _maybe_crash(self, frame: bytes) -> None:
        """Apply the plan's crash fault: tear this write, then die."""
        plan = self._plan
        if plan is None or getattr(plan, "crash_after_writes", None) is None:
            return
        if self._appends < plan.crash_after_writes:
            return
        from repro.faults.injector import InjectedCrash

        torn = getattr(plan, "torn_write_bytes", None)
        keep = len(frame) // 2 if torn is None else min(torn, len(frame))
        self._handle.write(frame[:keep])
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._crashed = True
        raise InjectedCrash(
            f"injected crash at WAL append {self._appends} "
            f"({keep}/{len(frame)} bytes of the record written)"
        )

    def _sync_locked(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._pending = 0
        if self._m_fsyncs is not None:
            self._m_fsyncs.inc()

    def sync(self) -> None:
        """Force the tail to disk (the SIGTERM drain calls this)."""
        with self._lock:
            if not self._closed and not self._crashed and self._pending:
                self._sync_locked()

    # ------------------------------------------------------------------
    # truncation (snapshot checkpoint) and reading
    # ------------------------------------------------------------------
    def truncate(self, base_generation: int) -> None:
        """Reset the log to a fresh ``begin`` at ``base_generation``.

        Called after a successful snapshot save: everything the log
        held is now captured by the snapshot, so replay starts over
        from the new base.  The rewrite is in-place truncate + append
        (the file keeps its identity for tailing readers, who observe
        the generation moving backwards and re-read from the start).
        A crash between the truncate and the begin append leaves a
        magic-only (or torn-begin) file, which :meth:`_open` treats as
        this same fresh state rather than corruption.
        """
        with self._lock:
            if self._closed:
                raise WalCorruptionError(f"{self.path} is closed")
            self._write_begin_locked(base_generation)
        if self._m_truncations is not None:
            self._m_truncations.inc()

    def _write_begin_locked(self, base_generation: int) -> None:
        """Rewrite the log as magic + one durable ``begin`` record."""
        begin = WalRecord(
            BEGIN_VERB, base_generation,
            {"base_generation": base_generation},
        )
        self._handle.seek(len(WAL_MAGIC))
        self._handle.truncate()
        self._handle.write(begin.to_bytes())
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._pending = 0
        self._base_generation = base_generation
        self._tail_generation = base_generation

    def records(self) -> Tuple[List[WalRecord], int]:
        """Re-read the log from disk: ``(valid records, discarded bytes)``.

        Reads an independent snapshot of the file, so a concurrent
        appender is safe — a half-written tail shows up as discarded
        bytes, exactly like a torn write after a crash.
        """
        return read_wal(self.path)


def read_wal(path) -> Tuple[List[WalRecord], int]:
    """Decode a log file: ``(valid records, discarded tail bytes)``.

    Raises :class:`WalCorruptionError` when the file is not a WAL at
    all (bad magic); a missing file is reported as ``([], 0)`` — no log
    means nothing to replay, which is a valid (pre-WAL) deployment.
    """
    path = Path(path)
    if not path.is_file():
        return [], 0
    return decode_records(path.read_bytes())


__all__ = [
    "BEGIN_VERB",
    "FSYNC_POLICIES",
    "WriteAheadLog",
    "read_wal",
]
