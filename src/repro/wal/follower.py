"""Follower replicas: tail the primary's WAL, apply verbs, swap layouts.

A :class:`FollowerFlix` wraps a read-only ``Flix`` loaded from the same
snapshot the primary saved, plus a *WAL source* it polls for new
records:

* :class:`FileWalSource` — the primary's log file itself (same host or
  shared filesystem);
* :class:`RemoteWalSource` — the ``wal_pull`` verb of the framed-TCP
  shard protocol (:mod:`repro.shard.protocol`), served by any
  :class:`~repro.shard.worker.ShardWorker` sitting next to the log.

Each :meth:`FollowerFlix.poll` applies the new records through the same
maintenance verbs the primary ran, so every applied record ends in one
atomic layout swap and the follower's ``index_fingerprint`` equals the
primary's at every generation it passes through — the layout generation
*is* the replication cursor (it is already in the cache key and on
every ``QueryResponse``).  Queries between polls are simply served at
the follower's current generation; ``replication_lag`` (generations
behind the log tail) is the staleness bound the front door exposes.

A follower is read-only by contract: call the query surface, never the
maintenance verbs (those belong to the primary; the follower applies
them only via :meth:`poll`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from repro.wal.log import read_wal
from repro.wal.record import WalRecord
from repro.wal.recovery import replay_records, wal_path_for


class ReplicationError(RuntimeError):
    """The follower cannot continue from this source (history gap: the
    primary snapshotted and truncated past the follower's generation —
    re-attach from the fresh snapshot)."""


@dataclass(frozen=True)
class WalSegment:
    """One poll's worth of log: records plus the cursor bounds."""

    records: Tuple[WalRecord, ...]
    base_generation: int
    tail_generation: int


class FileWalSource:
    """Tail the primary's log file directly (shared filesystem)."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def fetch(self, after_generation: int) -> WalSegment:
        records, _discarded = read_wal(self.path)
        base = records[0].generation if records else after_generation
        tail = records[-1].generation if records else after_generation
        fresh = tuple(
            r for r in records if r.generation > after_generation
        )
        return WalSegment(fresh, base, tail)

    def close(self) -> None:  # symmetry with RemoteWalSource
        pass


class RemoteWalSource:
    """Pull records over the shard protocol's ``wal_pull`` verb.

    Replies are paged (``page_size`` records per frame, the server caps
    it further): one :meth:`fetch` keeps pulling with an advancing
    cursor until the server reports no remainder, so no single reply
    frame ever carries the whole backlog.  Servers predating the
    ``truncated`` flag simply answer everything in the first page.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        page_size: int = 256,
    ) -> None:
        if page_size < 1:
            raise ValueError("page_size must be positive")
        self.host = host
        self.port = port
        self.page_size = page_size
        self._timeout = timeout

    def _pull_page(self, after_generation: int) -> dict:
        import socket

        from repro.shard.protocol import read_frame, write_frame

        with socket.create_connection(
            (self.host, self.port), timeout=self._timeout
        ) as sock:
            write_frame(
                sock,
                (
                    "wal_pull",
                    {
                        "after_generation": after_generation,
                        "max_records": self.page_size,
                    },
                ),
            )
            verb, payload = read_frame(sock)
        if verb == "error":
            raise ReplicationError(
                f"wal_pull failed: {payload.get('type')}: "
                f"{payload.get('message')}"
            )
        if verb != "wal_records":
            raise ReplicationError(f"unexpected wal_pull reply {verb!r}")
        return payload

    def fetch(self, after_generation: int) -> WalSegment:
        records: List[WalRecord] = []
        cursor = after_generation
        base: Optional[int] = None
        tail = after_generation
        while True:
            payload = self._pull_page(cursor)
            page = [
                WalRecord(
                    verb=entry["verb"],
                    generation=entry["generation"],
                    payload=entry.get("payload", {}),
                )
                for entry in payload["records"]
            ]
            if base is None:
                base = payload["base_generation"]
            tail = payload["tail_generation"]
            records.extend(page)
            if page:
                cursor = page[-1].generation
            if not page or not payload.get("truncated", False):
                break
        return WalSegment(
            tuple(records),
            base if base is not None else after_generation,
            tail,
        )

    def close(self) -> None:
        pass


class FollowerFlix:
    """A scale-out read replica driven by the primary's WAL."""

    role = "follower"

    def __init__(
        self, flix, source, observability=None
    ) -> None:
        self._flix = flix
        self._source = source
        self._poll_lock = threading.Lock()
        obs = observability if observability is not None else flix.obs
        if obs is not None and obs.enabled:
            registry = obs.registry
            self._m_polls = registry.counter(
                "flix_replication_polls_total",
                "Follower WAL polls, by outcome.",
            )
            self._m_applied = registry.counter(
                "flix_replication_applied_total",
                "WAL records a follower applied, by verb.",
            )
            self._g_lag = registry.gauge(
                "flix_replication_lag",
                "Generations between the WAL tail and this follower.",
            )
            self._g_generation = registry.gauge(
                "flix_replication_generation",
                "The follower's current layout generation.",
            )
        else:
            self._m_polls = self._m_applied = None
            self._g_lag = self._g_generation = None
        self._last_tail = flix.layout_generation

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls,
        collection_dir,
        index_dir,
        source=None,
        verify: bool = True,
    ) -> "FollowerFlix":
        """Load the saved snapshot and follow its WAL.

        ``source`` defaults to tailing the ``wal.log`` beside the index
        (pass a :class:`RemoteWalSource` to replicate across hosts).
        The snapshot-time collection is loaded from ``collection_dir``;
        post-snapshot document changes arrive through the log.
        """
        from repro.collection.io import load_collection
        from repro.core.persistence import load_flix

        collection = load_collection(collection_dir)
        flix = load_flix(collection, index_dir, verify=verify)
        if source is None:
            source = FileWalSource(wal_path_for(index_dir))
        return cls(flix, source)

    # ------------------------------------------------------------------
    # replication
    # ------------------------------------------------------------------
    @property
    def flix(self):
        return self._flix

    @property
    def generation(self) -> int:
        """The follower's applied layout generation (the cursor)."""
        return self._flix.layout_generation

    def poll(self) -> int:
        """Fetch and apply new records; returns how many applied.

        Applying goes through the primary's own maintenance verbs, so
        each record is one atomic generation swap and queries racing
        the poll keep the snapshot they pinned.
        """
        with self._poll_lock:
            cursor = self.generation
            segment = self._source.fetch(cursor)
            if segment.base_generation > cursor:
                if self._m_polls is not None:
                    self._m_polls.inc(outcome="gap")
                raise ReplicationError(
                    f"log starts at generation {segment.base_generation}, "
                    f"follower is at {cursor}: the primary truncated past "
                    "us; re-attach from the latest snapshot"
                )
            applied = replay_records(self._flix, list(segment.records))
            self._last_tail = max(segment.tail_generation, self.generation)
            if self._m_polls is not None:
                self._m_polls.inc(outcome="ok")
                for record in segment.records:
                    if record.generation > cursor:
                        self._m_applied.inc(verb=record.verb)
                self._g_lag.set(self.replication_lag)
                self._g_generation.set(self.generation)
            return applied

    @property
    def replication_lag(self) -> int:
        """Generations between the last seen log tail and this replica
        (0 = fully caught up as of the last poll)."""
        return max(0, self._last_tail - self.generation)

    # ------------------------------------------------------------------
    # the read surface
    # ------------------------------------------------------------------
    def query(self, request, budget=None):
        """Serve one read at the follower's current generation."""
        return self._flix.query(request, budget=budget)

    def query_stream(self, request):
        return self._flix.query_stream(request)

    def index_fingerprint(self) -> str:
        return self._flix.index_fingerprint()

    def close(self) -> None:
        self._source.close()


__all__ = [
    "FileWalSource",
    "FollowerFlix",
    "RemoteWalSource",
    "ReplicationError",
    "WalSegment",
]
