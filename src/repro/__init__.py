"""FliX — a flexible framework for indexing complex XML document collections.

A faithful, from-scratch Python reproduction of Ralf Schenkel's EDBT 2004
paper.  The package bundles:

* a dependency-free XML substrate (:mod:`repro.xmlmodel`),
* the element-graph data model of interlinked collections
  (:mod:`repro.collection`),
* every path-index building block the paper composes — PPO, HOPI (2-hop),
  APEX, 1-index/A(k), DataGuide, transitive closure
  (:mod:`repro.indexes`),
* the FliX framework itself: meta-document building, strategy selection,
  index building, and the streaming path-expression evaluator
  (:mod:`repro.core`),
* a relaxed-XPath query layer with XXL-style ontology similarity
  (:mod:`repro.query`),
* dataset generators reproducing the paper's DBLP workload and the intro's
  movie scenario (:mod:`repro.datasets`), and
* the benchmark harness regenerating the paper's evaluation
  (:mod:`repro.bench`, driven by the suites under ``benchmarks/``), and
* sharded multi-process serving — shard planning over the meta-document
  graph, mmap-attached worker processes, and a coordinator front door
  (:mod:`repro.shard`, ``docs/SHARDING.md``), and
* crash durability — a checksummed write-ahead log of maintenance
  verbs, snapshot + replay recovery, and WAL-tailing follower replicas
  (:mod:`repro.wal`, ``docs/DURABILITY.md``).

Quickstart::

    from repro import Flix, FlixConfig, QueryRequest, XmlDocument, build_collection

    docs = [XmlDocument.from_text("a.xml", "<movie><title>Matrix</title></movie>")]
    collection = build_collection(docs)
    flix = Flix.build(collection, FlixConfig.naive())
    start = collection.document_root("a.xml")
    results = list(flix.query_stream(QueryRequest.descendants(start, tag="title")))
"""

from repro.collection import (
    CollectionStats,
    XmlCollection,
    XmlDocument,
    build_collection,
    collect_statistics,
)
from repro.core import (
    CacheConfig,
    Flix,
    FlixConfig,
    MetaDocument,
    PathExpressionEvaluator,
    QueryBudget,
    QueryLoadMonitor,
    QueryRequest,
    QueryResponse,
    QueryResult,
    ResilienceConfig,
    StreamedList,
)
from repro.faults import FaultPlan, FaultyBackend, FaultyFactory
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.serve import FlixService, ShardedLRUCache
from repro.shard import (
    FrontDoor,
    ShardCoordinator,
    ShardMap,
    ShardPlanner,
    ShardWorker,
    load_shard_map,
    spawn_worker,
    write_shard_map,
)
from repro.xmlmodel import XmlElement, parse_document, serialize

__version__ = "1.0.0"

__all__ = [
    "Flix",
    "FlixConfig",
    "FlixService",
    "CacheConfig",
    "ShardedLRUCache",
    "ResilienceConfig",
    "QueryBudget",
    "QueryRequest",
    "QueryResponse",
    "FaultPlan",
    "FaultyBackend",
    "FaultyFactory",
    "FrontDoor",
    "ShardCoordinator",
    "ShardMap",
    "ShardPlanner",
    "ShardWorker",
    "load_shard_map",
    "spawn_worker",
    "write_shard_map",
    "MetaDocument",
    "MetricsRegistry",
    "Observability",
    "PathExpressionEvaluator",
    "QueryResult",
    "QueryLoadMonitor",
    "StreamedList",
    "Tracer",
    "XmlCollection",
    "XmlDocument",
    "XmlElement",
    "CollectionStats",
    "build_collection",
    "collect_statistics",
    "parse_document",
    "serialize",
    "__version__",
]
