"""Synthetic DBLP: the paper's evaluation workload (section 6).

The paper generated "one XML document for each 2nd-level element of DBLP
(article, inproceedings, ...) and chose the corresponding documents for
publications in EDBT, ICDE, SIGMOD and VLDB and articles in TODS and
VLDB-Journal.  The resulting collection consisted of 6,210 documents with
168,991 elements and 25,368 inter-document links."

This generator reproduces that shape deterministically:

* one document per publication with the DBLP record schema
  (``author+ title year pages booktitle|journal volume? ee url cite*``);
* citations (``cite`` elements carrying an ``xlink:href`` to the cited
  record) point to strictly earlier publications, drawn with preferential
  attachment, so the citation graph is an acyclic, skewed-in-degree DAG —
  the "mostly isolated documents, few links" structure the paper says makes
  DBLP a good candidate for Maximal PPO (section 4.3);
* publication 90% through the corpus is *"ARIES: A Transaction Recovery
  Method..."* by C. Mohan at VLDB (the paper's Figure 5 query starts from
  "Mohan's VLDB 99 paper about ARIES"), given an elevated citation budget
  so its transitive citation neighbourhood is rich.

The defaults are scaled down (600 documents) so the test and benchmark
suites run in seconds; ``DblpSpec.paper_scale()`` reproduces the full 6,210
document corpus.  Links-per-document (~4.1) matches the paper at any scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.collection.builder import build_collection
from repro.collection.collection import XmlCollection
from repro.collection.document import XmlDocument
from repro.xmlmodel.dom import XmlElement

#: (venue key, kind, container tag) — the six venues of section 6
VENUES: Tuple[Tuple[str, str, str], ...] = (
    ("EDBT", "inproceedings", "booktitle"),
    ("ICDE", "inproceedings", "booktitle"),
    ("SIGMOD", "inproceedings", "booktitle"),
    ("VLDB", "inproceedings", "booktitle"),
    ("TODS", "article", "journal"),
    ("VLDB-Journal", "article", "journal"),
)

_FIRST_NAMES = (
    "Alice", "Bela", "Chandra", "Dana", "Erik", "Fatima", "Goran", "Hana",
    "Ivan", "Jun", "Katya", "Luis", "Mei", "Nadia", "Omar", "Priya",
)
_LAST_NAMES = (
    "Schmidt", "Okafor", "Tanaka", "Novak", "Costa", "Weiss", "Hansen",
    "Petrov", "Iyer", "Moreau", "Larsen", "Kaya", "Silva", "Berg", "Adler",
)
_TITLE_WORDS = (
    "Adaptive", "Indexing", "Queries", "XML", "Joins", "Streams", "Views",
    "Caching", "Transactions", "Recovery", "Optimization", "Schemas",
    "Partitioning", "Replication", "Mining", "Workloads", "Storage",
    "Semistructured", "Graphs", "Paths",
)

ARIES_TITLE = "ARIES: A Transaction Recovery Method Supporting Fine-Granularity Locking"
ARIES_AUTHOR = "C. Mohan"


@dataclass(frozen=True)
class DblpSpec:
    """Knobs of the synthetic DBLP generator."""

    documents: int = 600
    mean_citations: float = 4.086  # 25,368 / 6,210 — the paper's ratio
    #: extra citations handed to the designated ARIES record so the Figure 5
    #: query has a deep transitive neighbourhood
    aries_citations: int = 25
    #: preferential-attachment strength (0 = uniform over earlier papers)
    citation_skew: float = 0.7
    seed: int = 2004
    min_authors: int = 1
    max_authors: int = 5

    def __post_init__(self) -> None:
        if self.documents < 1:
            raise ValueError("documents must be positive")
        if not 0.0 <= self.citation_skew <= 1.0:
            raise ValueError("citation_skew must be within [0, 1]")

    @classmethod
    def paper_scale(cls) -> "DblpSpec":
        """The full corpus of section 6 (6,210 documents)."""
        return cls(documents=6210)

    @property
    def aries_position(self) -> int:
        """Index of the designated ARIES record (90% through the corpus)."""
        return max(0, int(self.documents * 0.9) - 1)


def generate_dblp_documents(spec: DblpSpec = DblpSpec()) -> List[XmlDocument]:
    """The publication records as standalone documents."""
    rng = random.Random(spec.seed)
    names = [_document_name(i) for i in range(spec.documents)]
    # Preferential-attachment "ball list": every record enters once on
    # creation and once more per citation received, so a uniform draw from
    # the list is a draw proportional to in-degree + 1.
    balls: List[int] = []

    documents: List[XmlDocument] = []
    for position in range(spec.documents):
        is_aries = position == spec.aries_position
        venue, kind, container = (
            ("VLDB", "inproceedings", "booktitle") if is_aries
            else VENUES[rng.randrange(len(VENUES))]
        )
        root = XmlElement(kind, {"key": f"conf/{venue.lower()}/{position}"})
        authors = (
            [ARIES_AUTHOR]
            if is_aries
            else _author_names(rng, spec.min_authors, spec.max_authors)
        )
        for author in authors:
            root.make_child("author", text=author)
        title = ARIES_TITLE if is_aries else _title(rng)
        root.make_child("title", text=title)
        year = 1999 if is_aries else 1985 + (position * 19) // max(1, spec.documents)
        root.make_child("year", text=str(year))
        first_page = rng.randrange(1, 600)
        root.make_child("pages", text=f"{first_page}-{first_page + rng.randrange(8, 30)}")
        root.make_child(container, text=venue)
        if kind == "article":
            root.make_child("volume", text=str(rng.randrange(1, 30)))
            root.make_child("number", text=str(rng.randrange(1, 5)))
        root.make_child("ee", {"href": f"https://doi.example/{position}"})
        root.make_child("url", {"href": f"https://dblp.example/rec/{position}"})
        for cited in _citations(rng, spec, position, balls, is_aries):
            balls.append(cited)
            root.make_child("cite", {"xlink:href": names[cited]})
        documents.append(XmlDocument(names[position], root))
        balls.append(position)
    return documents


def generate_dblp(spec: DblpSpec = DblpSpec()) -> XmlCollection:
    """The assembled collection (documents + resolved citation links)."""
    return build_collection(generate_dblp_documents(spec))


def find_aries(collection: XmlCollection) -> int:
    """Node id of the ARIES record's root — the Figure 5 query start."""
    hits = collection.find_by_text("title", "ARIES")
    if not hits:
        raise LookupError("collection has no ARIES record; not a DBLP dataset?")
    title = hits[0]
    root = collection.element(title).parent
    if root is None:
        raise LookupError("malformed ARIES record")
    return collection.node_id_of(root)


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _document_name(position: int) -> str:
    return f"rec{position:06d}.xml"


def _author_names(rng: random.Random, low: int, high: int) -> List[str]:
    count = rng.randint(low, high)
    return [
        f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"
        for _ in range(count)
    ]


def _title(rng: random.Random) -> str:
    words = rng.sample(_TITLE_WORDS, k=rng.randint(3, 6))
    return " ".join(words)


def _citations(
    rng: random.Random,
    spec: DblpSpec,
    position: int,
    balls: List[int],
    is_aries: bool,
) -> List[int]:
    """Cited earlier records: preferential attachment, no duplicates."""
    if position == 0:
        return []
    budget = spec.aries_citations if is_aries else _poisson(rng, spec.mean_citations)
    budget = min(budget, position)
    chosen: List[int] = []
    chosen_set = set()
    for _ in range(budget):
        for _attempt in range(8):
            if balls and rng.random() < spec.citation_skew:
                candidate = balls[rng.randrange(len(balls))]
            else:
                candidate = rng.randrange(position)
            if candidate not in chosen_set:
                chosen_set.add(candidate)
                chosen.append(candidate)
                break
    return chosen


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's Poisson sampler (mean is small, so this is fast)."""
    import math

    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count
