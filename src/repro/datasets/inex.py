"""INEX-style collection: large standalone documents, few links.

Section 4.3 names the INEX benchmark collection as the canonical input for
the Naive configuration: "documents are relatively large, the number of
inter-document links is small, and queries usually do not cross document
boundaries".  The real INEX corpus (IEEE Computer Society articles in XML)
is licensed; this generator reproduces its structural profile:

* few documents (articles), each *deep and large* — front matter, nested
  sections down to several levels, paragraphs, figures, bibliography;
* intra-document links: citation ``ref`` elements pointing (via ``idref``)
  at bibliography entries in the same article;
* very few inter-document links: the occasional cross-article citation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.collection.builder import build_collection
from repro.collection.collection import XmlCollection
from repro.collection.document import XmlDocument
from repro.xmlmodel.dom import XmlElement

_SECTION_TITLES = (
    "Introduction", "Background", "Architecture", "Implementation",
    "Evaluation", "Related Work", "Discussion", "Conclusion",
)
_WORDS = (
    "retrieval", "structure", "element", "ranking", "index", "query",
    "relevance", "document", "markup", "collection", "evaluation",
)


@dataclass(frozen=True)
class InexSpec:
    """Knobs of the INEX-style generator."""

    articles: int = 12
    #: elements per article, on average (INEX articles are in the hundreds)
    mean_article_size: int = 250
    max_section_depth: int = 4
    bibliography_entries: int = 12
    #: intra-document citation refs per article
    citations_per_article: int = 8
    #: probability that an article carries one cross-article citation
    cross_citation_rate: float = 0.2
    seed: int = 7

    def __post_init__(self) -> None:
        if self.articles < 1:
            raise ValueError("articles must be positive")
        if not 0.0 <= self.cross_citation_rate <= 1.0:
            raise ValueError("cross_citation_rate must be within [0, 1]")


def generate_inex_documents(spec: InexSpec = InexSpec()) -> List[XmlDocument]:
    rng = random.Random(spec.seed)
    documents = []
    for i in range(spec.articles):
        documents.append(_article(spec, rng, i))
    return documents


def generate_inex(spec: InexSpec = InexSpec()) -> XmlCollection:
    return build_collection(generate_inex_documents(spec))


def _article(spec: InexSpec, rng: random.Random, position: int) -> XmlDocument:
    name = f"article{position:04d}.xml"
    root = XmlElement("article", {"id": "root"})
    front = root.make_child("fm")
    front.make_child("ti", text=" ".join(rng.sample(_WORDS, 4)).title())
    for _ in range(rng.randint(1, 4)):
        author = front.make_child("au")
        author.make_child("fnm", text=rng.choice(("A.", "B.", "C.", "D.")))
        author.make_child("snm", text=rng.choice(_WORDS).title())
    front.make_child("abs", text=_sentence(rng, 18))

    body = root.make_child("bdy")
    budget = max(20, spec.mean_article_size - 30 - spec.bibliography_entries * 3)
    section_count = rng.randint(4, len(_SECTION_TITLES))
    for s in range(section_count):
        _section(
            body, rng, f"s{s}", _SECTION_TITLES[s],
            budget // section_count, spec.max_section_depth,
        )

    back = root.make_child("bm")
    bibliography = back.make_child("bib")
    for b in range(spec.bibliography_entries):
        entry = bibliography.make_child("bb", {"id": f"bib{b}"})
        entry.make_child("au", text=rng.choice(_WORDS).title())
        entry.make_child("ti", text=_sentence(rng, 5))

    # intra-document citations from paragraphs to bibliography entries
    paragraphs = [e for e in root.iter() if e.name == "p"]
    for _ in range(min(spec.citations_per_article, len(paragraphs))):
        paragraph = rng.choice(paragraphs)
        paragraph.make_child(
            "ref", {"idref": f"bib{rng.randrange(spec.bibliography_entries)}"}
        )
    # rare cross-article citation
    if position > 0 and rng.random() < spec.cross_citation_rate:
        target = rng.randrange(position)
        bibliography.children[rng.randrange(len(bibliography.children))].make_child(
            "xref", {"xlink:href": f"article{target:04d}.xml"}
        )
    return XmlDocument(name, root)


def _section(
    parent: XmlElement,
    rng: random.Random,
    identifier: str,
    title: str,
    budget: int,
    depth_left: int,
) -> None:
    section = parent.make_child("sec", {"id": identifier})
    section.make_child("st", text=title)
    remaining = max(2, budget - 2)
    while remaining > 0:
        if depth_left > 1 and remaining > 8 and rng.random() < 0.3:
            sub_budget = remaining // 2
            _section(
                section, rng, f"{identifier}.{remaining}", _sentence(rng, 2).title(),
                sub_budget, depth_left - 1,
            )
            remaining -= sub_budget
        else:
            section.make_child("p", text=_sentence(rng, rng.randint(8, 25)))
            remaining -= 1


def _sentence(rng: random.Random, words: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(words))
