"""Parameterized synthetic collections for ablations and stress tests.

The paper's design discussion keeps returning to two structural knobs:
*how large are the documents* and *how dense are the links* (sections 2.2,
4.1, 4.3).  :func:`generate_synthetic_collection` sweeps exactly those, and
:func:`generate_figure1_collection` rebuilds the shape of the paper's
Figure 1 — a tree-shaped subcollection (documents 1-4) next to a densely
interlinked one (documents 5-10) — which is the motivating input for the
Hybrid Partitions configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.collection.builder import build_collection
from repro.collection.collection import XmlCollection
from repro.collection.document import XmlDocument
from repro.xmlmodel.dom import XmlElement

_DEFAULT_TAGS = ("section", "item", "entry", "record", "note", "ref", "data")


@dataclass(frozen=True)
class SyntheticSpec:
    """Knobs of the synthetic collection generator."""

    documents: int = 50
    mean_document_size: int = 30
    #: inter-document links per document (targets: roots or anchors)
    links_per_document: float = 1.0
    #: fraction of inter-document links that point at a non-root anchor
    deep_link_fraction: float = 0.3
    #: intra-document idref links per document
    intra_links_per_document: float = 0.0
    tags: Sequence[str] = _DEFAULT_TAGS
    max_children: int = 4
    seed: int = 42

    def __post_init__(self) -> None:
        if self.documents < 1 or self.mean_document_size < 1:
            raise ValueError("documents and mean_document_size must be positive")
        if not 0.0 <= self.deep_link_fraction <= 1.0:
            raise ValueError("deep_link_fraction must be within [0, 1]")


def random_tree_document(
    name: str,
    size: int,
    rng: random.Random,
    tags: Sequence[str] = _DEFAULT_TAGS,
    max_children: int = 4,
) -> XmlDocument:
    """A random rooted tree with ``size`` elements and anchored ids.

    Every element gets an ``id`` attribute (``<name>#e<i>``-addressable) so
    deep links into the document are possible.
    """
    if size < 1:
        raise ValueError("size must be positive")
    if max_children < 1:
        raise ValueError("max_children must be positive")
    root = XmlElement("doc", {"id": "e0"})
    elements = [root]
    for i in range(1, size):
        parent = elements[rng.randrange(len(elements))]
        while len(parent.children) >= max_children:
            # a fresh leaf always has capacity, so this terminates
            parent = elements[rng.randrange(len(elements))]
        child = parent.make_child(rng.choice(list(tags)), {"id": f"e{i}"})
        child.append_text(f"payload {i}")
        elements.append(child)
    return XmlDocument(name, root)


def generate_synthetic_documents(spec: SyntheticSpec = SyntheticSpec()) -> List[XmlDocument]:
    rng = random.Random(spec.seed)
    names = [f"doc{i:05d}.xml" for i in range(spec.documents)]
    sizes = [
        max(2, int(rng.gauss(spec.mean_document_size, spec.mean_document_size / 4)))
        for _ in range(spec.documents)
    ]
    documents = [
        random_tree_document(names[i], sizes[i], rng, spec.tags, spec.max_children)
        for i in range(spec.documents)
    ]

    # Inter-document links: from a random element to a random other
    # document's root (or a deep anchor for deep_link_fraction of them).
    total_links = round(spec.links_per_document * spec.documents)
    for _ in range(total_links):
        source_doc = documents[rng.randrange(spec.documents)]
        target_index = rng.randrange(spec.documents)
        if names.index(source_doc.name) == target_index and spec.documents > 1:
            target_index = (target_index + 1) % spec.documents
        target_doc = documents[target_index]
        source_element = source_doc.elements[rng.randrange(source_doc.element_count)]
        if rng.random() < spec.deep_link_fraction and target_doc.element_count > 1:
            anchor = f"e{rng.randrange(1, target_doc.element_count)}"
            href = f"{target_doc.name}#{anchor}"
        else:
            href = target_doc.name
        source_element.make_child("link", {"xlink:href": href})
        source_doc.invalidate_caches()

    # Intra-document idref links.
    total_intra = round(spec.intra_links_per_document * spec.documents)
    for _ in range(total_intra):
        document = documents[rng.randrange(spec.documents)]
        if document.element_count < 3:
            continue
        source = document.elements[rng.randrange(document.element_count)]
        target_ordinal = rng.randrange(document.element_count)
        source.make_child("ref", {"idref": f"e{target_ordinal}"})
        document.invalidate_caches()
    return documents


def generate_synthetic_collection(spec: SyntheticSpec = SyntheticSpec()) -> XmlCollection:
    return build_collection(generate_synthetic_documents(spec))


def generate_figure1_collection(
    document_size: int = 25,
    seed: int = 1,
) -> XmlCollection:
    """Ten documents shaped like the paper's Figure 1.

    Documents 1-4 form a tree at the document level (links point at roots,
    each root referenced at most once), documents 5-10 are densely
    interlinked with multiple and deep links, including a back edge.
    """
    rng = random.Random(seed)
    names = [f"d{i:02d}.xml" for i in range(1, 11)]
    documents = [
        random_tree_document(name, document_size, rng) for name in names
    ]
    by_name = {doc.name: doc for doc in documents}

    def add_link(source_name: str, target_name: str, deep: bool = False) -> None:
        source = by_name[source_name]
        element = source.elements[rng.randrange(source.element_count)]
        target = by_name[target_name]
        if deep and target.element_count > 1:
            href = f"{target_name}#e{rng.randrange(1, target.element_count)}"
        else:
            href = target_name
        element.make_child("link", {"xlink:href": href})
        source.invalidate_caches()

    # Tree-shaped part: 1 -> 2, 1 -> 3, 3 -> 4 (all to roots, no sharing).
    add_link("d01.xml", "d02.xml")
    add_link("d01.xml", "d03.xml")
    add_link("d03.xml", "d04.xml")
    # Densely linked part: a web over documents 5-10 with deep links and a
    # cycle (d10 -> d05).
    dense = names[4:]
    for source_name in dense:
        for target_name in dense:
            if source_name != target_name and rng.random() < 0.5:
                add_link(source_name, target_name, deep=rng.random() < 0.5)
    add_link("d10.xml", "d05.xml")
    # One bridge between the two worlds, like the d5 -> d4 edge of Figure 3.
    add_link("d05.xml", "d04.xml", deep=True)
    return build_collection(documents)
