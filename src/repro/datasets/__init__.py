"""Dataset generators.

The paper evaluates on a DBLP extract and motivates FliX with a
heterogeneous movie collection; neither resource ships with this
reproduction (see DESIGN.md section 4), so deterministic synthetic
generators reproduce their structural properties:

* :mod:`repro.datasets.dblp` — DBLP-like publication records with a skewed
  citation graph (6,210 docs / ~27 elements per doc / ~4.1 links per doc at
  paper scale, freely scalable);
* :mod:`repro.datasets.movies` — the intro's heterogeneous movie scenario
  (tag synonyms, alternative titles, varying nesting);
* :mod:`repro.datasets.synthetic` — parameterized random collections
  (document count, size, link density) including the Figure 1 shape of a
  tree-ish subcollection next to a densely interlinked one.
"""

from repro.datasets.dblp import DblpSpec, generate_dblp, generate_dblp_documents
from repro.datasets.inex import InexSpec, generate_inex, generate_inex_documents
from repro.datasets.movies import generate_movie_collection
from repro.datasets.synthetic import (
    SyntheticSpec,
    generate_figure1_collection,
    generate_synthetic_collection,
)

__all__ = [
    "DblpSpec",
    "generate_dblp",
    "generate_dblp_documents",
    "InexSpec",
    "generate_inex",
    "generate_inex_documents",
    "generate_movie_collection",
    "SyntheticSpec",
    "generate_synthetic_collection",
    "generate_figure1_collection",
]
