"""The heterogeneous movie collection from the paper's introduction.

Section 1.1 motivates relaxed queries with a movie search:
``/movie[title="Matrix: Revolutions"]/actor/movie`` fails literally because

* one source tags movies ``science-fiction`` instead of ``movie``,
* one source titles the film "Matrix 3" instead of "Matrix: Revolutions",
* the path between movie and actor is longer than one step
  (``movie/cast/actor``) or crosses link hops
  (``movie/follows/movie/cast/actor``).

This generator materializes exactly that scenario: a small collection of
movie documents from three "sources" with different schemas, connected by
XLink references (sequel links, actor filmography links), so the examples
and tests can demonstrate ontology-based tag similarity plus structural
relaxation end to end.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.collection.builder import build_collection
from repro.collection.collection import XmlCollection
from repro.collection.document import XmlDocument
from repro.xmlmodel.dom import XmlElement

#: (document, schema, title, alt-title or None, actors)
_MOVIES: Tuple[Tuple[str, str, str, str, Tuple[str, ...]], ...] = (
    # Source A: flat <movie><actor/> records
    ("matrix1.xml", "flat", "The Matrix", "", ("Keanu Reeves", "Carrie-Anne Moss", "Laurence Fishburne")),
    ("matrix2.xml", "flat", "Matrix: Reloaded", "", ("Keanu Reeves", "Carrie-Anne Moss")),
    # Source B: <science-fiction> with nested <cast><actor/></cast>, and the
    # IMDB-style alternative title "Matrix 3"
    ("matrix3.xml", "nested", "Matrix: Revolutions", "Matrix 3", ("Keanu Reeves", "Carrie-Anne Moss", "Jada Pinkett Smith")),
    ("bladerunner.xml", "nested", "Blade Runner", "", ("Harrison Ford", "Rutger Hauer")),
    # Source C: <film> with <credits><performer/></credits>
    ("speed.xml", "credits", "Speed", "", ("Keanu Reeves", "Sandra Bullock")),
    ("johnwick.xml", "credits", "John Wick", "", ("Keanu Reeves",)),
    ("memento.xml", "credits", "Memento", "", ("Guy Pearce", "Carrie-Anne Moss")),
)

#: sequel chains expressed as <follows xlink:href="..."/> links
_SEQUELS: Tuple[Tuple[str, str], ...] = (
    ("matrix2.xml", "matrix1.xml"),
    ("matrix3.xml", "matrix2.xml"),
)


def generate_movie_collection() -> XmlCollection:
    """Build the intro's scenario: 7 movies + per-actor filmography docs."""
    documents = [_movie_document(*spec) for spec in _MOVIES]
    documents.extend(_filmography_documents())
    return build_collection(documents)


def _movie_document(
    name: str,
    schema: str,
    title: str,
    alt_title: str,
    actors: Tuple[str, ...],
) -> XmlDocument:
    if schema == "flat":
        root = XmlElement("movie")
        root.make_child("title", text=title)
        for actor in actors:
            child = root.make_child("actor", {"xlink:href": _actor_document(actor)})
            child.make_child("name", text=actor)
    elif schema == "nested":
        root = XmlElement("science-fiction")
        root.make_child("title", text=title)
        if alt_title:
            root.make_child("alternative-title", text=alt_title)
        cast = root.make_child("cast")
        for actor in actors:
            child = cast.make_child("actor", {"xlink:href": _actor_document(actor)})
            child.make_child("name", text=actor)
    elif schema == "credits":
        root = XmlElement("film")
        root.make_child("title", text=title)
        credits = root.make_child("credits")
        for actor in actors:
            child = credits.make_child(
                "performer", {"xlink:href": _actor_document(actor)}
            )
            child.make_child("name", text=actor)
    else:
        raise ValueError(f"unknown movie schema {schema!r}")
    for source, target in _SEQUELS:
        if source == name:
            root.make_child("follows", {"xlink:href": target})
    return XmlDocument(name, root)


def _actor_document(actor: str) -> str:
    slug = actor.lower().replace(" ", "-").replace("'", "")
    return f"actor-{slug}.xml"


def _filmography_documents() -> List[XmlDocument]:
    """One document per actor, linking to every movie they appear in.

    These inter-document links are what lets ``movie//actor//movie`` reach a
    co-starred movie across document boundaries — the query the paper's
    relaxed example ultimately evaluates.
    """
    appearances: Dict[str, List[str]] = {}
    for name, _schema, _title, _alt, actors in _MOVIES:
        for actor in actors:
            appearances.setdefault(actor, []).append(name)
    documents = []
    for actor in sorted(appearances):
        slug = actor.lower().replace(" ", "-").replace("'", "")
        root = XmlElement("person")
        root.make_child("name", text=actor)
        filmography = root.make_child("filmography")
        for movie in appearances[actor]:
            filmography.make_child("acts-in", {"xlink:href": movie})
        documents.append(XmlDocument(f"actor-{slug}.xml", root))
    return documents


def movie_back_links() -> List[Tuple[str, str]]:
    """(movie document, actor document) pairs for building richer variants."""
    pairs = []
    for name, _schema, _title, _alt, actors in _MOVIES:
        for actor in actors:
            slug = actor.lower().replace(" ", "-").replace("'", "")
            pairs.append((name, f"actor-{slug}.xml"))
    return pairs
