"""Cost-based probe planning for the Path Expression Evaluator.

ROADMAP's top open item, in the spirit of the path-summary/statistics
work surveyed by Mahboubi & Darmont and DescribeX's extent summaries
(see ``PAPERS.md``): order and prune the PEE's probes per query using
estimated result sizes, per-meta index selectivity, and residual-link
fan-out — instead of the paper's fixed expansion discipline.

Three cooperating pieces live here (``docs/PLANNING.md`` has the full
cost model):

* :class:`ProbeFrontier` — per-query duplicate-pruning state.  Figure 4's
  loop re-discovers entry elements through converging residual links and
  only drops them after popping them and paying ``index.reachable`` probes
  to prove coverage (§5.1).  The frontier proves the *exact-duplicate*
  case for free: a node popped once is always covered on a later pop
  (descendants-or-self — every entry reaches itself), and a node already
  enqueued at priority ``p`` covers any later enqueue at priority
  ``>= p`` (the earlier copy pops first and its coverage persists).
  Pruning those pops and pushes changes **no** emitted result and no
  completeness: the surviving pop sequence is exactly the fixed
  discipline's, minus pops that would have been dropped as covered
  anyway.  This is the planner's default, byte-identical mode.

* :class:`LayoutStatistics` / :class:`MetaStatistics` — per-meta
  selectivity statistics collected at build/compact/save time and
  persisted next to the manifest as ``planner_stats.json``: node and
  per-tag counts (index selectivity), residual-link fan-out/fan-in, and
  a Cohen-estimator transitive-closure size over the *meta-level* link
  graph (:func:`repro.graph.estimation.estimate_meta_reach`) — how many
  downstream meta documents a probe of this meta can pull in.

* :class:`ProbePlanner` — combines a :class:`~repro.core.config
  .PlannerConfig` with (lazily collected) statistics.  It hands the
  evaluator a fresh frontier per query, an optional per-meta rank map
  for the opt-in ``order="cost"`` mode (heap ties break toward metas
  with higher estimated yield; result *sets* stay identical, reported
  distances may differ), and builds the static :class:`QueryPlan` the
  EXPLAIN surface returns.

The statistics are strictly advisory: damaged or stale statistics can
only cost performance, never correctness, which is why the sidecar is
not part of the manifest's integrity map.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.config import PlannerConfig
from repro.graph.digraph import Digraph
from repro.graph.estimation import estimate_meta_reach
from repro.indexes.base import NodeId

#: file name of the statistics sidecar, next to ``flix_manifest.json``
STATISTICS_FILENAME = "planner_stats.json"
#: bump when the sidecar schema changes (unknown versions are ignored)
STATISTICS_VERSION = 1
#: tags tracked exactly per meta document; the long tail aggregates into
#: ``MetaStatistics.other_tag_nodes``
TAG_TOP = 32

#: query kinds the Figure-4 priority-queue loop evaluates; the rest run
#: on the element graph directly and have nothing for the planner to do
PLANNED_KINDS = ("descendants", "ancestors", "path", "test")


class ProbeFrontier:
    """Per-query exact-duplicate pruning over the Figure-4 loop.

    Correctness argument (why pruning is byte-identical):

    * ``admit_pop`` refuses a node popped before.  In the fixed
      discipline that second pop always reaches the §5.1 coverage check
      and is dropped: after the first pop the node is either in its
      meta's ``previous`` list (and ``reachable(node, node)`` holds —
      descendants-or-self) or was itself dropped because some earlier
      entry covers it, and that cover persists.  A dropped pop emits
      nothing and pushes nothing, so skipping it — and the
      ``index.reachable`` probes proving it — changes no output.
    * ``admit_push`` refuses a neighbour that was already popped (its
      queued copy would pop later, at ``>=`` priority, and be dropped as
      above) or already enqueued at a priority ``<=`` the new one (the
      earlier copy pops first; by the time the new copy would pop, the
      node is popped).  A push at a *smaller* priority than any seen
      must be admitted — it pops first and the stale copies get pruned
      on pop instead.

    Heap tie-break counters shift when pushes are pruned, but a counter
    only orders entries of equal priority, and every pruned entry would
    have contributed nothing — the surviving pop sequence, and hence the
    emitted stream, is unchanged.
    """

    __slots__ = ("_pushed", "_popped")

    def __init__(self) -> None:
        #: node -> smallest priority it was ever enqueued with
        self._pushed: Dict[NodeId, int] = {}
        self._popped: Set[NodeId] = set()

    def admit_pop(self, node: NodeId) -> bool:
        """True when this pop must be expanded; False when a previous pop
        of the same node provably covers it."""
        if node in self._popped:
            return False
        self._popped.add(node)
        return True

    def admit_push(self, node: NodeId, priority: int) -> bool:
        """True when the push can still contribute; False when an earlier
        pop or an earlier ``<=``-priority push provably covers it."""
        if node in self._popped:
            return False
        best = self._pushed.get(node)
        if best is not None and best <= priority:
            return False
        self._pushed[node] = priority
        return True


# ----------------------------------------------------------------------
# per-meta selectivity statistics (the persisted sidecar)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetaStatistics:
    """Build-time selectivity statistics for one meta document."""

    meta_id: int
    #: elements in the meta document
    nodes: int
    #: index strategy serving it (provenance for EXPLAIN)
    strategy: str
    #: outgoing residual-link endpoints (targets, with multiplicity)
    fan_out: int
    #: incoming residual-link endpoints (sources, with multiplicity)
    fan_in: int
    #: estimated meta documents reachable through residual links,
    #: including this one (Cohen estimator over the meta-level graph)
    reach: float
    #: exact per-tag element counts for the ``TAG_TOP`` most common tags
    tag_counts: Mapping[str, int] = field(default_factory=dict)
    #: elements whose tag fell outside ``tag_counts``
    other_tag_nodes: int = 0

    def estimated_matches(self, tag: Optional[str]) -> float:
        """Expected matches a probe of this meta yields for ``tag``
        (``None`` = wildcard)."""
        if tag is None:
            return float(self.nodes)
        exact = self.tag_counts.get(tag)
        if exact is not None:
            return float(exact)
        if self.other_tag_nodes:
            # the tag is in the untracked long tail: assume a uniform
            # spread over at least TAG_TOP further distinct tags
            return max(1.0, self.other_tag_nodes / TAG_TOP)
        return 0.0

    def to_dict(self) -> dict:
        return {
            "meta_id": self.meta_id,
            "nodes": self.nodes,
            "strategy": self.strategy,
            "fan_out": self.fan_out,
            "fan_in": self.fan_in,
            "reach": self.reach,
            "tag_counts": dict(self.tag_counts),
            "other_tag_nodes": self.other_tag_nodes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetaStatistics":
        return cls(
            meta_id=int(data["meta_id"]),
            nodes=int(data["nodes"]),
            strategy=str(data["strategy"]),
            fan_out=int(data["fan_out"]),
            fan_in=int(data["fan_in"]),
            reach=float(data["reach"]),
            tag_counts={
                str(tag): int(count)
                for tag, count in dict(data.get("tag_counts", {})).items()
            },
            other_tag_nodes=int(data.get("other_tag_nodes", 0)),
        )


@dataclass(frozen=True)
class LayoutStatistics:
    """All live metas' statistics, stamped with the layout generation.

    The generation stamp is the staleness check: statistics describing
    an older layout are recollected lazily (``Flix.planner_statistics``)
    rather than trusted — they are advisory either way.
    """

    generation: int
    rounds: int
    metas: Mapping[int, MetaStatistics] = field(default_factory=dict)
    version: int = STATISTICS_VERSION

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "generation": self.generation,
            "rounds": self.rounds,
            "metas": {
                str(meta_id): stats.to_dict()
                for meta_id, stats in sorted(self.metas.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LayoutStatistics":
        version = int(data.get("version", 0))
        if version != STATISTICS_VERSION:
            raise ValueError(
                f"unsupported planner statistics version {version}"
            )
        return cls(
            generation=int(data["generation"]),
            rounds=int(data.get("rounds", 8)),
            metas={
                int(meta_id): MetaStatistics.from_dict(stats)
                for meta_id, stats in dict(data.get("metas", {})).items()
            },
            version=version,
        )

    @classmethod
    def from_json(cls, text: str) -> "LayoutStatistics":
        return cls.from_dict(json.loads(text))


def collect_layout_statistics(
    slots: Sequence[Optional[Any]],
    meta_of: Mapping[NodeId, int],
    tag_of: Callable[[NodeId], str],
    generation: int,
    rounds: int = 8,
) -> LayoutStatistics:
    """Collect :class:`LayoutStatistics` over one layout snapshot.

    ``slots`` / ``meta_of`` are the layout's tables; ``tag_of`` resolves an
    element's tag (the collection's lookup).  Cost is linear in nodes and
    residual links plus one Cohen estimation over the (small) meta-level
    link graph.
    """
    live = [meta for meta in slots if meta is not None]
    graph = Digraph()
    fan_in: Dict[int, int] = {}
    for meta in live:
        graph.add_node(meta.meta_id)
        fan_in[meta.meta_id] = 0
    edges: Set[Tuple[int, int]] = set()
    for meta in live:
        for targets in meta.outgoing_links.values():
            for target in targets:
                target_meta = meta_of.get(target)
                if target_meta is None:
                    continue  # dangling link target (racing removal)
                fan_in[target_meta] = fan_in.get(target_meta, 0) + 1
                edges.add((meta.meta_id, target_meta))
    for source_meta, target_meta in edges:
        graph.add_edge(source_meta, target_meta)
    reach = estimate_meta_reach(graph, rounds=rounds)

    metas: Dict[int, MetaStatistics] = {}
    for meta in live:
        counts: Dict[str, int] = {}
        for node in meta.nodes:
            tag = tag_of(node)
            counts[tag] = counts.get(tag, 0) + 1
        if len(counts) > TAG_TOP:
            top = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
            kept = dict(top[:TAG_TOP])
            other = sum(count for _, count in top[TAG_TOP:])
        else:
            kept, other = counts, 0
        metas[meta.meta_id] = MetaStatistics(
            meta_id=meta.meta_id,
            nodes=len(meta.nodes),
            strategy=meta.strategy,
            fan_out=meta.residual_out_degree,
            fan_in=fan_in.get(meta.meta_id, 0),
            reach=float(reach.get(meta.meta_id, 1.0)),
            tag_counts=kept,
            other_tag_nodes=other,
        )
    return LayoutStatistics(generation=generation, rounds=rounds, metas=metas)


# ----------------------------------------------------------------------
# the EXPLAIN artifact
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProbePlanEntry:
    """One meta document in a plan's probe order, with its cost estimates."""

    meta_id: int
    #: position in the planned order (0 = most promising)
    rank: int
    strategy: str
    #: expected matches a probe yields for the request's tag filter
    estimated_matches: float
    #: estimated downstream metas reachable through residual links
    estimated_reach: float
    #: outgoing residual-link endpoints
    fan_out: int

    def to_dict(self) -> dict:
        return {
            "meta_id": self.meta_id,
            "rank": self.rank,
            "strategy": self.strategy,
            "estimated_matches": self.estimated_matches,
            "estimated_reach": self.estimated_reach,
            "fan_out": self.fan_out,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProbePlanEntry":
        return cls(
            meta_id=int(data["meta_id"]),
            rank=int(data["rank"]),
            strategy=str(data["strategy"]),
            estimated_matches=float(data["estimated_matches"]),
            estimated_reach=float(data["estimated_reach"]),
            fan_out=int(data["fan_out"]),
        )


@dataclass(frozen=True)
class QueryPlan:
    """The static plan EXPLAIN returns for one :class:`QueryRequest`.

    ``mode`` is ``"planned"`` (a configured planner drives the loop),
    ``"fixed"`` (planner off — the plan still shows what it *would* do),
    or ``"direct"`` (the kind runs on the element graph / child axis and
    never enters the Figure-4 loop).  ``pruned_metas`` are the live meta
    documents provably unable to contribute: no residual-link path from
    any source meta reaches them, so the loop can never probe them.
    """

    kind: str
    mode: str
    order: str
    prune: bool
    generation: int
    source_metas: Tuple[int, ...] = ()
    probes: Tuple[ProbePlanEntry, ...] = ()
    pruned_metas: Tuple[int, ...] = ()
    provenance: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "mode": self.mode,
            "order": self.order,
            "prune": self.prune,
            "generation": self.generation,
            "source_metas": list(self.source_metas),
            "probes": [probe.to_dict() for probe in self.probes],
            "pruned_metas": list(self.pruned_metas),
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QueryPlan":
        return cls(
            kind=str(data["kind"]),
            mode=str(data["mode"]),
            order=str(data["order"]),
            prune=bool(data["prune"]),
            generation=int(data["generation"]),
            source_metas=tuple(int(m) for m in data.get("source_metas", ())),
            probes=tuple(
                ProbePlanEntry.from_dict(probe)
                for probe in data.get("probes", ())
            ),
            pruned_metas=tuple(int(m) for m in data.get("pruned_metas", ())),
            provenance=dict(data.get("provenance", {})),
        )


# ----------------------------------------------------------------------
# the planner
# ----------------------------------------------------------------------
class ProbePlanner:
    """Planner state shared by every query of one evaluator.

    ``statistics`` is either a :class:`LayoutStatistics` instance or a
    zero-argument callable returning one lazily (``Flix`` passes its
    memoized per-generation collector) — ``None`` disables statistics-
    based ranking while keeping frontier pruning.  All methods are
    thread-safe; per-query state lives in the :class:`ProbeFrontier`
    handed out per search.
    """

    def __init__(
        self,
        config: Optional[PlannerConfig] = None,
        statistics: Any = None,
    ) -> None:
        self._config = config if config is not None else PlannerConfig()
        if callable(statistics):
            self._provider = statistics
        else:
            self._provider = lambda: statistics
        self._lock = threading.Lock()
        self._rank_cache: Dict[Tuple[int, Optional[str], bool], Dict[int, int]] = {}

    @property
    def config(self) -> PlannerConfig:
        return self._config

    @property
    def prunes(self) -> bool:
        return self._config.prune

    @property
    def reorders(self) -> bool:
        return self._config.order == "cost"

    def frontier(self) -> Optional[ProbeFrontier]:
        """A fresh per-query frontier, or ``None`` when pruning is off."""
        return ProbeFrontier() if self._config.prune else None

    def statistics(self) -> Optional[LayoutStatistics]:
        """The current statistics, or ``None`` (disabled, or collection
        failed — statistics are advisory and must never fail a query)."""
        if not self._config.statistics:
            return None
        try:
            return self._provider()
        except Exception:
            return None

    def rank_map(
        self, tag: Optional[str], forward: bool
    ) -> Optional[Dict[int, int]]:
        """Per-meta heap tie-break ranks for the ``order="cost"`` mode.

        Lower rank = higher expected yield: metas with more estimated
        matches for ``tag``, then larger estimated reach (backward:
        fan-in), expand first among equal-priority entries.  ``None``
        when reordering is off or no statistics are available.
        """
        if not self.reorders:
            return None
        stats = self.statistics()
        if stats is None or not stats.metas:
            return None
        key = (stats.generation, tag, forward)
        with self._lock:
            cached = self._rank_cache.get(key)
        if cached is not None:
            return cached
        ordered = sorted(
            stats.metas.values(),
            key=lambda m: (
                -m.estimated_matches(tag),
                -(m.reach if forward else float(m.fan_in)),
                m.meta_id,
            ),
        )
        ranks = {m.meta_id: rank for rank, m in enumerate(ordered)}
        with self._lock:
            if len(self._rank_cache) >= 64:
                self._rank_cache.clear()
            self._rank_cache[key] = ranks
        return ranks

    # ------------------------------------------------------------------
    # static planning (the EXPLAIN surface)
    # ------------------------------------------------------------------
    def plan(
        self,
        request: Any,
        layout: Any,
        seeds: Optional[Sequence[NodeId]] = None,
        configured: bool = True,
    ) -> QueryPlan:
        """The static :class:`QueryPlan` for ``request`` over ``layout``.

        ``seeds`` are the resolved seed nodes for the type-query form
        (the caller owns tag-table access); ``configured`` records
        whether a planner actually drives this instance's queries
        (``mode="fixed"`` otherwise).
        """
        cfg = self._config
        stats = self.statistics()
        provenance: Dict[str, Any] = {
            "planner": cfg.to_dict(),
            "configured": configured,
            "layout_generation": layout.generation,
            "statistics_generation": (
                stats.generation if stats is not None else None
            ),
        }
        kind = getattr(request, "kind", "?")
        if kind not in PLANNED_KINDS:
            # children / connections / cost run on the element graph (or
            # the child axis) directly — the Figure-4 loop never runs
            provenance["engine"] = "graph"
            return QueryPlan(
                kind=kind,
                mode="direct",
                order=cfg.order,
                prune=cfg.prune,
                generation=layout.generation,
                provenance=provenance,
            )

        forward = kind != "ancestors"
        sources: List[NodeId] = []
        if seeds is not None:
            sources = list(seeds)
        elif request.source is not None:
            sources = [request.source]
        source_metas = sorted(
            {
                layout.meta_of[node]
                for node in sources
                if node in layout.meta_of
            }
        )
        successors, predecessors = _meta_adjacency(layout)
        reachable = _reachable_metas(
            source_metas, successors if forward else predecessors
        )
        if (
            kind == "test"
            and getattr(request, "bidirectional", False)
            and request.target in layout.meta_of
        ):
            # the backward half of the bidirectional test probes whatever
            # reaches the target meta
            reachable |= _reachable_metas(
                [layout.meta_of[request.target]], predecessors
            )
        live_ids = {
            meta.meta_id for meta in layout.slots if meta is not None
        }
        pruned = tuple(sorted(live_ids - reachable))

        tag = getattr(request, "tag", None)
        scored = []
        for meta_id in reachable:
            meta_stats = stats.metas.get(meta_id) if stats is not None else None
            if meta_stats is not None:
                matches = meta_stats.estimated_matches(tag)
                reach = meta_stats.reach
                fan_out = meta_stats.fan_out
                strategy = meta_stats.strategy
            else:
                meta = layout.slots[meta_id]
                matches = float(len(meta.nodes)) if tag is None else 0.0
                reach = 1.0
                fan_out = meta.residual_out_degree
                strategy = meta.strategy
            scored.append((matches, reach, fan_out, strategy, meta_id))
        scored.sort(key=lambda row: (-row[0], -row[1], row[4]))
        probes = tuple(
            ProbePlanEntry(
                meta_id=meta_id,
                rank=rank,
                strategy=strategy,
                estimated_matches=matches,
                estimated_reach=reach,
                fan_out=fan_out,
            )
            for rank, (matches, reach, fan_out, strategy, meta_id) in enumerate(
                scored
            )
        )
        mode = "planned" if configured else "fixed"
        return QueryPlan(
            kind=kind,
            mode=mode,
            order=cfg.order,
            prune=cfg.prune,
            generation=layout.generation,
            source_metas=tuple(source_metas),
            probes=probes,
            pruned_metas=pruned,
            provenance=provenance,
        )


def _meta_adjacency(layout: Any) -> Tuple[Dict[int, Set[int]], Dict[int, Set[int]]]:
    """Forward and reverse adjacency of the meta-level residual-link graph."""
    successors: Dict[int, Set[int]] = {}
    predecessors: Dict[int, Set[int]] = {}
    meta_of = layout.meta_of
    for meta in layout.slots:
        if meta is None:
            continue
        successors.setdefault(meta.meta_id, set())
        predecessors.setdefault(meta.meta_id, set())
    for meta in layout.slots:
        if meta is None:
            continue
        for targets in meta.outgoing_links.values():
            for target in targets:
                target_meta = meta_of.get(target)
                if target_meta is None:
                    continue
                successors[meta.meta_id].add(target_meta)
                predecessors.setdefault(target_meta, set()).add(meta.meta_id)
    return successors, predecessors


def _reachable_metas(
    roots: Sequence[int], adjacency: Mapping[int, Set[int]]
) -> Set[int]:
    """Meta ids reachable from ``roots`` over ``adjacency`` (roots included)."""
    seen: Set[int] = set()
    stack = [root for root in roots if root in adjacency]
    while stack:
        meta_id = stack.pop()
        if meta_id in seen:
            continue
        seen.add(meta_id)
        stack.extend(
            succ for succ in adjacency.get(meta_id, ()) if succ not in seen
        )
    return seen


__all__ = [
    "STATISTICS_FILENAME",
    "STATISTICS_VERSION",
    "ProbeFrontier",
    "MetaStatistics",
    "LayoutStatistics",
    "collect_layout_statistics",
    "ProbePlanEntry",
    "QueryPlan",
    "ProbePlanner",
]
