"""Streamed result delivery (section 3.1).

"The decoupling between the client and the framework is implemented using a
multithreaded architecture where the client thread reads from a list in
which FliX inserts the results."  :class:`StreamedList` is that list: a
producer thread appends results as the PEE finds them; the client iterates,
blocking until the next result (or the end of the stream) arrives, and may
cancel the query at any point — "when the user decides to stop the query".
"""

from __future__ import annotations

import threading
from typing import Callable, Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class StreamedList(Generic[T]):
    """Thread-safe, append-only result list with blocking iteration.

    ``observe`` is an optional per-append callback (e.g. a metrics-counter
    increment); it runs outside the lock, on the producer thread, so a
    slow or reentrant observer can never stall consumers.
    """

    def __init__(self, observe: Optional[Callable[[], None]] = None) -> None:
        self._items: List[T] = []
        self._closed = False
        self._cancelled = False
        self._condition = threading.Condition()
        self._observe = observe

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def append(self, item: T) -> None:
        with self._condition:
            if self._closed:
                raise RuntimeError("cannot append to a closed StreamedList")
            self._items.append(item)
            self._condition.notify_all()
        if self._observe is not None:
            self._observe()

    def close(self) -> None:
        """Mark the stream complete; idempotent."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    @property
    def cancelled(self) -> bool:
        """Producers should poll this and stop early when set."""
        with self._condition:
            return self._cancelled

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def cancel(self) -> None:
        """Ask the producer to stop; already-delivered results remain."""
        with self._condition:
            self._cancelled = True
            self._condition.notify_all()

    def __iter__(self) -> Iterator[T]:
        position = 0
        while True:
            with self._condition:
                while position >= len(self._items) and not self._closed:
                    self._condition.wait()
                if position < len(self._items):
                    item = self._items[position]
                    position += 1
                else:
                    return
            yield item

    def get(self, index: int, timeout: Optional[float] = None) -> T:
        """Blocking positional access (raises ``TimeoutError`` on timeout)."""
        with self._condition:
            while index >= len(self._items):
                if self._closed:
                    raise IndexError(index)
                if not self._condition.wait(timeout):
                    raise TimeoutError(
                        f"result {index} not available within {timeout}s"
                    )
            return self._items[index]

    def snapshot(self) -> List[T]:
        """A copy of everything delivered so far (non-blocking)."""
        with self._condition:
            return list(self._items)

    def __len__(self) -> int:
        with self._condition:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed
