"""Self-tuning (section 7, future work — implemented here).

"If it turns out in the query evaluation engine that most queries have to
follow many links, then the choice of meta documents is no longer optimal
for the current query load.  In this case, the build phase should start
again, taking statistics on the query load into account."

:class:`QueryLoadMonitor` aggregates the :class:`~repro.core.pee.QueryStats`
of executed queries; :meth:`QueryLoadMonitor.advice` decides whether a
rebuild is warranted and recommends the next configuration.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.core.config import FlixConfig
from repro.core.pee import QueryStats


@dataclass(frozen=True)
class TuningAdvice:
    """Outcome of a self-tuning evaluation.

    ``should_compact`` flags *online compaction* (``Flix.compact``) as a
    cheaper remedy than a rebuild: incremental growth has piled up enough
    singleton meta documents (``compaction_candidates``) that merging
    them in place would cut residual-link traffic without rebuild
    downtime.  Both flags can be set at once; compaction is the cheaper
    first step, a rebuild the thorough one.
    """

    should_rebuild: bool
    reason: str
    recommended_config: Optional[FlixConfig] = None
    should_compact: bool = False
    compaction_candidates: Tuple[int, ...] = ()


def with_compaction_advice(
    advice: TuningAdvice,
    candidates: Sequence[int],
    threshold: int,
) -> TuningAdvice:
    """Layer compaction advice over a load-based :class:`TuningAdvice`.

    Compaction is recommended when at least ``threshold`` live
    incrementally-added meta documents exist (each ``add_document``
    creates one; they fragment the layout the paper's build phase chose).
    Load statistics are deliberately not required: the drift is
    structural and visible without traffic.
    """
    candidates = tuple(candidates)
    if threshold < 2:
        raise ValueError("compaction threshold must be at least 2")
    if len(candidates) < threshold:
        return advice
    reason = (
        f"{advice.reason}; {len(candidates)} incrementally-added meta "
        f"documents have accumulated (threshold {threshold}) — "
        "Flix.compact() would merge them without a rebuild"
    )
    return replace(
        advice,
        reason=reason,
        should_compact=True,
        compaction_candidates=candidates,
    )


class QueryLoadMonitor:
    """Sliding-window statistics over executed queries."""

    def __init__(self, window: int = 1000) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self._window = window
        self._stats: List[QueryStats] = []
        # serving workers record concurrently (repro.serve); the window
        # trim is a read-modify-write that must not interleave
        self._lock = threading.Lock()

    def record(self, stats: QueryStats) -> None:
        with self._lock:
            self._stats.append(stats)
            if len(self._stats) > self._window:
                del self._stats[: len(self._stats) - self._window]

    @property
    def query_count(self) -> int:
        with self._lock:
            return len(self._stats)

    @property
    def mean_link_traversals(self) -> float:
        with self._lock:
            if not self._stats:
                return 0.0
            return sum(s.link_traversals for s in self._stats) / len(self._stats)

    @property
    def mean_meta_document_visits(self) -> float:
        with self._lock:
            if not self._stats:
                return 0.0
            return sum(s.meta_document_visits for s in self._stats) / len(
                self._stats
            )

    @property
    def mean_results(self) -> float:
        with self._lock:
            if not self._stats:
                return 0.0
            return sum(s.results_returned for s in self._stats) / len(self._stats)

    def advice(
        self,
        current_config: FlixConfig,
        link_traversal_threshold: float = 8.0,
        min_queries: int = 20,
    ) -> TuningAdvice:
        """Should the build phase run again, and with what configuration?

        A rebuild is recommended when the average query follows more than
        ``link_traversal_threshold`` residual links: the meta documents are
        then too small (or cut along the wrong edges) for the actual load,
        and a configuration with larger / link-absorbing meta documents
        (Unconnected HOPI with a bigger partition budget) should amortize
        the traversals into index lookups.
        """
        if self.query_count < min_queries:
            return TuningAdvice(
                False,
                f"only {self.query_count} queries observed "
                f"(need {min_queries}); keep collecting",
            )
        mean_links = self.mean_link_traversals
        if mean_links <= link_traversal_threshold:
            return TuningAdvice(
                False,
                f"mean {mean_links:.1f} link traversals/query is within the "
                f"threshold of {link_traversal_threshold}",
            )
        recommended = FlixConfig.unconnected_hopi(
            partition_size=max(current_config.partition_size * 4, 5000)
        )
        return TuningAdvice(
            True,
            f"mean {mean_links:.1f} link traversals/query exceeds "
            f"{link_traversal_threshold}; larger meta documents would absorb "
            "them into index lookups",
            recommended,
        )
