"""Self-tuning (section 7, future work — implemented here).

"If it turns out in the query evaluation engine that most queries have to
follow many links, then the choice of meta documents is no longer optimal
for the current query load.  In this case, the build phase should start
again, taking statistics on the query load into account."

:class:`QueryLoadMonitor` aggregates the :class:`~repro.core.pee.QueryStats`
of executed queries; :meth:`QueryLoadMonitor.advice` decides whether a
rebuild is warranted and recommends the next configuration.

The workload-driven retuning loop (APEX-style; ``docs/PLANNING.md``)
closes over the same window: :meth:`QueryLoadMonitor.profile` condenses
it into a :class:`WorkloadProfile` that ``Flix.build(workload=...)`` /
``Flix.rebuild(workload=...)`` feed into the Indexing Strategy Selector,
and :meth:`advice` additionally recommends *re-planning* — enabling the
cost-based probe planner (:mod:`repro.core.planner`) — when the observed
duplicate-work ratio says the fixed probe discipline is re-expanding
covered entries.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.core.config import FlixConfig
from repro.core.pee import QueryStats


@dataclass(frozen=True)
class TuningAdvice:
    """Outcome of a self-tuning evaluation.

    ``should_compact`` flags *online compaction* (``Flix.compact``) as a
    cheaper remedy than a rebuild: incremental growth has piled up enough
    singleton meta documents (``compaction_candidates``) that merging
    them in place would cut residual-link traffic without rebuild
    downtime.  ``should_replan`` flags a runtime remedy cheaper still:
    enabling the cost-based probe planner
    (``flix.config.with_planner()``, no rebuild at all) because the
    observed load re-expands provably covered entries.  All flags can be
    set at once; re-planning is the cheapest step, compaction next, a
    rebuild the thorough one.
    """

    should_rebuild: bool
    reason: str
    recommended_config: Optional[FlixConfig] = None
    should_compact: bool = False
    compaction_candidates: Tuple[int, ...] = ()
    should_replan: bool = False
    replan_reason: str = ""


def with_compaction_advice(
    advice: TuningAdvice,
    candidates: Sequence[int],
    threshold: int,
) -> TuningAdvice:
    """Layer compaction advice over a load-based :class:`TuningAdvice`.

    Compaction is recommended when at least ``threshold`` live
    incrementally-added meta documents exist (each ``add_document``
    creates one; they fragment the layout the paper's build phase chose).
    Load statistics are deliberately not required: the drift is
    structural and visible without traffic.
    """
    candidates = tuple(candidates)
    if threshold < 2:
        raise ValueError("compaction threshold must be at least 2")
    if len(candidates) < threshold:
        return advice
    reason = (
        f"{advice.reason}; {len(candidates)} incrementally-added meta "
        f"documents have accumulated (threshold {threshold}) — "
        "Flix.compact() would merge them without a rebuild"
    )
    return replace(
        advice,
        reason=reason,
        should_compact=True,
        compaction_candidates=candidates,
    )


@dataclass(frozen=True)
class WorkloadProfile:
    """A condensed view of the recorded query load, ready to feed back
    into the build phase (``Flix.build(workload=...)``).

    ``duplicate_ratio`` is the fraction of priority-queue pops that were
    dropped as already covered — the §5.1 duplicate-elimination work the
    probe planner's frontier can prune.  ``descendants_heavy`` is true
    when the load is dominated by long-range reachability (many queue
    pops and link traversals per query), the regime HOPI-style
    distance-aware indexes are built for.
    """

    query_count: int = 0
    duplicate_ratio: float = 0.0
    mean_queue_pops: float = 0.0
    mean_link_traversals: float = 0.0
    descendants_heavy: bool = False

    def bias(self, config: FlixConfig) -> FlixConfig:
        """``config`` adjusted toward this workload (APEX-style).

        A long-path-heavy load flips ``expect_long_paths`` (biasing the
        ISS toward HOPI over PPO for deep structures) and doubles the
        HOPI pair budget so the selector can afford the closure where the
        load says it pays.  A light or unobserved load returns ``config``
        unchanged — the bias never fires on cold instances.
        """
        if self.query_count == 0 or not self.descendants_heavy:
            return config
        changes = {}
        if not config.expect_long_paths:
            changes["expect_long_paths"] = True
        changes["hopi_pairs_per_node_budget"] = (
            config.hopi_pairs_per_node_budget * 2
        )
        return replace(config, **changes)


class QueryLoadMonitor:
    """Sliding-window statistics over executed queries."""

    def __init__(self, window: int = 1000) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self._window = window
        self._stats: List[QueryStats] = []
        # serving workers record concurrently (repro.serve); the window
        # trim is a read-modify-write that must not interleave
        self._lock = threading.Lock()

    def record(self, stats: QueryStats) -> None:
        # A truncated row with zero counters never touched the index: it
        # was refused before evaluation (queue-expired admission in
        # repro.serve builds such rows).  Recording it would dilute every
        # mean the planner and the tuning advice feed on, so it is
        # skipped; genuinely truncated evaluations (budget ran out
        # mid-search) carry nonzero counters and are recorded normally.
        if (
            not stats.is_complete
            and stats.queue_pops == 0
            and stats.meta_document_visits == 0
            and stats.results_returned == 0
        ):
            return
        with self._lock:
            self._stats.append(stats)
            if len(self._stats) > self._window:
                del self._stats[: len(self._stats) - self._window]

    @property
    def query_count(self) -> int:
        with self._lock:
            return len(self._stats)

    @property
    def mean_link_traversals(self) -> float:
        with self._lock:
            if not self._stats:
                return 0.0
            return sum(s.link_traversals for s in self._stats) / len(self._stats)

    @property
    def mean_meta_document_visits(self) -> float:
        with self._lock:
            if not self._stats:
                return 0.0
            return sum(s.meta_document_visits for s in self._stats) / len(
                self._stats
            )

    @property
    def mean_results(self) -> float:
        with self._lock:
            if not self._stats:
                return 0.0
            return sum(s.results_returned for s in self._stats) / len(self._stats)

    @property
    def mean_queue_pops(self) -> float:
        with self._lock:
            if not self._stats:
                return 0.0
            return sum(s.queue_pops for s in self._stats) / len(self._stats)

    @property
    def mean_covered_probes(self) -> float:
        with self._lock:
            if not self._stats:
                return 0.0
            return sum(s.covered_probes for s in self._stats) / len(self._stats)

    @property
    def duplicate_ratio(self) -> float:
        """Dropped pops / total pops over the window: the share of
        Figure-4 loop iterations §5.1 coverage discarded — exactly the
        work the probe planner's frontier prunes without a heap pass."""
        with self._lock:
            pops = sum(s.queue_pops for s in self._stats)
            dropped = sum(s.entries_dropped for s in self._stats)
        return dropped / max(1, pops)

    def profile(self) -> WorkloadProfile:
        """The window condensed into a :class:`WorkloadProfile` for
        ``Flix.build(workload=...)`` / ``Flix.rebuild(workload=...)``."""
        count = self.query_count
        pops = self.mean_queue_pops
        links = self.mean_link_traversals
        return WorkloadProfile(
            query_count=count,
            duplicate_ratio=self.duplicate_ratio,
            mean_queue_pops=pops,
            mean_link_traversals=links,
            descendants_heavy=(links > 4.0 or pops > 16.0),
        )

    def advice(
        self,
        current_config: FlixConfig,
        link_traversal_threshold: float = 8.0,
        min_queries: int = 20,
        duplicate_ratio_threshold: float = 0.25,
    ) -> TuningAdvice:
        """Should the build phase run again, and with what configuration?

        A rebuild is recommended when the average query follows more than
        ``link_traversal_threshold`` residual links: the meta documents are
        then too small (or cut along the wrong edges) for the actual load,
        and a configuration with larger / link-absorbing meta documents
        (Unconnected HOPI with a bigger partition budget) should amortize
        the traversals into index lookups.

        Independently, *re-planning* is recommended when the duplicate-
        work ratio exceeds ``duplicate_ratio_threshold`` on an instance
        without a configured probe planner: enabling the planner
        (``config.with_planner()`` + rebuilding the evaluator, or simply
        restarting with the new config) prunes that work at run time with
        no index change at all.
        """
        if self.query_count < min_queries:
            return TuningAdvice(
                False,
                f"only {self.query_count} queries observed "
                f"(need {min_queries}); keep collecting",
            )
        advice = None
        mean_links = self.mean_link_traversals
        if mean_links <= link_traversal_threshold:
            advice = TuningAdvice(
                False,
                f"mean {mean_links:.1f} link traversals/query is within the "
                f"threshold of {link_traversal_threshold}",
            )
        else:
            recommended = FlixConfig.unconnected_hopi(
                partition_size=max(current_config.partition_size * 4, 5000)
            )
            advice = TuningAdvice(
                True,
                f"mean {mean_links:.1f} link traversals/query exceeds "
                f"{link_traversal_threshold}; larger meta documents would "
                "absorb them into index lookups",
                recommended,
            )
        ratio = self.duplicate_ratio
        if (
            ratio > duplicate_ratio_threshold
            and getattr(current_config, "planner", None) is None
        ):
            replan_reason = (
                f"{ratio:.0%} of queue pops are dropped as already covered "
                f"(threshold {duplicate_ratio_threshold:.0%}); enabling the "
                "probe planner (config.with_planner()) would prune them"
            )
            recommended = (
                advice.recommended_config
                if advice.recommended_config is not None
                else current_config
            ).with_planner()
            advice = replace(
                advice,
                should_replan=True,
                replan_reason=replan_reason,
                reason=f"{advice.reason}; {replan_reason}",
                recommended_config=recommended,
            )
        return advice
