"""Meta documents: the units FliX indexes (section 3.1).

A meta document "contains some or all of the links between its documents";
links that are not represented in its index — because they cross meta
documents, or because including them would break the chosen index's
applicability (a link that would destroy tree shape under PPO) — are
*residual* and followed by the PEE at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.graph.digraph import Digraph
from repro.indexes.base import NodeId, PathIndex

Edge = Tuple[NodeId, NodeId]


@dataclass
class MetaDocumentSpec:
    """The MDB's output for one meta document, before indexing.

    ``nodes`` is a distinct subset of the collection's elements;
    ``internal_edges`` are the edges (tree edges and links) the meta
    document's index will represent.  Every collection edge that is not
    internal to some meta document becomes a residual link.
    """

    meta_id: int
    nodes: Set[NodeId]
    internal_edges: List[Edge]

    def build_graph(self) -> Digraph:
        graph = Digraph()
        for node in self.nodes:
            graph.add_node(node)
        for u, v in self.internal_edges:
            if u not in self.nodes or v not in self.nodes:
                raise ValueError(
                    f"internal edge {(u, v)} leaves meta document {self.meta_id}"
                )
            graph.add_edge(u, v)
        return graph


@dataclass
class MetaDocument:
    """An indexed meta document plus its residual-link bookkeeping.

    ``outgoing_links[u]`` lists the targets of residual links whose source
    ``u`` lies in this meta document (targets may be anywhere, including
    this same meta document).  ``link_sources`` is the set ``L_i`` of
    section 4.2; ``incoming_targets`` is the mirror needed for ancestor
    evaluation.
    """

    meta_id: int
    nodes: FrozenSet[NodeId]
    #: ``None`` when every build attempt (including the resilience
    #: fallback strategy) failed — the PEE then answers this meta document
    #: with an on-the-fly BFS fallback and flags queries ``degraded``
    index: Optional[PathIndex]
    strategy: str
    outgoing_links: Dict[NodeId, List[NodeId]] = field(default_factory=dict)
    incoming_links: Dict[NodeId, List[NodeId]] = field(default_factory=dict)
    _link_sources_cache: FrozenSet[NodeId] = field(default=None, repr=False)
    _link_targets_cache: FrozenSet[NodeId] = field(default=None, repr=False)

    def finalize_links(self) -> None:
        """Freeze the residual-link sets and hand L_i to the index.

        Called by the Index Builder once all residual links are wired (and
        again after incremental growth touches this meta document).  The
        frozen set keeps its identity across queries, which lets indexes
        with a prepared fast path (PPO) recognize it cheaply.
        """
        self._link_sources_cache = frozenset(self.outgoing_links)
        self._link_targets_cache = frozenset(self.incoming_links)
        if self.index is not None:
            self.index.prepare_link_candidates(self._link_sources_cache)

    def copy_links(self) -> "MetaDocument":
        """A clone with deep-copied residual-link maps, same index object.

        Copy-on-write support for the incremental maintenance verbs: a
        published :class:`~repro.core.layout.IndexLayout` is immutable, so
        a mutation that needs to rewire a meta document's residual links
        works on a clone and publishes it in the next layout, while
        in-flight queries keep reading the original's frozen link sets.
        The (expensive, content-immutable) index object is shared.
        """
        return MetaDocument(
            meta_id=self.meta_id,
            nodes=self.nodes,
            index=self.index,
            strategy=self.strategy,
            outgoing_links={
                source: list(targets)
                for source, targets in self.outgoing_links.items()
            },
            incoming_links={
                target: list(sources)
                for target, sources in self.incoming_links.items()
            },
        )

    @property
    def link_sources(self) -> FrozenSet[NodeId]:
        """L_i: elements of this meta document with outgoing residual links."""
        if self._link_sources_cache is not None:
            return self._link_sources_cache
        return frozenset(self.outgoing_links)

    @property
    def link_targets(self) -> FrozenSet[NodeId]:
        """Elements of this meta document with incoming residual links."""
        if self._link_targets_cache is not None:
            return self._link_targets_cache
        return frozenset(self.incoming_links)

    @property
    def residual_out_degree(self) -> int:
        return sum(len(targets) for targets in self.outgoing_links.values())

    def __contains__(self, node: NodeId) -> bool:
        return node in self.nodes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MetaDocument(id={self.meta_id}, nodes={len(self.nodes)}, "
            f"strategy={self.strategy!r}, residual_links={self.residual_out_degree})"
        )
