"""The FliX facade: build a collection index, query it, tune it.

Typical use::

    from repro import Flix, FlixConfig, QueryRequest, build_collection

    collection = build_collection(documents)
    flix = Flix.build(collection, FlixConfig.hybrid(partition_size=5000))
    response = flix.query(QueryRequest.descendants(start, tag="article",
                                                   limit=100))
    for result in response:
        ...

The unified entry points are :meth:`Flix.query` (materialized
:class:`~repro.core.api.QueryResponse`) and :meth:`Flix.query_stream`
(lazy iteration for the streaming kinds); the classic ``find_*`` /
``connection_*`` methods remain as thin compatibility shims over them.
For concurrent serving, :meth:`Flix.serve` wraps the instance in a
:class:`repro.serve.FlixService` worker pool.
"""

from __future__ import annotations

import itertools
import threading
import time
import warnings
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.collection.collection import NodeId, XmlCollection
from repro.core.api import QueryRequest, QueryResponse, STREAMING_KINDS
from repro.core.config import CacheConfig, FlixConfig
from repro.graph.digraph import Digraph
from repro.core.ib import BuildReport, IndexBuilder
from repro.core.mdb import MetaDocumentBuilder
from repro.core.meta_document import MetaDocument
from repro.core.pee import (
    PathExpressionEvaluator,
    QueryBudget,
    QueryResult,
    QueryStats,
)
from repro.core.results import StreamedList
from repro.core.selftune import QueryLoadMonitor, TuningAdvice
from repro.obs import MetricsRegistry, Observability, Trace, render
from repro.storage.memory import MemoryBackend
from repro.storage.table import StorageBackend


class Flix:
    """A built FliX index over one XML collection."""

    def __init__(
        self,
        collection: XmlCollection,
        config: FlixConfig,
        meta_documents: List[MetaDocument],
        meta_of: Dict[NodeId, int],
        report: BuildReport,
        obs: Optional[Observability] = None,
    ) -> None:
        self.collection = collection
        self.config = config
        self.meta_documents = meta_documents
        self.meta_of = meta_of
        self.report = report
        #: the observability bundle (metrics registry + tracer); honours
        #: ``config.observability`` unless an explicit bundle is passed
        self.obs = (
            obs
            if obs is not None
            else Observability(getattr(config, "observability", True))
        )
        self.pee = self._make_pee()
        self.monitor = QueryLoadMonitor()
        # set by Flix.build for incremental document addition
        self._builder: Optional[IndexBuilder] = None
        self._backend_factory: Callable[[], StorageBackend] = MemoryBackend
        #: the shared result/connection cache (sharded LRU, generation-
        #: invalidated); configured through ``config.cache``, or later via
        #: the deprecated ``enable_cache`` shim
        cache_config = getattr(config, "cache", None)
        self._result_cache = (
            cache_config.build() if cache_config is not None else None
        )
        # counters retired from a cache dropped by disable_cache(), so the
        # cache_hits / cache_misses totals survive a disable
        self._retired_hits = 0
        self._retired_misses = 0
        if self.obs.enabled:
            self._attach_storage_observers()
            self.obs.registry.gauge(
                "flix_meta_documents",
                "Meta documents in the current index layout.",
            ).set(len(meta_documents))

    def _make_pee(self) -> PathExpressionEvaluator:
        """A fresh evaluator over the current meta-document layout, with
        the query budget and BFS-fallback context the configuration's
        resilience settings imply (both absent without a resilience
        config, which keeps the classic zero-overhead behaviour)."""
        from repro.core.fallback import FallbackContext
        from repro.core.pee import QueryBudget

        resilience = getattr(self.config, "resilience", None)
        budget = QueryBudget.from_resilience(resilience)
        fallback = None
        if resilience is not None and resilience.allow_query_fallback:
            fallback = FallbackContext(
                self.collection.graph, self.collection.tag
            )
        return PathExpressionEvaluator(
            self.meta_documents,
            self.meta_of,
            self.obs,
            budget=budget,
            fallback=fallback,
        )

    @property
    def degraded_meta_ids(self) -> List[int]:
        """Meta documents currently answered by the PEE's BFS fallback."""
        return self.pee.degraded_meta_ids

    def _attach_storage_observers(self) -> None:
        """Count query-time storage traffic on every meta-document backend.

        Runs after the build merge, so it also covers indexes built in
        process-pool workers (whose build-time traffic is unobservable —
        their registries die with the worker process).  Resilient wrappers
        additionally get the metrics bundle (re)bound here: products of a
        pickled factory arrive from workers with observability unbound.
        """
        backends = [
            getattr(meta.index, "backend", None)
            for meta in self.meta_documents
        ]
        if self._builder is not None:
            backends.append(self._builder.framework_backend)
        for backend in backends:
            if backend is None:
                continue
            backend.attach_observer(self.obs.storage_instruments(backend))
            bind = getattr(backend, "set_observability", None)
            if bind is not None:
                bind(self.obs)

    # ------------------------------------------------------------------
    # build phase
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        collection: XmlCollection,
        config: Optional[FlixConfig] = None,
        backend_factory: Callable[[], StorageBackend] = MemoryBackend,
        jobs: Optional[int] = None,
    ) -> "Flix":
        """Run the full build phase: MDB -> ISS -> IB.

        ``config`` defaults to the automatic recommendation derived from the
        collection's statistics (the paper's future-work goal, section 4.1).
        ``jobs`` overrides ``config.jobs`` for this build only: with more
        than one worker the per-meta-document builds run on a worker pool,
        with results merged in spec order — the built index is identical to
        a sequential build at any ``jobs`` value.

        Fault tolerance: when ``config.resilience`` is set, every backend
        the factory produces is wrapped in a retrying, circuit-breaking
        :class:`repro.storage.ResilientBackend`.  When the ``FLIX_FAULT_
        PLAN`` / ``FAULT_PLAN`` environment variable names a fault plan
        (CI's chaos job), a fault-injecting layer is inserted *under* the
        resilient wrapper — and resilience is force-enabled so the injected
        faults are actually absorbed.
        """
        if config is None:
            config = FlixConfig.recommend_for(collection)

        from repro.faults import plan_from_env

        plan = plan_from_env()
        if plan is not None and not plan.is_noop:
            from repro.faults import FaultyFactory

            backend_factory = FaultyFactory(backend_factory, plan)
            if getattr(config, "resilience", None) is None:
                config = config.with_resilience()
        resilience = getattr(config, "resilience", None)
        if resilience is not None:
            from repro.storage.resilient import ResilientFactory

            backend_factory = ResilientFactory(
                backend_factory,
                retry_policy=resilience.retry_policy(),
                breaker_policy=resilience.breaker_policy(),
            )

        obs = Observability(getattr(config, "observability", True))
        specs = MetaDocumentBuilder(collection, config).build_specs()
        builder = IndexBuilder(collection, config, backend_factory, obs=obs)
        meta_documents, meta_of, report = builder.build(specs, jobs=jobs)
        flix = cls(collection, config, meta_documents, meta_of, report, obs=obs)
        flix._builder = builder
        flix._backend_factory = backend_factory
        if flix.obs.enabled:
            # rebind now that the builder (and its framework backend) is known
            flix._attach_storage_observers()
        return flix

    @classmethod
    def build_monolithic(
        cls,
        collection: XmlCollection,
        strategy: str,
        backend_factory: Callable[[], StorageBackend] = MemoryBackend,
    ) -> "Flix":
        """Index the whole collection with one strategy, no meta documents.

        This is how the paper's section 6 comparators are built: "an
        extended version of HOPI that supports distance information and a
        database-backed implementation of APEX, both applied to the
        complete data collection."  The result exposes the same query API
        as a real FliX build, so benchmarks compare apples to apples.
        """
        import time as _time

        from repro.core.ib import MetaDocumentReport
        from repro.core.meta_document import MetaDocumentSpec
        from repro.indexes.registry import build_index

        started = _time.perf_counter()
        nodes = set(collection.node_ids())
        spec = MetaDocumentSpec(0, nodes, list(collection.graph.edges()))
        graph = spec.build_graph()
        tags = {node: collection.tag(node) for node in nodes}
        index = build_index(strategy, graph, tags, backend_factory())
        meta = MetaDocument(
            meta_id=0, nodes=frozenset(nodes), index=index, strategy=strategy
        )
        elapsed = _time.perf_counter() - started
        report = BuildReport(config_name=f"monolithic_{strategy}")
        report.meta_documents.append(
            MetaDocumentReport(
                meta_id=0,
                node_count=len(nodes),
                internal_edge_count=collection.graph.edge_count,
                strategy=strategy,
                rationale="monolithic comparator (whole collection, one index)",
                index_bytes=index.size_bytes(),
                build_seconds=elapsed,
            )
        )
        report.total_seconds = elapsed
        config = FlixConfig(
            name=f"monolithic_{strategy}",
            mdb_strategy="naive",
            allowed_strategies=(strategy,),
        )
        meta_of = {node: 0 for node in nodes}
        return cls(collection, config, [meta], meta_of, report)

    # ------------------------------------------------------------------
    # query phase — the unified API
    # ------------------------------------------------------------------
    def query(
        self,
        request: QueryRequest,
        budget: Optional[QueryBudget] = None,
    ) -> QueryResponse:
        """Evaluate one :class:`~repro.core.api.QueryRequest`, materialized.

        This is the primary query entry point: every kind the framework
        understands goes through here (the legacy ``find_*`` /
        ``connection_*`` methods are shims over it or over
        :meth:`query_stream`).  The shared result cache — when configured —
        is consulted first and fed afterwards; the response carries the
        query's private stats and its completeness flag.

        ``budget`` overrides ``request.budget`` for this call (the serving
        layer uses it to charge queue wait against the deadline).  Any
        budget — explicit or the evaluator's configured resilience default
        — makes the answer uncacheable unless it came back ``complete``: a
        truncated or degraded answer must never be replayed to a later
        caller.
        """
        started = time.perf_counter()
        effective_budget = budget if budget is not None else request.budget
        # Pin the cache object and its generation *before* evaluating: a
        # concurrent configure_cache swap or add_document invalidation
        # must not let this call store a pre-mutation answer as fresh.
        cache = self._result_cache
        key = request.cache_key() if cache is not None else None
        generation = cache.generation if cache is not None else 0
        if key is not None:
            # A complete cached answer is always servable, even to a
            # budget-bearing call — the budget bounds *work*, and a replay
            # does none.
            boxed = self._cache_get(cache, key, request.kind)
            if boxed is not None:
                return self._replay(request, boxed[0], started)
        payload, stats = self._evaluate(request, effective_budget)
        self.monitor.record(stats)
        if (
            key is not None
            and effective_budget is None
            and stats.is_complete
            and (request.is_scalar or request.limit is None)
        ):
            self._cache_put(cache, key, (payload, stats), generation)
        if request.is_scalar:
            return QueryResponse(
                request, [], payload, stats, False,
                time.perf_counter() - started,
            )
        results = list(payload)
        return QueryResponse(
            request, results, None, stats, False,
            time.perf_counter() - started,
        )

    def query_stream(self, request: QueryRequest) -> Iterator[Any]:
        """Lazily evaluate a streaming-kind request (descendants,
        ancestors, type queries, connections), yielding results as the
        evaluator finds them — the classic FliX delivery of section 3.1.

        The shared cache participates exactly as in :meth:`query`: a hit
        replays the stored (full) result list, a fully-consumed unlimited
        stream is stored on completion — but only when it finished
        ``complete`` (a resilience default budget can truncate or degrade
        it); an abandoned stream stores nothing.  Scalar and aggregate
        kinds have nothing to stream — use :meth:`query` for those.
        """
        if request.kind not in STREAMING_KINDS:
            raise ValueError(
                f"kind {request.kind!r} has no streaming form; use query()"
            )
        cache = self._result_cache
        key = request.cache_key() if cache is not None else None
        generation = cache.generation if cache is not None else 0
        if key is not None:
            boxed = self._cache_get(cache, key, request.kind)
            if boxed is not None:
                results, _ = boxed[0]
                if request.limit is not None:
                    results = results[: request.limit]
                yield from results
                return
        stream, finish = self._raw_stream(request)
        iterator: Iterator[Any] = iter(stream)
        if request.limit is not None:
            iterator = itertools.islice(iterator, request.limit)
        collected: Optional[List[Any]] = (
            [] if (key is not None and request.limit is None) else None
        )
        for item in iterator:
            if collected is not None:
                collected.append(item)
            yield item
        stats = finish()
        self.monitor.record(stats)
        if collected is not None and stats.is_complete:
            self._cache_put(cache, key, (collected, stats), generation)

    # ------------------------------------------------------------------
    # evaluation engine behind query()/query_stream()
    # ------------------------------------------------------------------
    def _raw_stream(
        self, request: QueryRequest, budget: Optional[QueryBudget] = None
    ) -> Tuple[Iterator[Any], Callable[[], QueryStats]]:
        """The uncached stream for a streaming-kind request, plus a
        ``finish()`` callback returning the query's final stats snapshot
        (call it only after consumption stops)."""
        budget = budget if budget is not None else request.budget
        if request.kind == "descendants" and request.source_tag is not None:
            seeds = self.collection.nodes_with_tag(request.source_tag)
            stream = self.pee.evaluate_type_query(
                seeds, request.tag, request.max_distance, budget=budget
            )
            return stream, lambda: stream.stats.snapshot()
        if request.kind == "descendants":
            stream = self.pee.find_descendants(
                request.source, request.tag, request.max_distance,
                request.include_self, request.exact_order, budget=budget,
            )
            return stream, lambda: stream.stats.snapshot()
        if request.kind == "ancestors":
            stream = self.pee.find_ancestors(
                request.source, request.tag, request.max_distance,
                request.include_self, request.exact_order, budget=budget,
            )
            return stream, lambda: stream.stats.snapshot()
        if request.kind == "connections":
            from repro.core.connections import ConnectionEvaluator

            stats = QueryStats()
            inner = ConnectionEvaluator(self.collection).find_connected(
                request.source, tag=request.tag, model=request.model,
                max_cost=request.max_cost,
            )

            def counted() -> Iterator[Tuple[NodeId, float]]:
                for pair in inner:
                    stats.results_returned += 1
                    yield pair

            return counted(), lambda: stats.snapshot()
        raise ValueError(f"kind {request.kind!r} is not a streaming kind")

    def _evaluate(
        self, request: QueryRequest, budget: Optional[QueryBudget]
    ) -> Tuple[Any, QueryStats]:
        """Evaluate without cache involvement: ``(payload, stats)`` where
        the payload is the result list (list kinds) or the scalar value."""
        kind = request.kind
        if kind in STREAMING_KINDS:
            stream, finish = self._raw_stream(request, budget)
            iterator: Iterator[Any] = iter(stream)
            if request.limit is not None:
                iterator = itertools.islice(iterator, request.limit)
            results = list(iterator)
            close = getattr(stream, "close", None)
            if close is not None:
                close()  # finalize an early-stopped (limited) stream
            return results, finish()
        if kind == "children":
            children = []
            for successor in sorted(
                self.collection.graph.successors(request.source)
            ):
                if request.tag is None or (
                    self.collection.tag(successor) == request.tag
                ):
                    children.append(
                        QueryResult(successor, 1, self.meta_of[successor])
                    )
            return children, QueryStats(results_returned=len(children))
        if kind == "path":
            return self._evaluate_path(request, budget)
        if kind == "cost":
            from repro.core.connections import ConnectionEvaluator

            value = ConnectionEvaluator(self.collection).connection_cost(
                request.source, request.target, model=request.model,
                max_cost=request.max_cost,
            )
            return value, QueryStats(
                results_returned=0 if value is None else 1
            )
        if kind == "test":
            stats = QueryStats()
            if request.bidirectional:
                value = self.pee.connection_test_bidirectional(
                    request.source, request.target, request.max_distance,
                    stats=stats, budget=budget,
                )
            else:
                value = self.pee.connection_test(
                    request.source, request.target, request.max_distance,
                    stats=stats, budget=budget,
                )
            return value, stats.snapshot()
        raise ValueError(f"unknown query kind {kind!r}")  # pragma: no cover

    def _evaluate_path(
        self, request: QueryRequest, budget: Optional[QueryBudget]
    ) -> Tuple[List[Tuple[NodeId, int]], QueryStats]:
        """Multi-step ``start//t1//…//tn``: one descendant query per
        frontier element and step, frontiers deduplicated by best
        distance (the unscored counterpart of the relaxed engine)."""
        aggregate = QueryStats()
        frontier: Dict[NodeId, int] = {request.source: 0}
        for tag in request.path:
            next_frontier: Dict[NodeId, int] = {}
            for node, distance in sorted(
                frontier.items(), key=lambda kv: kv[1]
            ):
                stream = self.pee.find_descendants(
                    node, tag, request.max_distance, budget=budget
                )
                for result in stream:
                    total = distance + result.distance
                    current = next_frontier.get(result.node)
                    if current is None or total < current:
                        next_frontier[result.node] = total
                aggregate.merge(stream.stats)
            if not next_frontier:
                return [], aggregate
            frontier = next_frontier
        pairs = sorted(frontier.items(), key=lambda kv: (kv[1], kv[0]))
        return pairs, aggregate

    def _replay(
        self, request: QueryRequest, entry: Tuple[Any, QueryStats],
        started: float,
    ) -> QueryResponse:
        """Build the response for a cache hit (stats are the original
        evaluation's — the replay itself did no index work)."""
        payload, stats = entry
        if request.is_scalar:
            return QueryResponse(
                request, [], payload, stats, True,
                time.perf_counter() - started,
            )
        results = list(payload)
        if request.limit is not None:
            results = results[: request.limit]
        return QueryResponse(
            request, results, None, stats, True,
            time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    # compatibility shims (the pre-unified-API query surface)
    # ------------------------------------------------------------------
    def find_descendants(
        self,
        start: NodeId,
        tag: Optional[str] = None,
        max_distance: Optional[int] = None,
        limit: Optional[int] = None,
        include_self: bool = False,
        exact_order: bool = False,
    ) -> Iterator[QueryResult]:
        """``a//b`` (or ``a//*`` with ``tag=None``), streamed.

        Shim over :meth:`query_stream`.  ``limit`` implements the top-k
        early stop of section 3.1; ``exact_order`` buffers results so the
        stream is sorted by the reported distance (section 7's first
        future-work item).
        """
        yield from self.query_stream(
            QueryRequest.descendants(
                start, tag, max_distance, limit, include_self, exact_order
            )
        )

    def find_ancestors(
        self,
        start: NodeId,
        tag: Optional[str] = None,
        max_distance: Optional[int] = None,
        limit: Optional[int] = None,
        include_self: bool = False,
        exact_order: bool = False,
    ) -> Iterator[QueryResult]:
        """Reverse axis: ancestors of ``start`` (shim over
        :meth:`query_stream`)."""
        yield from self.query_stream(
            QueryRequest.ancestors(
                start, tag, max_distance, limit, include_self, exact_order
            )
        )

    def find_children(
        self,
        node: NodeId,
        tag: Optional[str] = None,
    ) -> List[QueryResult]:
        """The child axis (``a/b``), section 5's "other cases".

        In the linked data model, children are the direct successors in the
        union graph — sub-elements and immediate link targets alike, which
        is exactly how the paper treats referenced elements ("similarly to
        normal child elements").  Shim over :meth:`query`.
        """
        return self.query(QueryRequest.children(node, tag)).results

    def evaluate_type_query(
        self,
        source_tag: str,
        target_tag: Optional[str],
        max_distance: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> Iterator[QueryResult]:
        """``A//B``: descendants of *any* element with tag ``source_tag``
        (shim over :meth:`query_stream`)."""
        yield from self.query_stream(
            QueryRequest.type_query(source_tag, target_tag, max_distance, limit)
        )

    def find_path(
        self,
        start: NodeId,
        tags: Sequence[str],
        max_distance_per_step: Optional[int] = None,
    ) -> List[Tuple[NodeId, int]]:
        """Evaluate a multi-step path ``start//t1//t2//...//tn``.

        Returns the distinct elements matching the final step with the
        smallest accumulated distance found, ascending.  Shim over
        :meth:`query` with the ``path`` kind.
        """
        return self.query(
            QueryRequest.find_path(start, tags, max_distance_per_step)
        ).results

    def find_connections(
        self,
        start: NodeId,
        tag: Optional[str] = None,
        model=None,
        max_cost: Optional[float] = None,
    ):
        """Generalized connection search (sections 1.1 / 7).

        ``model`` is a :class:`repro.core.connections.ConnectionModel`
        assigning costs to tree/link traversals and their reversals;
        results stream in exactly ascending cost.  Runs on the element
        graph directly (typed edge costs defeat uniform-hop indexes).
        Shim over :meth:`query_stream`.
        """
        return self.query_stream(
            QueryRequest.connections(start, tag, model, max_cost)
        )

    def connection_cost(
        self,
        source: NodeId,
        target: NodeId,
        model=None,
        max_cost: Optional[float] = None,
    ) -> Optional[float]:
        """Cheapest generalized-connection cost between two elements
        (shim over :meth:`query` with the ``cost`` kind — repeated hot
        pairs are answered from the shared cache)."""
        return self.query(
            QueryRequest.cost(source, target, model, max_cost)
        ).value

    def connection_test(
        self,
        source: NodeId,
        target: NodeId,
        max_distance: Optional[int] = None,
        bidirectional: bool = False,
    ) -> Optional[int]:
        """Is ``target`` reachable from ``source``?  Approximate distance or
        ``None`` (shim over :meth:`query` with the ``test`` kind — repeated
        hot pairs are answered from the shared cache)."""
        return self.query(
            QueryRequest.test(source, target, max_distance, bidirectional)
        ).value

    # ------------------------------------------------------------------
    # result caching (section 7: "caching results of frequent
    # (sub-)queries") — a sharded LRU shared by every worker thread
    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        """Lifetime cache hits (including caches since disabled)."""
        if self._result_cache is None:
            return self._retired_hits
        return self._retired_hits + self._result_cache.stats().hits

    @property
    def cache_misses(self) -> int:
        """Lifetime cache misses (including caches since disabled)."""
        if self._result_cache is None:
            return self._retired_misses
        return self._retired_misses + self._result_cache.stats().misses

    @property
    def cache(self):
        """The live :class:`repro.serve.cache.ShardedLRUCache` (or None)."""
        return self._result_cache

    def cache_stats(self):
        """Aggregate :class:`repro.serve.cache.CacheStats` (or ``None``
        when no cache is configured)."""
        if self._result_cache is None:
            return None
        return self._result_cache.stats()

    def configure_cache(self, cache_config: Optional[CacheConfig]) -> None:
        """(Re)configure the shared cache; ``None`` removes it.

        Counters of a replaced cache are retired into the lifetime
        ``cache_hits``/``cache_misses`` totals.
        """
        if self._result_cache is not None:
            stats = self._result_cache.stats()
            self._retired_hits += stats.hits
            self._retired_misses += stats.misses
        self._result_cache = (
            cache_config.build() if cache_config is not None else None
        )

    def invalidate_caches(self) -> None:
        """Generation-bump the shared cache: every cached entry becomes
        unservable (O(1); entries are dropped lazily).  Called internally
        by every index-layout mutation (``add_document``)."""
        if self._result_cache is not None:
            self._result_cache.invalidate_all()

    def enable_cache(self, maxsize: int = 128) -> None:
        """Deprecated: configure caching via ``FlixConfig.cache``
        (:class:`CacheConfig`) or :meth:`configure_cache` instead.

        Installs a single-shard cache, preserving the historical exact
        global LRU eviction order; hit/miss counters restart at zero as
        they always did.
        """
        warnings.warn(
            "Flix.enable_cache is deprecated; set FlixConfig.cache = "
            "CacheConfig(maxsize=..., shards=...) or call "
            "Flix.configure_cache(CacheConfig(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self._result_cache = CacheConfig(maxsize=maxsize, shards=1).build()
        self._retired_hits = 0
        self._retired_misses = 0

    def disable_cache(self) -> None:
        """Deprecated: use ``configure_cache(None)`` (or build with a
        cache-less config)."""
        warnings.warn(
            "Flix.disable_cache is deprecated; call "
            "Flix.configure_cache(None) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.configure_cache(None)

    def _cache_get(self, cache, key: tuple, kind: str):
        boxed = cache.get(key)
        if self.obs.enabled:
            if boxed is not None:
                self.obs.registry.counter(
                    "flix_cache_hits_total",
                    "Query-cache hits, by query kind.",
                ).inc(kind=kind)
            else:
                self.obs.registry.counter(
                    "flix_cache_misses_total",
                    "Query-cache misses, by query kind.",
                ).inc(kind=kind)
        return boxed

    def _cache_put(self, cache, key: tuple, entry, generation: int) -> None:
        """Store an entry in the cache pinned at lookup time, stamped with
        the generation captured *before* evaluation — the store is dropped
        (or stamped stale) if the index mutated underneath us."""
        if cache is not None and key is not None:
            cache.put(key, entry, generation=generation)

    # ------------------------------------------------------------------
    # concurrent serving
    # ------------------------------------------------------------------
    def serve(self, **kwargs):
        """Wrap this instance in a :class:`repro.serve.FlixService`
        worker pool (``workers``, ``max_pending``, ``default_budget``,
        … — see ``docs/SERVING.md``).  The service shares this
        instance's cache, metrics registry, and tracer."""
        from repro.serve import FlixService

        return FlixService(self, **kwargs)

    # ------------------------------------------------------------------
    # streamed (multithreaded) delivery, section 3.1
    # ------------------------------------------------------------------
    def find_descendants_streamed(
        self,
        start: NodeId,
        tag: Optional[str] = None,
        max_distance: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> StreamedList:
        """Run the query in a background thread; results appear on the
        returned :class:`StreamedList` as soon as they are found."""
        observe = None
        if self.obs.enabled:
            streamed = self.obs.registry.counter(
                "flix_streamed_results_total",
                "Results delivered through background StreamedLists.",
            )
            observe = streamed.inc
        results: StreamedList[QueryResult] = StreamedList(observe=observe)
        evaluator = self._make_pee()

        def produce() -> None:
            try:
                delivered = 0
                for item in evaluator.find_descendants(start, tag, max_distance):
                    if results.cancelled:
                        break
                    results.append(item)
                    delivered += 1
                    if limit is not None and delivered >= limit:
                        break
            finally:
                results.close()

        thread = threading.Thread(target=produce, name="flix-pee", daemon=True)
        thread.start()
        return results

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def metrics(self) -> MetricsRegistry:
        """The live metrics registry (empty forever when observability is
        off); render it with :meth:`export_metrics` or ``repro.obs.render``.
        """
        return self.obs.registry

    def export_metrics(self, format: str = "json") -> str:
        """Serialize the registry: ``"json"`` or ``"prom"`` (Prometheus
        text exposition format).  An empty/disabled registry renders to an
        empty document in either format."""
        return render(self.obs.registry, format)

    def trace_last_query(self) -> Optional[Trace]:
        """The span tree of the most recently completed query, or ``None``
        (no query yet, or observability off).  ``trace.render()`` gives an
        indented ASCII view; see ``docs/OBSERVABILITY.md`` for reading it.
        """
        return self.obs.tracer.last_trace("pee.query")

    # ------------------------------------------------------------------
    # introspection & tuning
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Total storage of all meta-document indexes + residual links."""
        return self.report.total_index_bytes

    def index_fingerprint(self) -> str:
        """Content hash over every meta-document index and the residual
        links — byte-for-byte identical for builds of the same collection
        and configuration regardless of ``jobs`` (the parallel builder's
        determinism guarantee)."""
        import hashlib

        digest = hashlib.sha256()
        for meta in self.meta_documents:
            digest.update(str(meta.meta_id).encode("utf-8"))
            digest.update(meta.strategy.encode("utf-8"))
            if meta.index is None:  # build failed past every fallback
                digest.update(b"<unindexed>")
            else:
                digest.update(meta.index.backend.fingerprint().encode("utf-8"))
        if self._builder is not None:
            digest.update(
                self._builder.framework_backend.fingerprint().encode("utf-8")
            )
        return digest.hexdigest()

    def meta_document_of(self, node: NodeId) -> MetaDocument:
        return self.meta_documents[self.meta_of[node]]

    def tuning_advice(self, **kwargs) -> TuningAdvice:
        """Self-tuning check over the recorded query load (section 7)."""
        return self.monitor.advice(self.config, **kwargs)

    def rebuild(
        self,
        config: Optional[FlixConfig] = None,
        backend_factory: Callable[[], StorageBackend] = MemoryBackend,
        jobs: Optional[int] = None,
    ) -> "Flix":
        """Run the build phase again (e.g. following tuning advice).

        The returned instance starts with a cold result cache: cached
        results describe the old meta-document layout and must not survive
        a rebuild.
        """
        return Flix.build(
            self.collection, config or self.config, backend_factory, jobs=jobs
        )

    # ------------------------------------------------------------------
    # incremental growth
    # ------------------------------------------------------------------
    def add_document(self, document) -> "MetaDocument":
        """Add one new document without rebuilding the whole index.

        The new document becomes its own meta document (indexed with the
        strategy the ISS picks for it); its links — and any previously
        dangling links that now resolve to it — become residual links
        followed at run time.  After many additions the meta-document
        layout drifts from optimal; the self-tuning monitor (section 7)
        will eventually recommend a full rebuild.
        """
        if self._builder is None:
            raise RuntimeError(
                "this Flix instance was not created by Flix.build; "
                "monolithic comparators do not support incremental growth"
            )
        from repro.collection.builder import register_document
        from repro.core.ib import MetaDocumentReport
        from repro.core.iss import IndexingStrategySelector
        from repro.indexes.registry import build_index

        import time as _time

        started = _time.perf_counter()
        new_link_edges = register_document(self.collection, document)
        nodes = set(self.collection.document_nodes(document.name))

        # Internal edges: the document's tree edges always; its intra-
        # document link edges only when the configuration allows a graph
        # index (a PPO-only configuration must leave them residual).
        allow_graph = any(s != "ppo" for s in self.config.allowed_strategies)
        internal = []
        for u in sorted(nodes):
            for v in sorted(self.collection.graph.successors(u)):
                if v not in nodes:
                    continue
                if self.collection.is_link_edge(u, v) and not allow_graph:
                    continue
                internal.append((u, v))
        internal_set = set(internal)

        graph = Digraph()
        for node in nodes:
            graph.add_node(node)
        for u, v in internal:
            graph.add_edge(u, v)
        choice = IndexingStrategySelector(self.config).choose(graph)
        tags = {node: self.collection.tag(node) for node in nodes}
        backend = self._backend_factory()
        if self.obs.enabled:
            backend.attach_observer(self.obs.storage_instruments(backend))
        index = build_index(choice.strategy, graph, tags, backend)

        meta = MetaDocument(
            meta_id=len(self.meta_documents),
            nodes=frozenset(nodes),
            index=index,
            strategy=choice.strategy,
        )
        self.meta_documents.append(meta)
        for node in nodes:
            self.meta_of[node] = meta.meta_id

        # Residual links: every new link edge not absorbed into the index.
        links_table = self._builder.framework_backend.table("flix_residual_links")
        residual = 0
        touched = {meta.meta_id}
        for u, v in new_link_edges:
            if (u, v) in internal_set:
                continue
            self.meta_documents[self.meta_of[u]].outgoing_links.setdefault(
                u, []
            ).append(v)
            self.meta_documents[self.meta_of[v]].incoming_links.setdefault(
                v, []
            ).append(u)
            links_table.insert((u, v, self.meta_of[u], self.meta_of[v]))
            touched.add(self.meta_of[u])
            touched.add(self.meta_of[v])
            residual += 1
        for meta_id in touched:
            self.meta_documents[meta_id].finalize_links()

        self.report.meta_documents.append(
            MetaDocumentReport(
                meta_id=meta.meta_id,
                node_count=len(nodes),
                internal_edge_count=len(internal),
                strategy=choice.strategy,
                rationale=choice.rationale + " (added incrementally)",
                index_bytes=index.size_bytes(),
                build_seconds=_time.perf_counter() - started,
            )
        )
        self.report.residual_link_count += residual
        self.report.residual_link_bytes = links_table.size_bytes()

        # Refresh the evaluator's view and drop stale cached results.
        self.pee = self._make_pee()
        if self.obs.enabled:
            self.obs.registry.gauge(
                "flix_meta_documents",
                "Meta documents in the current index layout.",
            ).set(len(self.meta_documents))
            self.obs.registry.counter(
                "flix_index_builds_total",
                "Per-meta-document index builds, by chosen strategy.",
            ).inc(strategy=choice.strategy)
        self.invalidate_caches()
        return meta

    def save(self, directory) -> "Path":
        """Persist the built index to ``directory`` (restart without
        rebuild); see :mod:`repro.core.persistence` for the layout."""
        from repro.core.persistence import save_flix

        return save_flix(self, directory)

    @classmethod
    def load(
        cls, collection: XmlCollection, directory, verify: bool = True
    ) -> "Flix":
        """Reconstruct a saved index against the unchanged collection.

        ``verify`` checks the manifest's per-file checksums first and
        raises :class:`repro.core.persistence.IntegrityError` on damage
        (see ``repro repair``)."""
        from repro.core.persistence import load_flix

        return load_flix(collection, directory, verify=verify)

    @classmethod
    def repair(cls, collection: XmlCollection, directory) -> List[str]:
        """Rebuild the damaged files of a saved index in place; returns
        the repaired file names (see :func:`repro.core.persistence
        .repair_flix`)."""
        from repro.core.persistence import repair_flix

        return repair_flix(collection, directory)

    def self_check(self, samples: int = 20, seed: int = 0) -> Dict[str, int]:
        """Verify the index against direct graph traversal on a sample.

        For ``samples`` randomly chosen elements, the streamed descendant
        set must equal a BFS over the element graph, every reported
        distance must be an upper bound of the BFS distance, and the stream
        must be duplicate-free.  Returns counters on success; raises
        ``AssertionError`` naming the first discrepancy otherwise.  Useful
        after incremental growth or custom strategy registration.
        """
        import random

        from repro.graph.traversal import bfs_distances

        node_ids = list(self.collection.node_ids())
        if not node_ids:
            return {"samples": 0, "results_checked": 0}
        rng = random.Random(seed)
        checked = 0
        results_checked = 0
        for _ in range(samples):
            start = rng.choice(node_ids)
            truth = bfs_distances(self.collection.graph, start)
            results = list(self.pee.find_descendants(start))
            got = {r.node for r in results}
            expected = set(truth) - {start}
            if got != expected:
                missing = sorted(expected - got)[:3]
                spurious = sorted(got - expected)[:3]
                raise AssertionError(
                    f"self_check failed at node {start}: "
                    f"missing={missing} spurious={spurious}"
                )
            if len(results) != len(got):
                raise AssertionError(
                    f"self_check failed at node {start}: duplicate results"
                )
            for result in results:
                if result.distance < truth[result.node]:
                    raise AssertionError(
                        f"self_check failed at node {start}: distance "
                        f"{result.distance} undershoots true "
                        f"{truth[result.node]} for {result.node}"
                    )
            checked += 1
            results_checked += len(results)
        return {"samples": checked, "results_checked": results_checked}

    def describe(self) -> str:
        """Multi-line human-readable build summary."""
        lines = [self.report.summary()]
        for meta in self.report.meta_documents[:20]:
            lines.append(
                f"  meta {meta.meta_id}: {meta.node_count} nodes, "
                f"{meta.strategy} ({meta.rationale}), {meta.index_bytes} bytes"
            )
        if len(self.report.meta_documents) > 20:
            lines.append(
                f"  ... and {len(self.report.meta_documents) - 20} more meta documents"
            )
        return "\n".join(lines)
