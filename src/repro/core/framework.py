"""The FliX facade: build a collection index, query it, tune it.

Typical use::

    from repro import Flix, FlixConfig, QueryRequest, build_collection

    collection = build_collection(documents)
    flix = Flix.build(collection, FlixConfig.hybrid(partition_size=5000))
    response = flix.query(QueryRequest.descendants(start, tag="article",
                                                   limit=100))
    for result in response:
        ...

The unified entry points are :meth:`Flix.query` (materialized
:class:`~repro.core.api.QueryResponse`) and :meth:`Flix.query_stream`
(lazy iteration for the streaming kinds); the classic ``find_*`` /
``connection_*`` methods remain as thin compatibility shims over them.
For concurrent serving, :meth:`Flix.serve` wraps the instance in a
:class:`repro.serve.FlixService` worker pool.
"""

from __future__ import annotations

import itertools
import threading
import time
import warnings
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.collection.collection import NodeId, XmlCollection
from repro.core.api import QueryRequest, QueryResponse, STREAMING_KINDS
from repro.core.config import CacheConfig, FlixConfig
from repro.graph.digraph import Digraph
from repro.core.ib import BuildReport, IndexBuilder
from repro.core.layout import IndexLayout
from repro.core.mdb import MetaDocumentBuilder
from repro.core.meta_document import MetaDocument
from repro.core.pee import (
    PathExpressionEvaluator,
    QueryBudget,
    QueryResult,
    QueryStats,
)
from repro.core.results import StreamedList
from repro.core.selftune import QueryLoadMonitor, TuningAdvice, with_compaction_advice
from repro.obs import MetricsRegistry, Observability, Trace, render
from repro.storage.memory import MemoryBackend
from repro.storage.table import StorageBackend


class Flix:
    """A built FliX index over one XML collection."""

    def __init__(
        self,
        collection: XmlCollection,
        config: FlixConfig,
        meta_documents: List[MetaDocument],
        meta_of: Dict[NodeId, int],
        report: BuildReport,
        obs: Optional[Observability] = None,
    ) -> None:
        self.collection = collection
        self.config = config
        self.report = report
        #: the observability bundle (metrics registry + tracer); honours
        #: ``config.observability`` unless an explicit bundle is passed
        self.obs = (
            obs
            if obs is not None
            else Observability(getattr(config, "observability", True))
        )
        # The whole mutable index layout lives on one immutable snapshot,
        # swapped by a single reference assignment (see core/layout.py);
        # the mutation lock serializes the maintenance verbs — queries
        # never take it, they pin self._layout once and run on that.
        self._mutation_lock = threading.RLock()
        # memoized (generation, LayoutStatistics) pair for the probe
        # planner's cost model — must exist before the first evaluator is
        # built, because the evaluator's planner closes over the memo
        self._planner_stats: Optional[Tuple[int, Any]] = None
        slots = tuple(meta_documents)
        frozen_meta_of = dict(meta_of)
        self._layout = IndexLayout(
            slots=slots,
            meta_of=frozen_meta_of,
            pee=None,
            generation=0,
        )
        self._layout = self._layout.with_pee(
            self._build_evaluator(slots, frozen_meta_of, generation=0)
        )
        self.monitor = QueryLoadMonitor()
        # the attached write-ahead log (docs/DURABILITY.md); every
        # maintenance verb appends its record here *before* publishing
        # the layout swap, and save() truncates it at snapshot time
        self._wal = None
        # set by Flix.build for incremental document addition
        self._builder: Optional[IndexBuilder] = None
        self._backend_factory: Callable[[], StorageBackend] = MemoryBackend
        # the factory as originally passed to Flix.build, *before* fault/
        # resilience wrapping — what rebuild() must default to so a
        # sqlite-backed index stays sqlite-backed (and so Flix.build can
        # re-apply its wrapping without double-wrapping)
        self._raw_backend_factory: Callable[[], StorageBackend] = MemoryBackend
        #: the shared result/connection cache (sharded LRU, generation-
        #: invalidated); configured through ``config.cache``, or later via
        #: the deprecated ``enable_cache`` shim
        cache_config = getattr(config, "cache", None)
        self._result_cache = (
            cache_config.build() if cache_config is not None else None
        )
        # counters retired from a cache dropped by disable_cache(), so the
        # cache_hits / cache_misses totals survive a disable
        self._retired_hits = 0
        self._retired_misses = 0
        if self.obs.enabled:
            self._attach_storage_observers()
            self.obs.registry.gauge(
                "flix_meta_documents",
                "Meta documents in the current index layout.",
            ).set(self._layout.live_count)

    # ------------------------------------------------------------------
    # the layout snapshot (copy-on-write; see core/layout.py)
    # ------------------------------------------------------------------
    @property
    def layout(self) -> IndexLayout:
        """The current immutable index-layout snapshot.  Capture it once
        and keep using the captured object for a consistent view; the
        attribute is re-assigned atomically by every maintenance verb."""
        return self._layout

    @property
    def layout_generation(self) -> int:
        """Monotonic layout version; bumped by every published mutation."""
        return self._layout.generation

    @property
    def meta_documents(self) -> List[MetaDocument]:
        """The current layout's *live* meta documents, ascending id.

        Until a document is removed or a compaction runs this is exactly
        the historical dense list; afterwards tombstoned ids are skipped,
        so list position no longer equals ``meta_id`` — use
        :meth:`meta_document_of` or ``layout.meta(meta_id)`` to address
        one by id.
        """
        return self._layout.live_metas()

    @property
    def meta_of(self) -> Dict[NodeId, int]:
        """Node id → meta id of the current layout snapshot (read-only by
        convention: mutate through the maintenance verbs)."""
        return self._layout.meta_of

    @property
    def pee(self) -> PathExpressionEvaluator:
        """The current layout's evaluator."""
        return self._layout.pee

    @pee.setter
    def pee(self, evaluator) -> None:
        # benchmarks wrap the evaluator in place (e.g. a latency-injecting
        # decorator); republish the same layout with the replacement —
        # what is indexed did not change, so the generation is kept
        self._layout = self._layout.with_pee(evaluator)

    def _build_evaluator(
        self,
        slots: Sequence[Optional[MetaDocument]],
        meta_of: Dict[NodeId, int],
        generation: int,
    ) -> PathExpressionEvaluator:
        """A fresh evaluator over one layout snapshot, with the query
        budget and BFS-fallback context the configuration's resilience
        settings imply (both absent without a resilience config, which
        keeps the classic zero-overhead behaviour)."""
        from repro.core.fallback import FallbackContext
        from repro.core.pee import QueryBudget

        resilience = getattr(self.config, "resilience", None)
        budget = QueryBudget.from_resilience(resilience)
        fallback = None
        if resilience is not None and resilience.allow_query_fallback:
            fallback = FallbackContext(
                self.collection.graph, self.collection.tag
            )
        return PathExpressionEvaluator(
            slots,
            meta_of,
            self.obs,
            budget=budget,
            fallback=fallback,
            generation=generation,
            planner=self._make_planner(),
        )

    def _make_planner(self):
        """The configured :class:`repro.core.planner.ProbePlanner`, or
        ``None`` when ``config.planner`` is unset (the classic fixed
        probe discipline with zero per-query overhead)."""
        planner_config = getattr(self.config, "planner", None)
        if planner_config is None:
            return None
        from repro.core.planner import ProbePlanner

        if planner_config.statistics:
            provider = self.planner_statistics
        else:
            provider = None
        return ProbePlanner(planner_config, statistics=provider)

    def planner_statistics(self, refresh: bool = False):
        """Per-meta selectivity statistics for the probe planner's cost
        model (:class:`repro.core.planner.LayoutStatistics`), collected
        lazily over the *current* layout snapshot and memoized per
        generation.  ``refresh=True`` discards the memo first.  Works with
        the planner unconfigured (EXPLAIN on a fixed-discipline instance
        still shows cost estimates)."""
        from repro.core.config import PlannerConfig as _PlannerConfig
        from repro.core.planner import collect_layout_statistics

        layout = self._layout
        cached = self._planner_stats
        if (
            not refresh
            and cached is not None
            and cached[0] == layout.generation
        ):
            return cached[1]
        cfg = getattr(self.config, "planner", None) or _PlannerConfig()
        stats = collect_layout_statistics(
            layout.slots,
            layout.meta_of,
            self.collection.tag,
            layout.generation,
            rounds=cfg.rounds,
        )
        self._planner_stats = (layout.generation, stats)
        return stats

    def _make_pee(self) -> PathExpressionEvaluator:
        """A fresh evaluator over the current layout (compat helper; the
        streamed-delivery path builds one per background query)."""
        layout = self._layout
        return self._build_evaluator(
            layout.slots, layout.meta_of, layout.generation
        )

    def _publish_layout(self, layout: IndexLayout, verb: str) -> None:
        """Atomically publish a new layout snapshot.

        One reference assignment (atomic under CPython) makes the new
        layout visible; queries already running keep the snapshot they
        pinned.  The shared result cache is invalidated *after* the swap:
        an evaluation that raced us captured the old cache generation
        before evaluating, so its store is stamped stale and dropped —
        the reverse order would let a pre-swap answer be stored as fresh.
        """
        self._layout = layout
        if self.obs.enabled:
            self.obs.registry.counter(
                "flix_layout_swaps_total",
                "Atomic index-layout publications, by maintenance verb.",
            ).inc(verb=verb)
            self.obs.registry.gauge(
                "flix_layout_generation",
                "Generation counter of the published index layout.",
            ).set(layout.generation)
            self.obs.registry.gauge(
                "flix_meta_documents",
                "Meta documents in the current index layout.",
            ).set(layout.live_count)
        self.invalidate_caches()

    @property
    def degraded_meta_ids(self) -> List[int]:
        """Meta documents currently answered by the PEE's BFS fallback."""
        return self.pee.degraded_meta_ids

    def _attach_storage_observers(self) -> None:
        """Count query-time storage traffic on every meta-document backend.

        Runs after the build merge, so it also covers indexes built in
        process-pool workers (whose build-time traffic is unobservable —
        their registries die with the worker process).  Resilient wrappers
        additionally get the metrics bundle (re)bound here: products of a
        pickled factory arrive from workers with observability unbound.
        """
        backends = [
            getattr(meta.index, "backend", None)
            for meta in self.meta_documents
        ]
        if self._builder is not None:
            backends.append(self._builder.framework_backend)
        for backend in backends:
            if backend is None:
                continue
            backend.attach_observer(self.obs.storage_instruments(backend))
            bind = getattr(backend, "set_observability", None)
            if bind is not None:
                bind(self.obs)

    # ------------------------------------------------------------------
    # build phase
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        collection: XmlCollection,
        config: Optional[FlixConfig] = None,
        backend_factory: Callable[[], StorageBackend] = MemoryBackend,
        jobs: Optional[int] = None,
        workload: Optional["WorkloadProfile"] = None,
    ) -> "Flix":
        """Run the full build phase: MDB -> ISS -> IB.

        ``config`` defaults to the automatic recommendation derived from the
        collection's statistics (the paper's future-work goal, section 4.1).
        ``jobs`` overrides ``config.jobs`` for this build only: with more
        than one worker the per-meta-document builds run on a worker pool,
        with results merged in spec order — the built index is identical to
        a sequential build at any ``jobs`` value.

        ``workload`` is an observed :class:`repro.core.selftune
        .WorkloadProfile` (``flix.monitor.profile()``): the ISS is biased
        toward strategies that fit the measured query mix (APEX-style
        workload-driven retuning; see ``docs/PLANNING.md``) before the
        build runs.

        Fault tolerance: when ``config.resilience`` is set, every backend
        the factory produces is wrapped in a retrying, circuit-breaking
        :class:`repro.storage.ResilientBackend`.  When the ``FLIX_FAULT_
        PLAN`` / ``FAULT_PLAN`` environment variable names a fault plan
        (CI's chaos job), a fault-injecting layer is inserted *under* the
        resilient wrapper — and resilience is force-enabled so the injected
        faults are actually absorbed.
        """
        if config is None:
            config = FlixConfig.recommend_for(collection)
        raw_backend_factory = backend_factory

        import os as _os

        if _os.environ.get("FLIX_PACKED", "") not in ("", "0") and not getattr(
            config, "packed", False
        ):
            # CI's packed-parity job: force the packed layout the same way
            # FLIX_FAULT_PLAN forces a fault plan
            config = config.with_packed()

        from repro.core.config import apply_planner_env

        # FLIX_PLANNER=0 / =1: CI's planner-parity job flips the probe
        # planner without editing call sites (same pattern as FLIX_PACKED)
        config = apply_planner_env(config)
        if workload is not None:
            config = workload.bias(config)

        from repro.faults import plan_from_env

        plan = plan_from_env()
        if plan is not None and not plan.storage_is_noop:
            # crash-only plans (crash_after_writes) target the WAL append
            # path, not storage — they must not wrap every table
            from repro.faults import FaultyFactory

            backend_factory = FaultyFactory(backend_factory, plan)
            if getattr(config, "resilience", None) is None:
                config = config.with_resilience()
        resilience = getattr(config, "resilience", None)
        if resilience is not None:
            from repro.storage.resilient import ResilientFactory

            backend_factory = ResilientFactory(
                backend_factory,
                retry_policy=resilience.retry_policy(),
                breaker_policy=resilience.breaker_policy(),
            )

        obs = Observability(getattr(config, "observability", True))
        specs = MetaDocumentBuilder(collection, config).build_specs()
        builder = IndexBuilder(collection, config, backend_factory, obs=obs)
        meta_documents, meta_of, report = builder.build(specs, jobs=jobs)
        if getattr(config, "packed", False):
            # Compile each built index to its flat columnar twin before the
            # layout is published; the object graph remains reachable via
            # the packed backend for persistence and fingerprinting.
            from repro.indexes.packed import packed_clone

            for meta in meta_documents:
                packed = packed_clone(meta.index)
                if packed is not None:
                    meta.index = packed
                    meta.finalize_links()
        flix = cls(collection, config, meta_documents, meta_of, report, obs=obs)
        flix._builder = builder
        flix._backend_factory = backend_factory
        flix._raw_backend_factory = raw_backend_factory
        if flix.obs.enabled:
            # rebind now that the builder (and its framework backend) is known
            flix._attach_storage_observers()
        return flix

    @classmethod
    def build_monolithic(
        cls,
        collection: XmlCollection,
        strategy: str,
        backend_factory: Callable[[], StorageBackend] = MemoryBackend,
    ) -> "Flix":
        """Index the whole collection with one strategy, no meta documents.

        This is how the paper's section 6 comparators are built: "an
        extended version of HOPI that supports distance information and a
        database-backed implementation of APEX, both applied to the
        complete data collection."  The result exposes the same query API
        as a real FliX build, so benchmarks compare apples to apples.
        """
        import time as _time

        from repro.core.ib import MetaDocumentReport
        from repro.core.meta_document import MetaDocumentSpec
        from repro.indexes.registry import build_index

        started = _time.perf_counter()
        nodes = set(collection.node_ids())
        spec = MetaDocumentSpec(0, nodes, list(collection.graph.edges()))
        graph = spec.build_graph()
        tags = {node: collection.tag(node) for node in nodes}
        index = build_index(strategy, graph, tags, backend_factory())
        meta = MetaDocument(
            meta_id=0, nodes=frozenset(nodes), index=index, strategy=strategy
        )
        elapsed = _time.perf_counter() - started
        report = BuildReport(config_name=f"monolithic_{strategy}")
        report.meta_documents.append(
            MetaDocumentReport(
                meta_id=0,
                node_count=len(nodes),
                internal_edge_count=collection.graph.edge_count,
                strategy=strategy,
                rationale="monolithic comparator (whole collection, one index)",
                index_bytes=index.size_bytes(),
                build_seconds=elapsed,
            )
        )
        report.total_seconds = elapsed
        config = FlixConfig(
            name=f"monolithic_{strategy}",
            mdb_strategy="naive",
            allowed_strategies=(strategy,),
        )
        meta_of = {node: 0 for node in nodes}
        return cls(collection, config, [meta], meta_of, report)

    # ------------------------------------------------------------------
    # query phase — the unified API
    # ------------------------------------------------------------------
    def query(
        self,
        request: QueryRequest,
        budget: Optional[QueryBudget] = None,
    ) -> QueryResponse:
        """Evaluate one :class:`~repro.core.api.QueryRequest`, materialized.

        This is the primary query entry point: every kind the framework
        understands goes through here (the legacy ``find_*`` /
        ``connection_*`` methods are shims over it or over
        :meth:`query_stream`).  The shared result cache — when configured —
        is consulted first and fed afterwards; the response carries the
        query's private stats and its completeness flag.

        ``budget`` overrides ``request.budget`` for this call (the serving
        layer uses it to charge queue wait against the deadline).  Any
        budget — explicit or the evaluator's configured resilience default
        — makes the answer uncacheable unless it came back ``complete``: a
        truncated or degraded answer must never be replayed to a later
        caller.
        """
        started = time.perf_counter()
        effective_budget = budget if budget is not None else request.budget
        # Pin the layout snapshot, the cache object, and the cache
        # generation *before* evaluating: a concurrent maintenance verb
        # publishes a new layout + generation while we run, but this call
        # keeps evaluating against exactly the snapshot it started on, and
        # its store is stamped with the captured (now stale) generation so
        # it can never be served as fresh.  The layout generation is part
        # of the key, so even inside the swap-to-invalidate window a hit
        # can only replay an answer computed on *this* snapshot.
        layout = self._layout
        cache = self._result_cache
        base_key = request.cache_key() if cache is not None else None
        key = (
            base_key + (layout.generation,) if base_key is not None else None
        )
        generation = cache.generation if cache is not None else 0
        if key is not None:
            # A complete cached answer is always servable, even to a
            # budget-bearing call — the budget bounds *work*, and a replay
            # does none.
            boxed = self._cache_get(cache, key, request.kind)
            if boxed is not None:
                return self._replay(request, boxed[0], started, layout)
        payload, stats = self._evaluate(request, effective_budget, layout)
        self.monitor.record(stats)
        if (
            key is not None
            and effective_budget is None
            and stats.is_complete
            and (request.is_scalar or request.limit is None)
        ):
            self._cache_put(cache, key, (payload, stats), generation)
        plan = self.explain(request, layout=layout) if request.explain else None
        if request.is_scalar:
            return QueryResponse(
                request, [], payload, stats, False,
                time.perf_counter() - started,
                layout_generation=layout.generation,
                plan=plan,
            )
        results = list(payload)
        return QueryResponse(
            request, results, None, stats, False,
            time.perf_counter() - started,
            layout_generation=layout.generation,
            plan=plan,
        )

    def query_stream(self, request: QueryRequest) -> Iterator[Any]:
        """Lazily evaluate a streaming-kind request (descendants,
        ancestors, type queries, connections), yielding results as the
        evaluator finds them — the classic FliX delivery of section 3.1.

        The shared cache participates exactly as in :meth:`query`: a hit
        replays the stored (full) result list, a fully-consumed unlimited
        stream is stored on completion — but only when it finished
        ``complete`` (a resilience default budget can truncate or degrade
        it); an abandoned stream stores nothing.  Scalar and aggregate
        kinds have nothing to stream — use :meth:`query` for those.
        """
        if request.kind not in STREAMING_KINDS:
            raise ValueError(
                f"kind {request.kind!r} has no streaming form; use query()"
            )
        # pinned once: the whole stream is answered by this one snapshot,
        # even if maintenance verbs publish new layouts mid-consumption
        layout = self._layout
        cache = self._result_cache
        base_key = request.cache_key() if cache is not None else None
        key = (
            base_key + (layout.generation,) if base_key is not None else None
        )
        generation = cache.generation if cache is not None else 0
        if key is not None:
            boxed = self._cache_get(cache, key, request.kind)
            if boxed is not None:
                results, _ = boxed[0]
                if request.limit is not None:
                    results = results[: request.limit]
                yield from results
                return
        stream, finish = self._raw_stream(request, layout=layout)
        iterator: Iterator[Any] = iter(stream)
        if request.limit is not None:
            iterator = itertools.islice(iterator, request.limit)
        collected: Optional[List[Any]] = (
            [] if (key is not None and request.limit is None) else None
        )
        for item in iterator:
            if collected is not None:
                collected.append(item)
            yield item
        stats = finish()
        self.monitor.record(stats)
        if collected is not None and stats.is_complete:
            self._cache_put(cache, key, (collected, stats), generation)

    def explain(
        self,
        request: QueryRequest,
        layout: Optional["IndexLayout"] = None,
    ) -> "QueryPlan":
        """The probe planner's static :class:`repro.core.planner.QueryPlan`
        for ``request`` — the EXPLAIN surface — without evaluating it.

        With ``config.planner`` set, the plan's ``mode`` is ``"planned"``
        and describes the order and pruning the evaluator will actually
        apply; unconfigured, ``mode="fixed"`` reports the same cost
        estimates against the classic fixed probe discipline.  Kinds that
        never enter the Figure-4 loop (children / connections / cost) come
        back ``mode="direct"``.  ``layout`` pins the snapshot explained
        (defaults to the current one).
        """
        from repro.core.planner import ProbePlanner

        if layout is None:
            layout = self._layout
        planner_config = getattr(self.config, "planner", None)
        planner = layout.pee.planner if hasattr(layout.pee, "planner") else None
        if planner is None:
            planner = ProbePlanner(
                planner_config, statistics=self.planner_statistics
            )
        seeds = None
        if request.kind == "descendants" and request.source_tag is not None:
            seeds = [
                node
                for node in self.collection.nodes_with_tag(request.source_tag)
                if node in layout.meta_of
            ]
        trace = self.obs.tracer.trace(
            "pee.plan", kind=request.kind, generation=layout.generation
        )
        try:
            return planner.plan(
                request,
                layout,
                seeds=seeds,
                configured=planner_config is not None,
            )
        finally:
            trace.finish()

    # ------------------------------------------------------------------
    # evaluation engine behind query()/query_stream()
    # ------------------------------------------------------------------
    def _raw_stream(
        self,
        request: QueryRequest,
        budget: Optional[QueryBudget] = None,
        layout: Optional[IndexLayout] = None,
    ) -> Tuple[Iterator[Any], Callable[[], QueryStats]]:
        """The uncached stream for a streaming-kind request, plus a
        ``finish()`` callback returning the query's final stats snapshot
        (call it only after consumption stops).  ``layout`` is the pinned
        snapshot the whole stream evaluates against (defaults to the
        current one)."""
        if layout is None:
            layout = self._layout
        pee = layout.pee
        budget = budget if budget is not None else request.budget
        if request.kind == "descendants" and request.source_tag is not None:
            # type-query seeding reads the live tag table; seeds that are
            # not part of the pinned layout (added after it) are filtered
            # so the answer stays consistent with one generation
            seeds = [
                node
                for node in self.collection.nodes_with_tag(request.source_tag)
                if node in layout.meta_of
            ]
            stream = pee.evaluate_type_query(
                seeds, request.tag, request.max_distance, budget=budget
            )
            return stream, lambda: stream.stats.snapshot()
        if request.kind == "descendants":
            stream = pee.find_descendants(
                request.source, request.tag, request.max_distance,
                request.include_self, request.exact_order, budget=budget,
            )
            return stream, lambda: stream.stats.snapshot()
        if request.kind == "ancestors":
            stream = pee.find_ancestors(
                request.source, request.tag, request.max_distance,
                request.include_self, request.exact_order, budget=budget,
            )
            return stream, lambda: stream.stats.snapshot()
        if request.kind == "connections":
            from repro.core.connections import ConnectionEvaluator

            stats = QueryStats()
            inner = ConnectionEvaluator(self.collection).find_connected(
                request.source, tag=request.tag, model=request.model,
                max_cost=request.max_cost,
            )

            def counted() -> Iterator[Tuple[NodeId, float]]:
                for pair in inner:
                    stats.results_returned += 1
                    yield pair

            return counted(), lambda: stats.snapshot()
        raise ValueError(f"kind {request.kind!r} is not a streaming kind")

    def _evaluate(
        self,
        request: QueryRequest,
        budget: Optional[QueryBudget],
        layout: Optional[IndexLayout] = None,
    ) -> Tuple[Any, QueryStats]:
        """Evaluate without cache involvement: ``(payload, stats)`` where
        the payload is the result list (list kinds) or the scalar value.
        ``layout`` is the caller's pinned snapshot (defaults to current)."""
        if layout is None:
            layout = self._layout
        kind = request.kind
        if kind in STREAMING_KINDS:
            stream, finish = self._raw_stream(request, budget, layout=layout)
            iterator: Iterator[Any] = iter(stream)
            if request.limit is not None:
                iterator = itertools.islice(iterator, request.limit)
            results = list(iterator)
            close = getattr(stream, "close", None)
            if close is not None:
                close()  # finalize an early-stopped (limited) stream
            return results, finish()
        if kind == "children":
            children = []
            for successor in sorted(
                self.collection.graph.successors(request.source)
            ):
                meta_id = layout.meta_of.get(successor)
                if meta_id is None:
                    # the successor postdates the pinned layout (racing
                    # add); skip it so the answer matches one generation
                    continue
                if request.tag is None or (
                    self.collection.tag(successor) == request.tag
                ):
                    children.append(QueryResult(successor, 1, meta_id))
            return children, QueryStats(results_returned=len(children))
        if kind == "path":
            return self._evaluate_path(request, budget, layout)
        if kind == "cost":
            from repro.core.connections import ConnectionEvaluator

            value = ConnectionEvaluator(self.collection).connection_cost(
                request.source, request.target, model=request.model,
                max_cost=request.max_cost,
            )
            return value, QueryStats(
                results_returned=0 if value is None else 1
            )
        if kind == "test":
            stats = QueryStats()
            if request.bidirectional:
                value = layout.pee.connection_test_bidirectional(
                    request.source, request.target, request.max_distance,
                    stats=stats, budget=budget,
                )
            else:
                value = layout.pee.connection_test(
                    request.source, request.target, request.max_distance,
                    stats=stats, budget=budget,
                )
            return value, stats.snapshot()
        raise ValueError(f"unknown query kind {kind!r}")  # pragma: no cover

    def _evaluate_path(
        self,
        request: QueryRequest,
        budget: Optional[QueryBudget],
        layout: Optional[IndexLayout] = None,
    ) -> Tuple[List[Tuple[NodeId, int]], QueryStats]:
        """Multi-step ``start//t1//…//tn``: one descendant query per
        frontier element and step, frontiers deduplicated by best
        distance (the unscored counterpart of the relaxed engine)."""
        if layout is None:
            layout = self._layout
        aggregate = QueryStats()
        frontier: Dict[NodeId, int] = {request.source: 0}
        for tag in request.path:
            next_frontier: Dict[NodeId, int] = {}
            for node, distance in sorted(
                frontier.items(), key=lambda kv: kv[1]
            ):
                stream = layout.pee.find_descendants(
                    node, tag, request.max_distance, budget=budget
                )
                for result in stream:
                    total = distance + result.distance
                    current = next_frontier.get(result.node)
                    if current is None or total < current:
                        next_frontier[result.node] = total
                aggregate.merge(stream.stats)
            if not next_frontier:
                return [], aggregate
            frontier = next_frontier
        pairs = sorted(frontier.items(), key=lambda kv: (kv[1], kv[0]))
        return pairs, aggregate

    def _replay(
        self, request: QueryRequest, entry: Tuple[Any, QueryStats],
        started: float, layout: Optional[IndexLayout] = None,
    ) -> QueryResponse:
        """Build the response for a cache hit (stats are the original
        evaluation's — the replay itself did no index work).  A hit can
        only come from an entry stored under the current cache generation,
        and every layout publish bumps that generation, so the entry
        describes the caller's pinned layout."""
        generation = (
            layout.generation if layout is not None
            else self._layout.generation
        )
        payload, stats = entry
        if request.is_scalar:
            return QueryResponse(
                request, [], payload, stats, True,
                time.perf_counter() - started,
                layout_generation=generation,
            )
        results = list(payload)
        if request.limit is not None:
            results = results[: request.limit]
        return QueryResponse(
            request, results, None, stats, True,
            time.perf_counter() - started,
            layout_generation=generation,
        )

    # ------------------------------------------------------------------
    # compatibility shims (the pre-unified-API query surface)
    # ------------------------------------------------------------------
    def find_descendants(
        self,
        start: NodeId,
        tag: Optional[str] = None,
        max_distance: Optional[int] = None,
        limit: Optional[int] = None,
        include_self: bool = False,
        exact_order: bool = False,
    ) -> Iterator[QueryResult]:
        """Deprecated: use ``query_stream(QueryRequest.descendants(...))``.

        ``a//b`` (or ``a//*`` with ``tag=None``), streamed.  ``limit``
        implements the top-k early stop of section 3.1; ``exact_order``
        buffers results so the stream is sorted by the reported distance
        (section 7's first future-work item).
        """
        warnings.warn(
            "Flix.find_descendants is deprecated; use "
            "query_stream(QueryRequest.descendants(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query_stream(
            QueryRequest.descendants(
                start, tag, max_distance, limit, include_self, exact_order
            )
        )

    def find_ancestors(
        self,
        start: NodeId,
        tag: Optional[str] = None,
        max_distance: Optional[int] = None,
        limit: Optional[int] = None,
        include_self: bool = False,
        exact_order: bool = False,
    ) -> Iterator[QueryResult]:
        """Deprecated: use ``query_stream(QueryRequest.ancestors(...))``.

        Reverse axis: ancestors of ``start``."""
        warnings.warn(
            "Flix.find_ancestors is deprecated; use "
            "query_stream(QueryRequest.ancestors(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query_stream(
            QueryRequest.ancestors(
                start, tag, max_distance, limit, include_self, exact_order
            )
        )

    def find_children(
        self,
        node: NodeId,
        tag: Optional[str] = None,
    ) -> List[QueryResult]:
        """Deprecated: use ``query(QueryRequest.children(...))``.

        The child axis (``a/b``), section 5's "other cases".  In the
        linked data model, children are the direct successors in the union
        graph — sub-elements and immediate link targets alike, which is
        exactly how the paper treats referenced elements ("similarly to
        normal child elements").
        """
        warnings.warn(
            "Flix.find_children is deprecated; use "
            "query(QueryRequest.children(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(QueryRequest.children(node, tag)).results

    def evaluate_type_query(
        self,
        source_tag: str,
        target_tag: Optional[str],
        max_distance: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> Iterator[QueryResult]:
        """Deprecated: use ``query_stream(QueryRequest.type_query(...))``.

        ``A//B``: descendants of *any* element with tag ``source_tag``."""
        warnings.warn(
            "Flix.evaluate_type_query is deprecated; use "
            "query_stream(QueryRequest.type_query(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query_stream(
            QueryRequest.type_query(source_tag, target_tag, max_distance, limit)
        )

    def find_path(
        self,
        start: NodeId,
        tags: Sequence[str],
        max_distance_per_step: Optional[int] = None,
    ) -> List[Tuple[NodeId, int]]:
        """Deprecated: use ``query(QueryRequest.find_path(...))``.

        Evaluate a multi-step path ``start//t1//t2//...//tn``.  Returns
        the distinct elements matching the final step with the smallest
        accumulated distance found, ascending.
        """
        warnings.warn(
            "Flix.find_path is deprecated; use "
            "query(QueryRequest.find_path(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(
            QueryRequest.find_path(start, tags, max_distance_per_step)
        ).results

    def find_connections(
        self,
        start: NodeId,
        tag: Optional[str] = None,
        model=None,
        max_cost: Optional[float] = None,
    ):
        """Deprecated: use ``query_stream(QueryRequest.connections(...))``.

        Generalized connection search (sections 1.1 / 7).  ``model`` is a
        :class:`repro.core.connections.ConnectionModel` assigning costs to
        tree/link traversals and their reversals; results stream in
        exactly ascending cost.  Runs on the element graph directly (typed
        edge costs defeat uniform-hop indexes).
        """
        warnings.warn(
            "Flix.find_connections is deprecated; use "
            "query_stream(QueryRequest.connections(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query_stream(
            QueryRequest.connections(start, tag, model, max_cost)
        )

    def connection_cost(
        self,
        source: NodeId,
        target: NodeId,
        model=None,
        max_cost: Optional[float] = None,
    ) -> Optional[float]:
        """Deprecated: use ``query(QueryRequest.cost(...))``.

        Cheapest generalized-connection cost between two elements —
        repeated hot pairs are answered from the shared cache."""
        warnings.warn(
            "Flix.connection_cost is deprecated; use "
            "query(QueryRequest.cost(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(
            QueryRequest.cost(source, target, model, max_cost)
        ).value

    def connection_test(
        self,
        source: NodeId,
        target: NodeId,
        max_distance: Optional[int] = None,
        bidirectional: bool = False,
    ) -> Optional[int]:
        """Deprecated: use ``query(QueryRequest.test(...))``.

        Is ``target`` reachable from ``source``?  Approximate distance or
        ``None`` — repeated hot pairs are answered from the shared
        cache."""
        warnings.warn(
            "Flix.connection_test is deprecated; use "
            "query(QueryRequest.test(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(
            QueryRequest.test(source, target, max_distance, bidirectional)
        ).value

    # ------------------------------------------------------------------
    # result caching (section 7: "caching results of frequent
    # (sub-)queries") — a sharded LRU shared by every worker thread
    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        """Lifetime cache hits (including caches since disabled)."""
        if self._result_cache is None:
            return self._retired_hits
        return self._retired_hits + self._result_cache.stats().hits

    @property
    def cache_misses(self) -> int:
        """Lifetime cache misses (including caches since disabled)."""
        if self._result_cache is None:
            return self._retired_misses
        return self._retired_misses + self._result_cache.stats().misses

    @property
    def cache(self):
        """The live :class:`repro.serve.cache.ShardedLRUCache` (or None)."""
        return self._result_cache

    def cache_stats(self):
        """Aggregate :class:`repro.serve.cache.CacheStats` (or ``None``
        when no cache is configured)."""
        if self._result_cache is None:
            return None
        return self._result_cache.stats()

    def configure_cache(self, cache_config: Optional[CacheConfig]) -> None:
        """(Re)configure the shared cache; ``None`` removes it.

        Counters of a replaced cache are retired into the lifetime
        ``cache_hits``/``cache_misses`` totals.
        """
        if self._result_cache is not None:
            stats = self._result_cache.stats()
            self._retired_hits += stats.hits
            self._retired_misses += stats.misses
        self._result_cache = (
            cache_config.build() if cache_config is not None else None
        )

    def invalidate_caches(self) -> None:
        """Generation-bump the shared cache: every cached entry becomes
        unservable (O(1); entries are dropped lazily).  Called internally
        by every index-layout mutation (``add_document``)."""
        if self._result_cache is not None:
            self._result_cache.invalidate_all()

    def enable_cache(self, maxsize: int = 128) -> None:
        """Deprecated: configure caching via ``FlixConfig.cache``
        (:class:`CacheConfig`) or :meth:`configure_cache` instead.

        Installs a single-shard cache, preserving the historical exact
        global LRU eviction order; hit/miss counters restart at zero as
        they always did.
        """
        warnings.warn(
            "Flix.enable_cache is deprecated; set FlixConfig.cache = "
            "CacheConfig(maxsize=..., shards=...) or call "
            "Flix.configure_cache(CacheConfig(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self._result_cache = CacheConfig(maxsize=maxsize, shards=1).build()
        self._retired_hits = 0
        self._retired_misses = 0

    def disable_cache(self) -> None:
        """Deprecated: use ``configure_cache(None)`` (or build with a
        cache-less config)."""
        warnings.warn(
            "Flix.disable_cache is deprecated; call "
            "Flix.configure_cache(None) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.configure_cache(None)

    def _cache_get(self, cache, key: tuple, kind: str):
        boxed = cache.get(key)
        if self.obs.enabled:
            if boxed is not None:
                self.obs.registry.counter(
                    "flix_cache_hits_total",
                    "Query-cache hits, by query kind.",
                ).inc(kind=kind)
            else:
                self.obs.registry.counter(
                    "flix_cache_misses_total",
                    "Query-cache misses, by query kind.",
                ).inc(kind=kind)
        return boxed

    def _cache_put(self, cache, key: tuple, entry, generation: int) -> None:
        """Store an entry in the cache pinned at lookup time, stamped with
        the generation captured *before* evaluation — the store is dropped
        (or stamped stale) if the index mutated underneath us."""
        if cache is not None and key is not None:
            cache.put(key, entry, generation=generation)

    # ------------------------------------------------------------------
    # concurrent serving
    # ------------------------------------------------------------------
    def serve(self, **kwargs):
        """Wrap this instance in a :class:`repro.serve.FlixService`
        worker pool (``workers``, ``max_pending``, ``default_budget``,
        … — see ``docs/SERVING.md``).  The service shares this
        instance's cache, metrics registry, and tracer."""
        from repro.serve import FlixService

        return FlixService(self, **kwargs)

    # ------------------------------------------------------------------
    # streamed (multithreaded) delivery, section 3.1
    # ------------------------------------------------------------------
    def find_descendants_streamed(
        self,
        start: NodeId,
        tag: Optional[str] = None,
        max_distance: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> StreamedList:
        """Run the query in a background thread; results appear on the
        returned :class:`StreamedList` as soon as they are found."""
        observe = None
        if self.obs.enabled:
            streamed = self.obs.registry.counter(
                "flix_streamed_results_total",
                "Results delivered through background StreamedLists.",
            )
            observe = streamed.inc
        results: StreamedList[QueryResult] = StreamedList(observe=observe)
        evaluator = self._make_pee()

        def produce() -> None:
            try:
                delivered = 0
                for item in evaluator.find_descendants(start, tag, max_distance):
                    if results.cancelled:
                        break
                    results.append(item)
                    delivered += 1
                    if limit is not None and delivered >= limit:
                        break
            finally:
                results.close()

        thread = threading.Thread(target=produce, name="flix-pee", daemon=True)
        thread.start()
        return results

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def metrics(self) -> MetricsRegistry:
        """The live metrics registry (empty forever when observability is
        off); render it with :meth:`export_metrics` or ``repro.obs.render``.
        """
        return self.obs.registry

    def export_metrics(self, format: str = "json") -> str:
        """Serialize the registry: ``"json"`` or ``"prom"`` (Prometheus
        text exposition format).  An empty/disabled registry renders to an
        empty document in either format."""
        return render(self.obs.registry, format)

    def trace_last_query(self) -> Optional[Trace]:
        """The span tree of the most recently completed query, or ``None``
        (no query yet, or observability off).  ``trace.render()`` gives an
        indented ASCII view; see ``docs/OBSERVABILITY.md`` for reading it.
        """
        return self.obs.tracer.last_trace("pee.query")

    # ------------------------------------------------------------------
    # introspection & tuning
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Total storage of all live meta-document indexes + residual
        links (computed from the current layout, so removals and
        compactions are reflected immediately)."""
        total = sum(
            meta.index.size_bytes()
            for meta in self.meta_documents
            if meta.index is not None
        )
        if self._builder is not None:
            total += self._builder.framework_backend.table(
                "flix_residual_links"
            ).size_bytes()
        return total

    def index_fingerprint(self) -> str:
        """Content hash over every live meta-document index, the tombstone
        set, and the residual links — byte-for-byte identical for builds of
        the same collection and configuration regardless of ``jobs`` (the
        parallel builder's determinism guarantee), and deterministic for a
        given add/remove/compact sequence."""
        import hashlib

        layout = self._layout
        digest = hashlib.sha256()
        for meta_id in sorted(layout.tombstones):
            digest.update(f"tombstone:{meta_id}".encode("utf-8"))
        for meta in layout.live_metas():
            digest.update(str(meta.meta_id).encode("utf-8"))
            digest.update(meta.strategy.encode("utf-8"))
            if meta.index is None:  # build failed past every fallback
                digest.update(b"<unindexed>")
            else:
                digest.update(meta.index.backend.fingerprint().encode("utf-8"))
        if self._builder is not None:
            digest.update(
                self._builder.framework_backend.fingerprint().encode("utf-8")
            )
        return digest.hexdigest()

    def meta_document_of(self, node: NodeId) -> MetaDocument:
        layout = self._layout
        return layout.slots[layout.meta_of[node]]

    def tuning_advice(
        self, compaction_threshold: int = 4, **kwargs
    ) -> TuningAdvice:
        """Self-tuning check over the recorded query load (section 7).

        On top of the classic rebuild advice, the returned
        :class:`TuningAdvice` flags *online compaction* when incremental
        growth has accumulated ``compaction_threshold`` or more singleton
        meta documents: :meth:`compact` merges them without the downtime
        of a full rebuild."""
        advice = self.monitor.advice(self.config, **kwargs)
        return with_compaction_advice(
            advice,
            self._layout.compaction_candidates(),
            compaction_threshold,
        )

    def rebuild(
        self,
        config: Optional[FlixConfig] = None,
        backend_factory: Optional[Callable[[], StorageBackend]] = None,
        jobs: Optional[int] = None,
        workload: Optional["WorkloadProfile"] = None,
    ) -> "Flix":
        """Run the build phase again (e.g. following tuning advice).

        ``backend_factory`` defaults to the factory this instance was
        built with (before fault/resilience wrapping, which ``build``
        re-applies) — a sqlite-backed index rebuilds sqlite-backed
        instead of silently migrating to memory.

        ``workload`` biases the rebuild's strategy selection toward the
        observed query mix — pass ``flix.monitor.profile()`` to close the
        APEX-style retuning loop (``rebuild(workload=flix.monitor
        .profile())`` after ``tuning_advice`` recommends it).

        The returned instance starts with a cold result cache: cached
        results describe the old meta-document layout and must not survive
        a rebuild.
        """
        if backend_factory is None:
            backend_factory = self._raw_backend_factory
        return Flix.build(
            self.collection, config or self.config, backend_factory,
            jobs=jobs, workload=workload,
        )

    # ------------------------------------------------------------------
    # incremental maintenance (copy-on-write; see docs/MAINTENANCE.md)
    # ------------------------------------------------------------------
    def _require_builder(self) -> None:
        if self._builder is None:
            raise RuntimeError(
                "this Flix instance was not created by Flix.build; "
                "monolithic comparators do not support incremental "
                "maintenance"
            )

    def _pack_index_if_configured(self, index):
        """The packed twin of a freshly built index when the configuration
        asks for the packed layout (otherwise, or when the strategy has no
        packed form, the index unchanged)."""
        if not getattr(self.config, "packed", False):
            return index
        from repro.indexes.packed import packed_clone

        packed = packed_clone(index)
        return index if packed is None else packed

    def pack(self) -> int:
        """Compile every live meta document's index to the packed layout.

        Each object-graph index is serialized to a FLXPACK blob
        (:mod:`repro.indexes.packed`) and replaced by an attached packed
        index sharing the same storage backend, so persistence and
        :meth:`index_fingerprint` are unaffected; every query answers
        byte-identically.  Published as one atomic layout swap that keeps
        the generation — packing changes representation, not content.
        Returns the number of meta documents repacked (already-packed and
        unpackable strategies are left alone).
        """
        from repro.indexes.packed import packed_clone

        with self._mutation_lock:
            layout = self._layout
            slots: List[Optional[MetaDocument]] = list(layout.slots)
            repacked = 0
            for meta_id, meta in enumerate(slots):
                if meta is None:
                    continue
                packed = packed_clone(meta.index)
                if packed is None:
                    continue
                clone = meta.copy_links()
                clone.index = packed
                clone.finalize_links()
                slots[meta_id] = clone
                repacked += 1
            if not repacked:
                return 0
            new_layout = IndexLayout(
                slots=tuple(slots),
                meta_of=layout.meta_of,
                pee=None,
                generation=layout.generation,
                tombstones=layout.tombstones,
                incremental_meta_ids=layout.incremental_meta_ids,
            )
            new_layout = new_layout.with_pee(
                self._build_evaluator(
                    new_layout.slots, layout.meta_of, new_layout.generation
                )
            )
            self._publish_layout(new_layout, verb="pack")
            if self.obs.enabled:
                self._attach_storage_observers()
            return repacked

    # ------------------------------------------------------------------
    # durability: the write-ahead mutation log (docs/DURABILITY.md)
    # ------------------------------------------------------------------
    @property
    def wal(self):
        """The attached :class:`repro.wal.WriteAheadLog` (or ``None``)."""
        return self._wal

    def attach_wal(self, wal) -> None:
        """Log every future maintenance verb to ``wal``.

        The record is appended (and, under the default fsync policy,
        durable) *before* the verb's layout swap becomes visible, so
        crash recovery (:func:`repro.wal.recover_flix`) replays exactly
        the acknowledged history.  :meth:`save` then truncates the log:
        a snapshot captures everything logged so far.
        """
        with self._mutation_lock:
            self._wal = wal

    def enable_wal(self, path, fsync: str = "commit", **kwargs):
        """Create (or resume) a write-ahead log at ``path`` and attach it.

        Resuming an existing log trims any torn tail left by a crash —
        call :func:`repro.wal.recover_flix` instead if unreplayed
        records may exist; attaching here without replay would orphan
        them at the next truncation.  Returns the log.
        """
        from repro.wal import WriteAheadLog

        wal = WriteAheadLog(
            path,
            base_generation=self.layout_generation,
            fsync=fsync,
            observability=self.obs if self.obs.enabled else None,
            **kwargs,
        )
        self.attach_wal(wal)
        return wal

    def _wal_append(self, verb: str, payload: dict, generation: int) -> None:
        """Append one verb record ahead of its publish (no-op unlogged)."""
        if self._wal is not None:
            self._wal.append(verb, generation, payload)

    def add_document(self, document) -> "MetaDocument":
        """Add one new document without rebuilding the whole index.

        The new document becomes its own meta document (indexed with the
        strategy the ISS picks for it); its links — and any previously
        dangling links that now resolve to it — become residual links
        followed at run time.  The change is published as one atomic
        layout swap: queries already running finish on the snapshot they
        pinned, and on failure the collection is rolled back to its
        pre-call state.  After many additions the layout drifts from
        optimal; :meth:`tuning_advice` then recommends :meth:`compact`
        or a full rebuild.
        """
        return self._grow([document], verb="add")[0]

    def add_documents(self, documents: Iterable) -> List["MetaDocument"]:
        """Add a batch of documents in one atomic layout swap.

        Far cheaper than N ``add_document`` calls: the layout tables are
        copied once, one evaluator is built, and the shared cache is
        invalidated once.  Links between batch members resolve during
        registration (so they are classified against the whole batch
        before any residual-link wiring).  All-or-nothing: a failure on
        any member rolls the whole batch back.
        """
        documents = list(documents)
        if not documents:
            return []
        return self._grow(documents, verb="add_batch")

    def _grow(self, documents: List, verb: str) -> List["MetaDocument"]:
        """Shared implementation of ``add_document``/``add_documents``.

        Stage-then-commit: every step that can fail (registration, link
        resolution, strategy selection, index builds) runs before the
        first observable index mutation; a failure unwinds the collection
        edits and re-raises.  The commit is a copy-on-write rebuild of
        the layout tables followed by one atomic publish.
        """
        self._require_builder()
        from repro.collection.builder import register_document
        from repro.core.ib import MetaDocumentReport
        from repro.core.iss import IndexingStrategySelector
        from repro.indexes.registry import build_index

        import time as _time

        with self._mutation_lock:
            layout = self._layout
            collection = self.collection
            saved_unresolved = list(collection.unresolved_links)
            registered: List[str] = []
            new_link_edges: List[Tuple[NodeId, NodeId]] = []
            new_metas: List[MetaDocument] = []
            new_reports: List[MetaDocumentReport] = []
            # Internal edges: each document's tree edges always; its
            # intra-document link edges only when the configuration allows
            # a graph index (PPO-only must leave them residual).
            allow_graph = any(
                s != "ppo" for s in self.config.allowed_strategies
            )
            internal_all: Set[Tuple[NodeId, NodeId]] = set()
            meta_of = dict(layout.meta_of)
            next_id = layout.next_meta_id
            try:
                # Stage 1: register every document.  Later members'
                # registration retries the accumulated dangling links, so
                # links between batch members resolve here, before any
                # residual classification.
                for document in documents:
                    edges = register_document(collection, document)
                    registered.append(document.name)
                    new_link_edges.extend(edges)

                # Stage 2: per document — internal edges, ISS choice,
                # index build.  Nothing published yet.
                for document in documents:
                    started = _time.perf_counter()
                    nodes = set(collection.document_nodes(document.name))
                    internal = []
                    for u in sorted(nodes):
                        for v in sorted(collection.graph.successors(u)):
                            if v not in nodes:
                                continue
                            if (
                                collection.is_link_edge(u, v)
                                and not allow_graph
                            ):
                                continue
                            internal.append((u, v))
                    internal_all.update(internal)

                    graph = Digraph()
                    for node in nodes:
                        graph.add_node(node)
                    for u, v in internal:
                        graph.add_edge(u, v)
                    choice = IndexingStrategySelector(self.config).choose(
                        graph
                    )
                    tags = {
                        node: collection.tag(node) for node in nodes
                    }
                    backend = self._backend_factory()
                    if self.obs.enabled:
                        backend.attach_observer(
                            self.obs.storage_instruments(backend)
                        )
                    index = self._pack_index_if_configured(
                        build_index(choice.strategy, graph, tags, backend)
                    )
                    meta = MetaDocument(
                        meta_id=next_id + len(new_metas),
                        nodes=frozenset(nodes),
                        index=index,
                        strategy=choice.strategy,
                    )
                    new_metas.append(meta)
                    for node in nodes:
                        meta_of[node] = meta.meta_id
                    new_reports.append(
                        MetaDocumentReport(
                            meta_id=meta.meta_id,
                            node_count=len(nodes),
                            internal_edge_count=len(internal),
                            strategy=choice.strategy,
                            rationale=choice.rationale
                            + " (added incrementally)",
                            index_bytes=index.size_bytes(),
                            build_seconds=_time.perf_counter() - started,
                        )
                    )
            except BaseException:
                # Nothing above touched the published layout; undoing the
                # collection mutations restores the pre-call query-visible
                # state exactly.  (Node ids consumed by the failed
                # registration stay tombstoned — ids are never reused.)
                for name in reversed(registered):
                    collection._unregister_document(name)
                collection.unresolved_links[:] = saved_unresolved
                raise

            # Commit: copy-on-write the layout tables, wire residual
            # links into clones, publish once.
            slots: List[Optional[MetaDocument]] = (
                list(layout.slots) + new_metas
            )
            clones: Dict[int, MetaDocument] = {}

            def writable(meta_id: int) -> MetaDocument:
                # new metas are private until publish; published metas are
                # cloned before their link maps are touched
                if meta_id >= next_id or meta_id in clones:
                    return slots[meta_id]
                clone = slots[meta_id].copy_links()
                clones[meta_id] = clone
                slots[meta_id] = clone
                return clone

            links_table = self._builder.framework_backend.table(
                "flix_residual_links"
            )
            rows: List[Tuple[int, int, int, int]] = []
            touched: Set[int] = {meta.meta_id for meta in new_metas}
            for u, v in new_link_edges:
                if (u, v) in internal_all:
                    continue
                writable(meta_of[u]).outgoing_links.setdefault(
                    u, []
                ).append(v)
                writable(meta_of[v]).incoming_links.setdefault(
                    v, []
                ).append(u)
                rows.append((u, v, meta_of[u], meta_of[v]))
                touched.add(meta_of[u])
                touched.add(meta_of[v])
            if rows:
                links_table.insert_many(rows)
            for meta_id in sorted(touched):
                slots[meta_id].finalize_links()

            self.report.meta_documents.extend(new_reports)
            self.report.residual_link_count += len(rows)
            self.report.residual_link_bytes = links_table.size_bytes()

            new_layout = IndexLayout(
                slots=tuple(slots),
                meta_of=meta_of,
                pee=None,
                generation=layout.generation + 1,
                tombstones=layout.tombstones,
                incremental_meta_ids=layout.incremental_meta_ids
                | {meta.meta_id for meta in new_metas},
            )
            new_layout = new_layout.with_pee(
                self._build_evaluator(
                    new_layout.slots, meta_of, new_layout.generation
                )
            )
            if self.obs.enabled:
                builds = self.obs.registry.counter(
                    "flix_index_builds_total",
                    "Per-meta-document index builds, by chosen strategy.",
                )
                for meta in new_metas:
                    builds.inc(strategy=meta.strategy)
            if self._wal is not None:
                from repro.wal.recovery import document_to_payload

                self._wal_append(
                    verb,
                    {
                        "documents": [
                            document_to_payload(document)
                            for document in documents
                        ]
                    },
                    new_layout.generation,
                )
            self._publish_layout(new_layout, verb=verb)
            return new_metas

    def remove_document(self, name: str) -> Set[NodeId]:
        """Remove one document without rebuilding the whole index.

        The document's nodes are tombstoned (ids never reused); meta
        documents that consisted only of them are tombstoned too, while
        meta documents that also cover other documents are re-indexed
        over their remaining nodes (preserving the original MDB cuts).
        Residual links with an endpoint in the removed document are
        dropped, and links of *other* documents that resolved into it
        dangle again — a later :meth:`add_document` of a replacement can
        re-resolve them.  Published as one atomic layout swap; returns
        the removed node ids.
        """
        self._require_builder()
        from repro.collection.builder import unregister_document

        with self._mutation_lock:
            layout = self._layout
            removed, _redangled = unregister_document(self.collection, name)

            slots: List[Optional[MetaDocument]] = list(layout.slots)
            tombstones = set(layout.tombstones)
            meta_of = {
                node: meta_id
                for node, meta_id in layout.meta_of.items()
                if node not in removed
            }
            affected = sorted(
                {layout.meta_of[node] for node in removed}
            )
            for meta_id in affected:
                meta = slots[meta_id]
                remaining = meta.nodes - removed
                if not remaining:
                    slots[meta_id] = None
                    tombstones.add(meta_id)
                else:
                    slots[meta_id] = self._rebuild_meta(meta, remaining)

            # Prune residual-link map entries whose far endpoint vanished
            # (O(total residual links), clone-on-write per meta).
            for meta_id, meta in enumerate(slots):
                if meta is None:
                    continue
                if not (
                    any(
                        node in removed or any(t in removed for t in targets)
                        for node, targets in meta.outgoing_links.items()
                    )
                    or any(
                        node in removed or any(s in removed for s in sources)
                        for node, sources in meta.incoming_links.items()
                    )
                ):
                    continue
                if meta_id in affected:
                    clone = meta  # already a private rebuild
                else:
                    clone = meta.copy_links()
                    slots[meta_id] = clone
                clone.outgoing_links = {
                    node: kept
                    for node, targets in clone.outgoing_links.items()
                    if node not in removed
                    for kept in [
                        [t for t in targets if t not in removed]
                    ]
                    if kept
                }
                clone.incoming_links = {
                    node: kept
                    for node, sources in clone.incoming_links.items()
                    if node not in removed
                    for kept in [
                        [s for s in sources if s not in removed]
                    ]
                    if kept
                }
                clone.finalize_links()

            self._rewrite_links_table(slots, meta_of)
            self._refresh_report(slots)

            new_layout = IndexLayout(
                slots=tuple(slots),
                meta_of=meta_of,
                pee=None,
                generation=layout.generation + 1,
                tombstones=frozenset(tombstones),
                incremental_meta_ids=layout.incremental_meta_ids
                - tombstones,
            )
            new_layout = new_layout.with_pee(
                self._build_evaluator(
                    new_layout.slots, meta_of, new_layout.generation
                )
            )
            self._wal_append("remove", {"name": name}, new_layout.generation)
            self._publish_layout(new_layout, verb="remove")
            return removed

    def update_document(self, document) -> "MetaDocument":
        """Replace a document in place: remove the old version, add the
        new one, re-resolving links in both directions.

        Two atomic publishes (remove, then add) under one mutation lock:
        a concurrent query sees either the old document or the new one,
        never a half-updated layout — but the intermediate removed state
        *is* observable between the two swaps.  A write-ahead log
        records the same two halves (``remove`` then ``add``), so crash
        recovery mid-update lands on exactly one of the two published
        states (docs/DURABILITY.md).
        """
        with self._mutation_lock:
            self.remove_document(document.name)
            return self.add_document(document)

    def _rebuild_meta(
        self, meta: MetaDocument, remaining: FrozenSet[NodeId]
    ) -> MetaDocument:
        """Re-index a meta document over a node subset (same meta id).

        Preserves the original MDB cut: internal edges are the surviving
        intra-subset edges that were *not* residual in the old meta
        document (an intra-meta residual link must stay residual — under
        PPO it was cut to keep the tree shape).  Residual-link maps carry
        over for surviving nodes; the global prune in
        :meth:`remove_document` then drops entries whose far endpoint was
        removed.
        """
        from repro.core.iss import IndexingStrategySelector
        from repro.indexes.registry import build_index

        collection = self.collection
        residual_pairs = {
            (source, target)
            for source, targets in meta.outgoing_links.items()
            for target in targets
        }
        graph = Digraph()
        for node in remaining:
            graph.add_node(node)
        for u in sorted(remaining):
            for v in sorted(collection.graph.successors(u)):
                if v in remaining and (u, v) not in residual_pairs:
                    graph.add_edge(u, v)
        choice = IndexingStrategySelector(self.config).choose(graph)
        tags = {node: collection.tag(node) for node in remaining}
        backend = self._backend_factory()
        if self.obs.enabled:
            backend.attach_observer(self.obs.storage_instruments(backend))
        index = self._pack_index_if_configured(
            build_index(choice.strategy, graph, tags, backend)
        )
        rebuilt = MetaDocument(
            meta_id=meta.meta_id,
            nodes=frozenset(remaining),
            index=index,
            strategy=choice.strategy,
            outgoing_links={
                source: list(targets)
                for source, targets in meta.outgoing_links.items()
                if source in remaining
            },
            incoming_links={
                target: list(sources)
                for target, sources in meta.incoming_links.items()
                if target in remaining
            },
        )
        if self.obs.enabled:
            self.obs.registry.counter(
                "flix_index_builds_total",
                "Per-meta-document index builds, by chosen strategy.",
            ).inc(strategy=choice.strategy)
        return rebuilt

    def compact(
        self, meta_ids: Optional[Sequence[int]] = None
    ) -> Optional["MetaDocument"]:
        """Merge drifted incremental meta documents into one (section 7).

        Every ``add_document`` creates a singleton meta document; after
        many additions queries cross metas through residual links far
        more than a fresh build would.  Compaction merges the given meta
        ids (default: all live incrementally-added metas, per
        ``layout.compaction_candidates()``) into a single re-selected,
        re-indexed meta document and tombstones the originals — one
        atomic swap, no query downtime, no full rebuild.  Residual links
        that become internal to the merged meta are absorbed into its
        index (strategy permitting).  Returns the new meta document, or
        ``None`` when there are fewer than two candidates.
        """
        self._require_builder()
        from repro.core.ib import MetaDocumentReport
        from repro.core.iss import IndexingStrategySelector
        from repro.indexes.registry import build_index

        import time as _time

        with self._mutation_lock:
            layout = self._layout
            if meta_ids is None:
                candidates = list(layout.compaction_candidates())
            else:
                candidates = sorted(set(meta_ids))
                for meta_id in candidates:
                    layout.meta(meta_id)  # raises on tombstoned/unknown
            if len(candidates) < 2:
                return None

            trace = self.obs.tracer.trace(
                "mdb.compact",
                candidates=len(candidates),
                generation=layout.generation,
            )
            started = _time.perf_counter()
            collection = self.collection
            candidate_set = set(candidates)
            merged_nodes: Set[NodeId] = set()
            for meta_id in candidates:
                merged_nodes |= layout.slots[meta_id].nodes

            with trace.span("select"):
                allow_graph = any(
                    s != "ppo" for s in self.config.allowed_strategies
                )
                internal = []
                for u in sorted(merged_nodes):
                    for v in sorted(collection.graph.successors(u)):
                        if v not in merged_nodes:
                            continue
                        if (
                            collection.is_link_edge(u, v)
                            and not allow_graph
                        ):
                            continue
                        internal.append((u, v))
                internal_set = set(internal)
                graph = Digraph()
                for node in merged_nodes:
                    graph.add_node(node)
                for u, v in internal:
                    graph.add_edge(u, v)
                choice = IndexingStrategySelector(self.config).choose(graph)

            with trace.span("index", strategy=choice.strategy):
                tags = {
                    node: collection.tag(node) for node in merged_nodes
                }
                backend = self._backend_factory()
                if self.obs.enabled:
                    backend.attach_observer(
                        self.obs.storage_instruments(backend)
                    )
                index = self._pack_index_if_configured(
                    build_index(choice.strategy, graph, tags, backend)
                )

            new_id = layout.next_meta_id
            # Carry over the merged metas' residual links, minus pairs the
            # merged index absorbed as internal edges.
            outgoing: Dict[NodeId, List[NodeId]] = {}
            incoming: Dict[NodeId, List[NodeId]] = {}
            for meta_id in candidates:
                old = layout.slots[meta_id]
                for source, targets in old.outgoing_links.items():
                    kept = [
                        t for t in targets if (source, t) not in internal_set
                    ]
                    if kept:
                        outgoing.setdefault(source, []).extend(kept)
                for target, sources in old.incoming_links.items():
                    kept = [
                        s for s in sources if (s, target) not in internal_set
                    ]
                    if kept:
                        incoming.setdefault(target, []).extend(kept)
            merged = MetaDocument(
                meta_id=new_id,
                nodes=frozenset(merged_nodes),
                index=index,
                strategy=choice.strategy,
                outgoing_links=outgoing,
                incoming_links=incoming,
            )
            merged.finalize_links()

            slots: List[Optional[MetaDocument]] = list(layout.slots)
            tombstones = set(layout.tombstones)
            for meta_id in candidates:
                slots[meta_id] = None
                tombstones.add(meta_id)
            slots.append(merged)
            meta_of = dict(layout.meta_of)
            for node in merged_nodes:
                meta_of[node] = new_id

            self._rewrite_links_table(slots, meta_of)
            self.report.meta_documents.append(
                MetaDocumentReport(
                    meta_id=new_id,
                    node_count=len(merged_nodes),
                    internal_edge_count=len(internal),
                    strategy=choice.strategy,
                    rationale=choice.rationale
                    + " (compacted from metas "
                    + ", ".join(str(m) for m in candidates)
                    + ")",
                    index_bytes=index.size_bytes(),
                    build_seconds=_time.perf_counter() - started,
                )
            )
            self._refresh_report(slots)

            new_layout = IndexLayout(
                slots=tuple(slots),
                meta_of=meta_of,
                pee=None,
                generation=layout.generation + 1,
                tombstones=frozenset(tombstones),
                # the merged meta is a deliberate consolidation, not
                # drift: it is not a future compaction candidate
                incremental_meta_ids=layout.incremental_meta_ids
                - candidate_set,
            )
            new_layout = new_layout.with_pee(
                self._build_evaluator(
                    new_layout.slots, meta_of, new_layout.generation
                )
            )
            if self.obs.enabled:
                self.obs.registry.counter(
                    "flix_compactions_total",
                    "Online compactions of incremental meta documents.",
                ).inc(strategy=choice.strategy)
                self.obs.registry.counter(
                    "flix_index_builds_total",
                    "Per-meta-document index builds, by chosen strategy.",
                ).inc(strategy=choice.strategy)
            self._wal_append(
                "compact", {"meta_ids": candidates}, new_layout.generation
            )
            self._publish_layout(new_layout, verb="compact")
            trace.finish()
            return merged

    def _rewrite_links_table(
        self,
        slots: Sequence[Optional[MetaDocument]],
        meta_of: Dict[NodeId, int],
    ) -> None:
        """Rewrite ``flix_residual_links`` from the live metas' maps.

        Removal and compaction change rows' meta ids and drop rows, which
        append-only tables cannot express; a sorted full rewrite keeps
        the persisted table deterministic for a given mutation sequence.
        """
        from repro.core.ib import _LINKS_SCHEMA

        backend = self._builder.framework_backend
        backend.drop_table("flix_residual_links")
        table = backend.create_table(_LINKS_SCHEMA)
        rows = sorted(
            (source, target, meta_of[source], meta_of[target])
            for meta in slots
            if meta is not None
            for source, targets in meta.outgoing_links.items()
            for target in targets
        )
        if rows:
            table.insert_many(rows)

    def _refresh_report(
        self, slots: Sequence[Optional[MetaDocument]]
    ) -> None:
        """Re-derive the build report's residual-link totals after a
        mutation that dropped or rewired links (remove/compact)."""
        links_table = self._builder.framework_backend.table(
            "flix_residual_links"
        )
        self.report.residual_link_count = sum(
            meta.residual_out_degree
            for meta in slots
            if meta is not None
        )
        self.report.residual_link_bytes = links_table.size_bytes()

    def save(self, directory, checkpoint: Optional[bool] = None) -> "Path":
        """Persist the built index to ``directory`` (restart without
        rebuild); see :mod:`repro.core.persistence` for the layout.

        With a write-ahead log attached, saving into the log's own
        deployment directory is a *checkpoint*: the log is truncated
        back to a ``begin`` marker at the saved generation, since
        everything it held is now in that snapshot (docs/DURABILITY.md).
        Saving anywhere else — a backup or secondary copy — leaves the
        log alone: the deployment directory's snapshot still needs
        those records to recover.  ``checkpoint`` overrides the
        directory comparison (``True`` forces truncation, ``False``
        suppresses it).
        """
        from pathlib import Path as _Path

        from repro.core.persistence import save_flix

        with self._mutation_lock:
            manifest_path = save_flix(self, directory)
            if self._wal is not None:
                if checkpoint is None:
                    try:
                        checkpoint = (
                            self._wal.path.parent.resolve()
                            == _Path(directory).resolve()
                        )
                    except OSError:
                        checkpoint = False
                if checkpoint:
                    self._wal.truncate(self.layout_generation)
        return manifest_path

    @classmethod
    def load(
        cls, collection: XmlCollection, directory, verify: bool = True
    ) -> "Flix":
        """Reconstruct a saved index against the unchanged collection.

        ``verify`` checks the manifest's per-file checksums first and
        raises :class:`repro.core.persistence.IntegrityError` on damage
        (see ``repro repair``)."""
        from repro.core.persistence import load_flix

        return load_flix(collection, directory, verify=verify)

    @classmethod
    def repair(cls, collection: XmlCollection, directory) -> List[str]:
        """Rebuild the damaged files of a saved index in place; returns
        the repaired file names (see :func:`repro.core.persistence
        .repair_flix`)."""
        from repro.core.persistence import repair_flix

        return repair_flix(collection, directory)

    def self_check(self, samples: int = 20, seed: int = 0) -> Dict[str, int]:
        """Verify the index against direct graph traversal on a sample.

        For ``samples`` randomly chosen elements, the streamed descendant
        set must equal a BFS over the element graph, every reported
        distance must be an upper bound of the BFS distance, and the stream
        must be duplicate-free.  Returns counters on success; raises
        ``AssertionError`` naming the first discrepancy otherwise.  Useful
        after incremental growth or custom strategy registration.
        """
        import random

        from repro.graph.traversal import bfs_distances

        node_ids = list(self.collection.node_ids())
        if not node_ids:
            return {"samples": 0, "results_checked": 0}
        rng = random.Random(seed)
        checked = 0
        results_checked = 0
        for _ in range(samples):
            start = rng.choice(node_ids)
            truth = bfs_distances(self.collection.graph, start)
            results = list(self.pee.find_descendants(start))
            got = {r.node for r in results}
            expected = set(truth) - {start}
            if got != expected:
                missing = sorted(expected - got)[:3]
                spurious = sorted(got - expected)[:3]
                raise AssertionError(
                    f"self_check failed at node {start}: "
                    f"missing={missing} spurious={spurious}"
                )
            if len(results) != len(got):
                raise AssertionError(
                    f"self_check failed at node {start}: duplicate results"
                )
            for result in results:
                if result.distance < truth[result.node]:
                    raise AssertionError(
                        f"self_check failed at node {start}: distance "
                        f"{result.distance} undershoots true "
                        f"{truth[result.node]} for {result.node}"
                    )
            checked += 1
            results_checked += len(results)
        return {"samples": checked, "results_checked": results_checked}

    def describe(self) -> str:
        """Multi-line human-readable build summary."""
        lines = [self.report.summary()]
        for meta in self.report.meta_documents[:20]:
            lines.append(
                f"  meta {meta.meta_id}: {meta.node_count} nodes, "
                f"{meta.strategy} ({meta.rationale}), {meta.index_bytes} bytes"
            )
        if len(self.report.meta_documents) > 20:
            lines.append(
                f"  ... and {len(self.report.meta_documents) - 20} more meta documents"
            )
        return "\n".join(lines)
