"""The Indexing Strategy Selector (ISS), sections 3.2 and 4.1.

Chooses, per meta document, the best strategy among those the configuration
allows, "based on structure, size and other properties of the meta
documents".  The decision procedure encodes the paper's rules of thumb
(section 2.2):

* no links / tree-shaped data -> PPO;
* long paths and wildcard-heavy loads -> HOPI, *if* its estimated size fits
  the budget (the estimate uses Cohen's randomized closure-size estimator,
  exactly the method the paper cites as the intended size predictor);
* otherwise -> APEX (or whatever summary index is allowed).

Workload-driven retuning (``docs/PLANNING.md``): a selector constructed
with an observed :class:`~repro.core.selftune.WorkloadProfile` biases its
*effective* configuration toward the measured load before applying the
rules above — a descendants-heavy window flips ``expect_long_paths`` and
widens the HOPI budget, exactly what ``Flix.build(workload=...)`` does
for the whole build.  Without an explicit workload the selector is a
pure function of the configuration and graph, which is what keeps
parallel builds and incremental growth deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.config import FlixConfig
from repro.graph.digraph import Digraph
from repro.graph.estimation import estimate_closure_size
from repro.graph.treecheck import is_forest
from repro.indexes.base import IndexNotApplicableError


@dataclass(frozen=True)
class StrategyChoice:
    """The selected strategy plus the reasoning, for build reports."""

    strategy: str
    rationale: str
    estimated_closure_pairs: float = 0.0


class IndexingStrategySelector:
    """Rule/cost based per-meta-document strategy selection."""

    #: graphs below this size skip the randomized estimator: the exact
    #: closure bound n*n is cheap to reason about and the estimator's
    #: overhead isn't worth it.
    SMALL_GRAPH_NODES = 64

    def __init__(self, config: FlixConfig, workload=None) -> None:
        # ``workload`` (a repro.core.selftune.WorkloadProfile) biases the
        # effective configuration only when passed explicitly — incremental
        # growth and repair construct bare selectors and must stay
        # deterministic for a given config (fingerprint stability)
        if workload is not None:
            config = workload.bias(config)
        self._config = config

    def choose(self, graph: Digraph) -> StrategyChoice:
        """Select a strategy for the meta document with element graph ``graph``."""
        allowed = self._config.allowed_strategies
        forest = is_forest(graph)
        if forest and "ppo" in allowed:
            return StrategyChoice("ppo", "element graph is a forest of trees")
        non_ppo = tuple(name for name in allowed if name != "ppo")
        if not non_ppo:
            raise IndexNotApplicableError(
                "configuration only allows PPO but the meta document's "
                "element graph is not a forest"
            )
        if "hopi" in non_ppo:
            pairs = self._estimated_pairs(graph)
            per_node = pairs / max(1, graph.node_count)
            if per_node <= self._config.hopi_pairs_per_node_budget:
                reason = (
                    "graph has links and the expected load is descendants-"
                    "heavy" if self._config.expect_long_paths
                    else "graph has links"
                )
                if self._config.expect_long_paths or len(non_ppo) == 1:
                    return StrategyChoice(
                        "hopi",
                        f"{reason}; estimated closure of {pairs:.0f} pairs "
                        f"({per_node:.1f}/node) fits the budget",
                        pairs,
                    )
            elif len(non_ppo) == 1:
                return StrategyChoice(
                    "hopi",
                    f"estimated closure of {pairs:.0f} pairs exceeds the "
                    "budget but the configuration allows no alternative",
                    pairs,
                )
            else:
                return StrategyChoice(
                    self._first_summary(non_ppo),
                    f"estimated closure of {pairs:.0f} pairs "
                    f"({per_node:.1f}/node) exceeds the HOPI budget",
                    pairs,
                )
        return StrategyChoice(
            self._first_summary(non_ppo),
            "short-path / summary strategy preferred by the configuration",
        )

    def _estimated_pairs(self, graph: Digraph) -> float:
        if graph.node_count <= self.SMALL_GRAPH_NODES:
            # For tiny graphs the worst case is already affordable.
            return float(graph.node_count * graph.node_count) / 2.0
        return estimate_closure_size(graph, rounds=8)

    @staticmethod
    def _first_summary(candidates) -> str:
        for name in candidates:
            if name != "hopi":
                return name
        return candidates[0]
