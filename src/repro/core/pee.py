"""The Path Expression Evaluator (PEE), section 5 and Figure 4.

The evaluator answers ``a//b``-style queries by interleaving per-meta-
document index lookups with run-time traversal of residual links:

1. a priority queue ``IE`` of *entry elements*, keyed by the minimal
   distance any of their descendants can have to the start node;
2. for the popped entry ``e``, the local index returns all matches inside
   ``e``'s meta document (one block, ascending local distance) and the set
   ``L(e)`` of link-carrying descendants, whose link targets are enqueued at
   priority ``dist(a, e) + dist(e, l) + 1``;
3. duplicate elimination (section 5.1) keeps, per meta document, the entry
   points visited so far: a new entry covered by an earlier one is dropped
   outright, and individual results are suppressed when they are descendants
   of an earlier entry point — all checked through the local index, with no
   per-result hash of the output.

Results therefore stream in *approximately* ascending distance: within one
meta document they are exact, across meta documents the block-wise delivery
can invert neighbours (the error-rate experiment of section 6 quantifies
this at 8-13%).

**Statistics and ``last_stats`` snapshot semantics.**  Every query owns a
private :class:`QueryStats` instance that travels on its
:class:`QueryStream` — concurrent queries never share counters.  When a
query *completes* (its generator is exhausted or closed), the evaluator
publishes ``stats.snapshot()`` — a frozen copy — to ``self.last_stats``.
Reading ``last_stats`` therefore always observes a finished query's final
numbers, never a half-updated live counter; while a stream is still being
consumed, read its own ``.stats`` instead.  Interleaved streams each keep
their own counters and overwrite ``last_stats`` in completion order.

**Reentrancy.**  One evaluator instance may run any number of queries
concurrently from different threads (the serving layer's worker pool does
exactly that).  All search state — the priority queue, the per-meta entry
lists, the exact-order buffer, the deadline — lives in locals of the
per-query generator; the only mutable evaluator-level structures are the
sticky fallback map and the lazily-bound metric instruments, both guarded
by a lock, plus the ``last_stats`` snapshot slot, which is written by a
single atomic reference assignment.  Per-request
:class:`QueryBudget` overrides are passed as call arguments, never stored
on the evaluator.

**Observability.**  When the evaluator is built with an enabled
:class:`repro.obs.Observability` bundle, each query additionally emits a
``pee.query`` trace (with ``pee.probe`` spans per index probe and
``pee.link_hop`` spans per residual-link expansion) and publishes its
counters to the metrics registry on completion (``flix_queries_total``,
``flix_pee_*_total``, ``flix_query_seconds``).  The :class:`QueryStats`
numbers are the source of truth; the registry is a cumulative view over
them.  With observability disabled (the default for a bare evaluator)
every instrumentation branch is skipped.
"""

from __future__ import annotations

import copy
import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.meta_document import MetaDocument
from repro.indexes.base import NodeId
from repro.obs import OBS_OFF, Observability
from repro.storage.errors import PermanentStorageError, StorageError

#: completeness levels, worst-last (merging keeps the worst)
COMPLETENESS_LEVELS = ("complete", "truncated", "degraded")
_COMPLETENESS_RANK = {level: rank for rank, level in enumerate(COMPLETENESS_LEVELS)}


@dataclass(frozen=True)
class QueryResult:
    """One streamed result: the element, its (approximate) distance to the
    query start, and the meta document it was found in."""

    node: NodeId
    distance: int
    meta_id: int


@dataclass(frozen=True)
class QueryBudget:
    """Per-query work limits (graceful degradation, ``docs/RESILIENCE.md``).

    A query that hits any limit stops expanding and finishes with whatever
    it found so far, flagged ``truncated`` on its :class:`QueryStats` —
    bounded work on runaway cross-meta traversals (cyclic residual-link
    graphs can otherwise enqueue forever) instead of an unbounded search.
    """

    #: wall-clock limit from the first consumption of the stream
    deadline_seconds: Optional[float] = None
    #: residual-link traversals allowed before the search stops
    max_link_hops: Optional[int] = None
    #: priority-queue pops allowed before the search stops
    max_queue_pops: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("deadline_seconds", "max_link_hops", "max_queue_pops"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set")

    @property
    def is_noop(self) -> bool:
        return (
            self.deadline_seconds is None
            and self.max_link_hops is None
            and self.max_queue_pops is None
        )

    @classmethod
    def from_resilience(cls, resilience) -> Optional["QueryBudget"]:
        """The budget a :class:`repro.core.config.ResilienceConfig` implies
        (``None`` when no limit is configured)."""
        if resilience is None:
            return None
        budget = cls(
            deadline_seconds=resilience.query_deadline_seconds,
            max_link_hops=resilience.max_link_hops,
            max_queue_pops=resilience.max_queue_pops,
        )
        return None if budget.is_noop else budget


@dataclass
class QueryStats:
    """Run-time counters for one query (feeds the self-tuning monitor).

    The counters are plain ints mutated in the evaluator's inner loop (no
    locks, no registry calls on the hot path); when observability is on
    they are published to the metrics registry once, on query completion.
    """

    #: meta documents whose local index was actually probed (entries that
    #: survived duplicate elimination)
    meta_document_visits: int = 0
    #: residual links followed across meta-document boundaries
    link_traversals: int = 0
    #: popped entry elements dropped because an earlier entry of the same
    #: meta document already covered them (section 5.1)
    entries_dropped: int = 0
    #: results yielded to the client
    results_returned: int = 0
    #: individual matches suppressed as descendants of an earlier entry
    #: point (per-result duplicate elimination)
    results_suppressed: int = 0
    #: ``index.reachable`` calls made by the coverage check — the price
    #: paid for hash-free duplicate elimination
    covered_probes: int = 0
    #: priority-queue pops, covered or not (total queue traffic)
    queue_pops: int = 0
    #: enqueues the probe planner's frontier pruned as provably covered
    #: (never counted in ``link_traversals``; see repro.core.planner)
    planner_pruned_pushes: int = 0
    #: pops the frontier pruned without index probes (these still count
    #: in ``queue_pops`` and ``entries_dropped`` — the fixed discipline
    #: would have popped and dropped them too, just more expensively)
    planner_pruned_pops: int = 0
    #: how trustworthy the result set is: ``complete`` (everything the
    #: index knows), ``truncated`` (a query budget stopped the search
    #: early), or ``degraded`` (at least one meta document was answered by
    #: the BFS fallback instead of its real index)
    completeness: str = "complete"
    #: BFS fallback activations this query triggered (later queries reuse
    #: a sticky fallback without re-counting; they are still ``degraded``)
    fallback_meta_documents: int = 0

    def snapshot(self) -> "QueryStats":
        """An immutable-by-convention copy (what ``last_stats`` publishes).

        ``copy.copy`` rather than ``dataclasses.replace``: the fields are
        all plain ints and a snapshot is taken on every query completion.
        """
        return copy.copy(self)

    @property
    def is_complete(self) -> bool:
        return self.completeness == "complete"

    def mark_truncated(self) -> None:
        self._mark("truncated")

    def mark_degraded(self) -> None:
        self._mark("degraded")

    def _mark(self, level: str) -> None:
        if _COMPLETENESS_RANK[level] > _COMPLETENESS_RANK[self.completeness]:
            self.completeness = level

    def absorb_expansion(self, delta: "QueryStats") -> None:
        """Fold one remote expansion's counter deltas into this query.

        The sharded coordinator owns the search loop (queue pops, link
        traversals, visits, results); a shard worker running one
        ``expand_entry``/``connection_probe`` on its behalf only touches
        the expansion-local counters — those are shipped back as a delta
        and folded in here, keeping the distributed query's stats
        identical to serial evaluation.
        """
        self.covered_probes += delta.covered_probes
        self.results_suppressed += delta.results_suppressed
        self.fallback_meta_documents += delta.fallback_meta_documents
        self._mark(delta.completeness)

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another query's counters (multi-step evaluations)."""
        self.meta_document_visits += other.meta_document_visits
        self.link_traversals += other.link_traversals
        self.entries_dropped += other.entries_dropped
        self.results_returned += other.results_returned
        self.results_suppressed += other.results_suppressed
        self.covered_probes += other.covered_probes
        self.queue_pops += other.queue_pops
        self.planner_pruned_pushes += other.planner_pruned_pushes
        self.planner_pruned_pops += other.planner_pruned_pops
        self.fallback_meta_documents += other.fallback_meta_documents
        self._mark(other.completeness)  # keep the worst completeness


class QueryStream:
    """An in-flight query: the result iterator plus its private stats.

    Each query owns its :class:`QueryStats` instance, so concurrent queries
    against one evaluator never share mutable counters; read ``.stats`` at
    (or after) any point of consumption for this query's numbers.

    ``close()`` is idempotent and guarantees the query's stats are
    finalized (published to ``last_stats`` / the metrics registry) exactly
    once — even when the underlying generator was abandoned mid-iteration
    or never started at all, in which case the generator's own ``finally``
    block would not run.
    """

    __slots__ = ("_iterator", "stats", "_finalize", "_closed")

    def __init__(
        self,
        iterator: Iterator[QueryResult],
        stats: QueryStats,
        finalize: Optional[Callable[[], None]] = None,
    ) -> None:
        self._iterator = iterator
        self.stats = stats
        self._finalize = finalize
        self._closed = False

    def __iter__(self) -> "QueryStream":
        return self

    def __next__(self) -> QueryResult:
        return next(self._iterator)

    @property
    def completeness(self) -> str:
        """Shortcut for ``stats.completeness`` (see :class:`QueryStats`)."""
        return self.stats.completeness

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._iterator.close()
        finally:
            # a never-started generator skips its finally block on close();
            # the finalizer below is idempotent, so completed streams whose
            # generator already published are unaffected
            if self._finalize is not None:
                self._finalize()

    def __enter__(self) -> "QueryStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PathExpressionEvaluator:
    """Figure 4's algorithm over a set of built meta documents."""

    def __init__(
        self,
        meta_documents: Sequence[MetaDocument],
        meta_of: Dict[NodeId, int],
        obs: Optional[Observability] = None,
        budget: Optional[QueryBudget] = None,
        fallback: Optional["FallbackContext"] = None,
        generation: int = 0,
        planner: Optional["ProbePlanner"] = None,
    ) -> None:
        # ``meta_documents`` is positionally indexed by meta id; removed
        # or compacted ids appear as ``None`` slots (never dereferenced:
        # ``meta_of`` maps live nodes only)
        self._meta_documents = list(meta_documents)
        self._meta_of = dict(meta_of)
        #: generation of the layout snapshot this evaluator answers for
        #: (stamped into the ``pee.query`` trace; see docs/MAINTENANCE.md)
        self.generation = generation
        #: the observability bundle (metrics + tracing); disabled by default
        #: for a bare evaluator, supplied by ``Flix`` when configured on
        self._obs = obs if obs is not None else OBS_OFF
        #: per-query work limits (None = unlimited, the classic behaviour)
        self._budget = budget if budget is not None and not budget.is_noop else None
        #: where BFS fallback indexes come from when a meta document's real
        #: index is missing or failing (None = degradation disabled: such
        #: a meta document raises instead)
        self._fallback_ctx = fallback
        #: the cost-based probe planner (repro.core.planner); ``None``
        #: keeps the paper's fixed expansion discipline exactly
        self._planner = planner
        #: activated fallbacks, per meta id (sticky for this evaluator)
        self._fallbacks: Dict[int, object] = {}
        # per-query instruments, bound lazily on the first publish
        self._instruments: Optional[Dict[str, object]] = None
        # guards the two shared mutable structures above; the search loop
        # itself keeps all its state in per-query locals and never takes it
        self._state_lock = threading.Lock()
        #: snapshot of the most recently *completed* query's counters; the
        #: live per-query counters travel on the :class:`QueryStream`
        self.last_stats = QueryStats()

    @property
    def planner(self):
        """The attached :class:`repro.core.planner.ProbePlanner` (or
        ``None`` — the paper's fixed probe discipline)."""
        return self._planner

    # ------------------------------------------------------------------
    # descendants (a//b, a//*)
    # ------------------------------------------------------------------
    def find_descendants(
        self,
        start: NodeId,
        tag: Optional[str] = None,
        max_distance: Optional[int] = None,
        include_self: bool = False,
        exact_order: bool = False,
        budget: Optional[QueryBudget] = None,
    ) -> Iterator[QueryResult]:
        """Stream descendants of ``start`` with the given tag.

        ``tag=None`` is the wildcard.  ``max_distance`` is the client-side
        threshold of section 5.1: evaluation stops once the queue's head is
        beyond it.  ``include_self`` controls whether ``start`` itself may
        qualify (XPath's descendant-or-self vs. descendant).

        ``exact_order`` implements the first future-work item of section 7
        ("returning results exactly sorted instead of approximately"):
        results are buffered and released only once the evaluator's queue
        guarantees no later result can carry a smaller distance, so the
        stream is non-decreasing in the reported distance — at the price of
        the early-first-results advantage FliX otherwise has.
        """
        return self._search(
            seeds=[start],
            tag=tag,
            max_distance=max_distance,
            forward=True,
            skip_nodes=() if include_self else (start,),
            stats=QueryStats(),
            exact_order=exact_order,
            axis="descendants",
            budget=budget,
        )

    def find_ancestors(
        self,
        start: NodeId,
        tag: Optional[str] = None,
        max_distance: Optional[int] = None,
        include_self: bool = False,
        exact_order: bool = False,
        budget: Optional[QueryBudget] = None,
    ) -> Iterator[QueryResult]:
        """Stream ancestors of ``start`` (section 5.1: "a similar algorithm
        can be applied to find ancestors"); distances are path lengths from
        the ancestor down to ``start``."""
        return self._search(
            seeds=[start],
            tag=tag,
            max_distance=max_distance,
            forward=False,
            skip_nodes=() if include_self else (start,),
            stats=QueryStats(),
            exact_order=exact_order,
            axis="ancestors",
            budget=budget,
        )

    def evaluate_type_query(
        self,
        source_tag_nodes: Sequence[NodeId],
        tag: Optional[str],
        max_distance: Optional[int] = None,
        budget: Optional[QueryBudget] = None,
    ) -> Iterator[QueryResult]:
        """``A//B`` evaluation (section 5.2): seed the queue with every
        element of type ``A`` at priority 0 and run the same algorithm.

        Results are the distinct ``B`` elements reachable from *some* seed,
        each reported once with (approximately) its smallest seed distance.
        """
        return self._search(
            seeds=list(source_tag_nodes),
            tag=tag,
            max_distance=max_distance,
            forward=True,
            skip_nodes=(),
            stats=QueryStats(),
            axis="type",
            budget=budget,
        )

    # ------------------------------------------------------------------
    # the core loop
    # ------------------------------------------------------------------
    def _search(
        self,
        seeds: Sequence[NodeId],
        tag: Optional[str],
        max_distance: Optional[int],
        forward: bool,
        skip_nodes: Tuple[NodeId, ...],
        stats: QueryStats,
        exact_order: bool = False,
        axis: Optional[str] = None,
        budget: Optional[QueryBudget] = None,
    ) -> QueryStream:
        """Build the query stream; ``axis=None`` marks an internal
        sub-search whose caller owns publication (no trace, no registry
        writes — ``last_stats`` is still refreshed on completion).
        ``budget`` overrides the evaluator's configured default for this
        query only (per-request deadlines from the serving layer)."""
        budget = self._effective_budget(budget)
        planner = self._planner
        frontier = planner.frontier() if planner is not None else None
        rank_map = None
        if (
            planner is not None
            and planner.reorders
            and axis is not None
            and max_distance is None
            and budget is None
            and not exact_order
        ):
            # Cost-ordered expansion is only applied where it provably
            # preserves the result *set*: an unbudgeted, unbounded search
            # visits the whole reachable set in any order and §5.1's
            # coverage suppresses re-emissions, but reported distances
            # (first-reached upper bounds) may differ — so exact_order,
            # max_distance thresholds, budgets, and internal sub-searches
            # (axis=None, e.g. bidirectional tests) keep FIFO ties.
            rank_map = planner.rank_map(tag, forward)
        obs = self._obs
        trace = None
        started = 0.0
        if obs.enabled and axis is not None:
            started = time.perf_counter()
            trace = obs.tracer.trace(
                "pee.query",
                axis=axis,
                tag=tag if tag is not None else "*",
                seeds=len(seeds),
                generation=self.generation,
            )
        finalize = self._make_finalizer(stats, axis, trace, started)

        def run() -> Iterator[QueryResult]:
            try:
                yield from self._search_inner(
                    seeds, tag, max_distance, forward, skip_nodes, stats,
                    exact_order, trace, budget, frontier, rank_map,
                )
            finally:
                finalize()

        return QueryStream(run(), stats, finalize)

    def _effective_budget(
        self, budget: Optional[QueryBudget]
    ) -> Optional[QueryBudget]:
        """The per-request override when given, else the configured default."""
        if budget is not None:
            return None if budget.is_noop else budget
        return self._budget

    def _make_finalizer(
        self, stats: QueryStats, axis: Optional[str], trace, started: float
    ) -> Callable[[], None]:
        """One-shot publication of a finished query's stats.

        Shared by the search generator's ``finally`` block and
        :meth:`QueryStream.close`, whichever runs first; the ``done`` guard
        makes the pair publish exactly once, covering streams that are
        exhausted, closed mid-iteration, or closed before the first
        ``next()`` (a never-started generator skips its ``finally``).
        """
        done = [False]

        def finalize() -> None:
            if done[0]:
                return
            done[0] = True
            # Publish a frozen copy only: concurrent readers of last_stats
            # must never observe another query's counters mid-mutation.
            self.last_stats = stats.snapshot()
            if trace is not None:
                trace.root.meta["results"] = stats.results_returned
                trace.root.meta["completeness"] = stats.completeness
                trace.finish()
                self._publish(stats, axis, time.perf_counter() - started)

        return finalize

    def _search_inner(
        self,
        seeds: Sequence[NodeId],
        tag: Optional[str],
        max_distance: Optional[int],
        forward: bool,
        skip_nodes: Tuple[NodeId, ...],
        stats: QueryStats,
        exact_order: bool,
        trace=None,
        budget: Optional[QueryBudget] = None,
        frontier: Optional["ProbeFrontier"] = None,
        rank_map: Optional[Dict[int, int]] = None,
    ) -> Iterator[QueryResult]:
        # entry points already expanded, per meta document
        entries: Dict[int, List[NodeId]] = {}
        # Heap entries are (priority, counter, node) in FIFO mode and
        # (priority, rank, counter, node) under the planner's cost order
        # (rank breaks equal-priority ties toward high-yield metas); the
        # loop reads only item[0] and item[-1], so both shapes share it.
        heap: List[tuple] = []
        default_rank = len(rank_map) if rank_map is not None else 0
        for order, seed in enumerate(seeds):
            if seed not in self._meta_of:
                raise KeyError(f"node {seed} is not part of the collection")
            if frontier is not None and not frontier.admit_push(seed, 0):
                continue  # duplicate seed: the fixed loop drops it as covered
            if rank_map is None:
                heapq.heappush(heap, (0, order, seed))
            else:
                heapq.heappush(
                    heap,
                    (
                        0,
                        rank_map.get(self._meta_of[seed], default_rank),
                        order,
                        seed,
                    ),
                )
        counter = len(seeds)
        skip = set(skip_nodes)
        # exact-order buffering: (distance, tiebreak, result)
        buffer: List[Tuple[int, int, QueryResult]] = []
        deadline = None
        if budget is not None and budget.deadline_seconds is not None:
            deadline = time.monotonic() + budget.deadline_seconds

        while heap:
            if budget is not None and self._budget_exhausted(
                budget, deadline, stats
            ):
                stats.mark_truncated()
                break
            item = heapq.heappop(heap)
            priority, entry = item[0], item[-1]
            stats.queue_pops += 1
            if exact_order:
                # Every later result is found through an entry of priority
                # >= this one and local distances are non-negative, so the
                # buffered results below the current priority are final.
                while buffer and buffer[0][0] < priority:
                    yield heapq.heappop(buffer)[2]
            if max_distance is not None and priority > max_distance:
                break  # queue head beyond the client's threshold
            if frontier is not None and not frontier.admit_pop(entry):
                # an earlier pop of this node provably covers it (§5.1,
                # descendants-or-self) — skip the index probes the
                # coverage check would spend proving that
                stats.entries_dropped += 1
                stats.planner_pruned_pops += 1
                continue
            meta = self._meta_documents[self._meta_of[entry]]
            previous = entries.setdefault(meta.meta_id, [])
            outcome = self._expand_entry(
                meta, entry, priority, tag, forward, skip, max_distance,
                previous, stats, trace,
            )
            if outcome is None:
                stats.entries_dropped += 1
                continue
            stats.meta_document_visits += 1
            emit, link_pushes = outcome

            for result in emit:
                stats.results_returned += 1
                if exact_order:
                    counter += 1
                    heapq.heappush(buffer, (result.distance, counter, result))
                else:
                    yield result

            previous.append(entry)
            for local_distance, neighbour in link_pushes:
                push_priority = priority + local_distance + 1
                if frontier is not None and not frontier.admit_push(
                    neighbour, push_priority
                ):
                    stats.planner_pruned_pushes += 1
                    continue
                stats.link_traversals += 1
                counter += 1
                if rank_map is None:
                    heapq.heappush(heap, (push_priority, counter, neighbour))
                else:
                    heapq.heappush(
                        heap,
                        (
                            push_priority,
                            rank_map.get(
                                self._meta_of[neighbour], default_rank
                            ),
                            counter,
                            neighbour,
                        ),
                    )

        while buffer:
            yield heapq.heappop(buffer)[2]

    @staticmethod
    def _budget_exhausted(
        budget: QueryBudget, deadline: Optional[float], stats: QueryStats
    ) -> bool:
        if (
            budget.max_queue_pops is not None
            and stats.queue_pops >= budget.max_queue_pops
        ):
            return True
        if (
            budget.max_link_hops is not None
            and stats.link_traversals >= budget.max_link_hops
        ):
            return True
        return deadline is not None and time.monotonic() >= deadline

    # ------------------------------------------------------------------
    # per-entry expansion (all index access happens here)
    # ------------------------------------------------------------------
    def _expand_entry(
        self,
        meta: MetaDocument,
        entry: NodeId,
        priority: int,
        tag: Optional[str],
        forward: bool,
        skip,
        max_distance: Optional[int],
        previous: List[NodeId],
        stats: QueryStats,
        trace,
    ):
        """Expand one popped entry: coverage check, local probe, residual-
        link lookup.  Returns ``None`` when the entry is covered, else
        ``(results_to_emit, link_pushes)``.

        Every index access for the entry runs *before* any result is
        yielded and before any heap/``previous`` mutation, so when the real
        index raises a :class:`StorageError` mid-expansion the whole entry
        is retried once on the BFS fallback without duplicating emitted
        results or queue pushes (diagnostic counters such as
        ``covered_probes`` may over-count the aborted attempt).
        """
        index = self._local_index(meta, stats)
        try:
            return self._expand_with(
                index, meta, entry, priority, tag, forward, skip,
                max_distance, previous, stats, trace,
            )
        except StorageError as exc:
            index = self._activate_fallback(meta, stats, exc)
            return self._expand_with(
                index, meta, entry, priority, tag, forward, skip,
                max_distance, previous, stats, trace,
            )

    def _expand_with(
        self,
        index,
        meta: MetaDocument,
        entry: NodeId,
        priority: int,
        tag: Optional[str],
        forward: bool,
        skip,
        max_distance: Optional[int],
        previous: List[NodeId],
        stats: QueryStats,
        trace,
    ):
        if self._covered(index, previous, entry, forward, stats):
            return None
        matches = self._probe(index, entry, tag, forward, trace,
                              meta.meta_id, priority)
        emit: List[QueryResult] = []
        for node, local_distance in matches:
            if node in skip and node == entry and local_distance == 0:
                continue
            total = priority + local_distance
            if max_distance is not None and total > max_distance:
                continue
            if self._covered(index, previous, node, forward, stats):
                stats.results_suppressed += 1
                continue
            emit.append(QueryResult(node, total, meta.meta_id))

        # Residual links out of (forward) / into (backward) the meta
        # document; pushes are applied by the caller after emission.
        link_pushes: List[Tuple[int, NodeId]] = []
        link_candidates = meta.link_sources if forward else meta.link_targets
        if link_candidates:
            if trace is not None:
                with trace.span("pee.link_hop", meta_id=meta.meta_id) as span:
                    link_pushes = self._link_pushes(index, meta, entry, forward)
                    span.meta["hops"] = len(link_pushes)
            else:
                link_pushes = self._link_pushes(index, meta, entry, forward)
        return emit, link_pushes

    def _link_pushes(
        self, index, meta: MetaDocument, entry: NodeId, forward: bool
    ) -> List[Tuple[int, NodeId]]:
        """The residual-link neighbours reachable from ``entry``, as
        ``(local_distance, neighbour)`` pairs ready for enqueueing."""
        if forward:
            link_elements = index.reachable_subset(entry, meta.link_sources)
            link_map = meta.outgoing_links
        else:
            link_elements = self._reverse_reachable_subset(
                index, entry, meta.link_targets
            )
            link_map = meta.incoming_links
        pushes: List[Tuple[int, NodeId]] = []
        for element, local_distance in link_elements:
            for neighbour in link_map[element]:
                pushes.append((local_distance, neighbour))
        return pushes

    # ------------------------------------------------------------------
    # graceful degradation (missing / failing meta-document indexes)
    # ------------------------------------------------------------------
    def _local_index(self, meta: MetaDocument, stats: QueryStats):
        """The index to answer ``meta``'s probes with.

        Prefers the real index; a meta document whose index is missing
        (failed build) or previously failed gets its sticky BFS fallback,
        and every query that reads through a fallback is flagged
        ``degraded``.
        """
        fallback = self._fallbacks.get(meta.meta_id)
        if fallback is not None:
            stats.mark_degraded()
            return fallback
        if meta.index is None:
            return self._activate_fallback(meta, stats, None)
        return meta.index

    def _activate_fallback(self, meta: MetaDocument, stats: QueryStats, exc):
        """Swap ``meta`` onto a BFS fallback index (sticky), or re-raise.

        ``exc`` is the triggering :class:`StorageError` (``None`` for a
        missing index).  Without a :class:`FallbackContext` degradation is
        disabled and the failure propagates unchanged.
        """
        ctx = self._fallback_ctx
        if ctx is None:
            if exc is not None:
                raise exc
            raise PermanentStorageError(
                f"meta document {meta.meta_id} has no usable index and "
                "query fallback is disabled (no resilience configuration)"
            )
        activated = False
        with self._state_lock:
            fallback = self._fallbacks.get(meta.meta_id)
            if fallback is None:
                fallback = ctx.build_for(meta)
                self._fallbacks[meta.meta_id] = fallback
                activated = True
        if activated:
            stats.fallback_meta_documents += 1
            if self._obs.enabled:
                self._obs.registry.counter(
                    "flix_query_fallbacks_total",
                    "BFS fallback activations for unusable meta-document "
                    "indexes, by cause.",
                ).inc(cause="missing" if exc is None else "storage_error")
        stats.mark_degraded()
        return fallback

    @property
    def degraded_meta_ids(self) -> List[int]:
        """Meta documents currently served by a BFS fallback, sorted."""
        return sorted(self._fallbacks)

    # ------------------------------------------------------------------
    # remote-expansion seam (sharded serving, docs/SHARDING.md)
    # ------------------------------------------------------------------
    def expand_entry(
        self,
        meta_id: int,
        entry: NodeId,
        priority: int,
        tag: Optional[str],
        forward: bool,
        skip: Sequence[NodeId],
        max_distance: Optional[int],
        previous: Sequence[NodeId],
        stats: QueryStats,
    ):
        """Expand one entry of ``meta_id`` on behalf of a remote caller.

        This is the seam the sharded coordinator's distributed search is
        built on: :meth:`_search_inner`'s per-pop expansion is a pure
        function of ``(meta, entry, priority, tag, forward, skip,
        max_distance, previous)``, so a coordinator that owns the priority
        queue and the per-meta ``previous`` lists can ship each expansion
        to the shard worker owning the entry's meta document and still
        produce the byte-identical result stream.  Returns ``None`` when
        the entry is covered, else ``(results_to_emit, link_pushes)``;
        counters the expansion touches (``covered_probes``,
        ``results_suppressed``, ``fallback_meta_documents``, completeness)
        accumulate into the caller-owned ``stats``.
        """
        meta = self._meta_documents[meta_id]
        return self._expand_entry(
            meta, entry, priority, tag, forward, set(skip), max_distance,
            list(previous), stats, None,
        )

    def connection_probe(
        self,
        meta_id: int,
        entry: NodeId,
        priority: int,
        target: NodeId,
        target_meta: int,
        max_distance: Optional[int],
        previous: Sequence[NodeId],
        stats: QueryStats,
    ):
        """Connection-test counterpart of :meth:`expand_entry` (the same
        remote seam for the ``test`` kind): returns ``(found, link_pushes)``
        or ``None`` when the entry is covered."""
        meta = self._meta_documents[meta_id]
        return self._connection_probe(
            meta, entry, priority, target, target_meta, max_distance,
            list(previous), stats,
        )

    def meta_id_of(self, node: NodeId) -> int:
        """The meta document owning ``node`` (KeyError for unknown nodes)."""
        return self._meta_of[node]

    def _probe(
        self,
        index,
        entry: NodeId,
        tag: Optional[str],
        forward: bool,
        trace,
        meta_id: int,
        priority: int,
    ):
        """One local-index probe, wrapped in a ``pee.probe`` span if traced."""
        if trace is None:
            return (
                index.find_descendants_by_tag(entry, tag)
                if forward
                else index.find_ancestors_by_tag(entry, tag)
            )
        with trace.span("pee.probe", meta_id=meta_id, priority=priority) as span:
            matches = (
                index.find_descendants_by_tag(entry, tag)
                if forward
                else index.find_ancestors_by_tag(entry, tag)
            )
            try:
                span.meta["matches"] = len(matches)
            except TypeError:
                pass
            return matches

    def _query_instruments(self) -> Dict[str, object]:
        """Bind the per-query instruments once (one publish per query).

        Double-checked under the state lock: concurrent first publishers
        must agree on one instrument dict (the registry itself dedupes by
        metric name, so the race would be benign, but a torn half-built
        dict would not be).
        """
        instruments = self._instruments
        if instruments is not None:
            return instruments
        with self._state_lock:
            if self._instruments is not None:
                return self._instruments
            reg = self._obs.registry
            self._instruments = {
                "queries": reg.counter(
                    "flix_queries_total", "Queries evaluated, by axis."
                ),
                "pops": reg.counter(
                    "flix_pee_queue_pops_total",
                    "Priority-queue pops across all queries.",
                ),
                "visits": reg.counter(
                    "flix_pee_meta_visits_total",
                    "Meta documents probed through their local index.",
                ),
                "hops": reg.counter(
                    "flix_pee_link_hops_total",
                    "Residual links traversed across meta-document boundaries.",
                ),
                "probes": reg.counter(
                    "flix_pee_covered_probes_total",
                    "reachable() calls made by duplicate elimination.",
                ),
                "dupes": reg.counter(
                    "flix_pee_duplicates_eliminated_total",
                    "Entries dropped and results suppressed by coverage checks.",
                ),
                "results": reg.counter(
                    "flix_pee_results_total",
                    "Results streamed to clients, by axis.",
                ),
                "planner": reg.counter(
                    "flix_planner_pruned_total",
                    "Heap pops and pushes the probe planner's frontier "
                    "pruned as provably covered, by kind.",
                ),
                "seconds": reg.histogram(
                    "flix_query_seconds",
                    "Wall time from first consumption to stream completion, "
                    "by axis.",
                ),
                "completeness": reg.counter(
                    "flix_query_completeness_total",
                    "Finished queries by completeness level "
                    "(complete / truncated / degraded).",
                ),
            }
            return self._instruments

    def _publish(self, stats: QueryStats, axis: str, duration: float) -> None:
        """Fold one finished query's counters into the metrics registry."""
        inst = self._query_instruments()
        inst["queries"].inc(axis=axis)
        inst["pops"].inc(stats.queue_pops)
        inst["visits"].inc(stats.meta_document_visits)
        inst["hops"].inc(stats.link_traversals)
        inst["probes"].inc(stats.covered_probes)
        inst["dupes"].inc(stats.entries_dropped, kind="entry")
        inst["dupes"].inc(stats.results_suppressed, kind="result")
        inst["results"].inc(stats.results_returned, axis=axis)
        if stats.planner_pruned_pops:
            inst["planner"].inc(stats.planner_pruned_pops, kind="pop")
        if stats.planner_pruned_pushes:
            inst["planner"].inc(stats.planner_pruned_pushes, kind="push")
        inst["seconds"].observe(duration, axis=axis)
        inst["completeness"].inc(level=stats.completeness)

    @staticmethod
    def _covered(
        index,
        previous_entries: List[NodeId],
        node: NodeId,
        forward: bool,
        stats: QueryStats,
    ) -> bool:
        """Is ``node``'s result set already covered by an earlier entry?

        Forward: a previous entry that reaches ``node`` has already returned
        all of ``node``'s descendants.  Backward: a previous entry reachable
        *from* ``node`` has already returned all of ``node``'s ancestors.

        Entries are probed most-recently-added first: the queue pops entries
        in ascending priority, and a popped node is far more likely to hang
        off the subtree the evaluator just expanded than off an entry from
        many blocks ago, so late entries resolve most positive probes in one
        ``reachable`` call.  Every probe is counted in ``stats``.
        """
        if not previous_entries:
            return False
        for entry in reversed(previous_entries):
            stats.covered_probes += 1
            if forward:
                if index.reachable(entry, node):
                    return True
            else:
                if index.reachable(node, entry):
                    return True
        return False

    @staticmethod
    def _reverse_reachable_subset(
        index,
        entry: NodeId,
        candidates,
    ) -> List[Tuple[NodeId, int]]:
        """Candidates that *reach* ``entry`` locally, by ascending distance."""
        hits = []
        for candidate in candidates:
            d = index.distance(candidate, entry)
            if d is not None:
                hits.append((candidate, d))
        hits.sort(key=lambda pair: (pair[1], pair[0]))
        return hits

    # ------------------------------------------------------------------
    # connection tests (section 5.2)
    # ------------------------------------------------------------------
    def connection_test(
        self,
        source: NodeId,
        target: NodeId,
        max_distance: Optional[int] = None,
        stats: Optional[QueryStats] = None,
        budget: Optional[QueryBudget] = None,
    ) -> Optional[int]:
        """Approximate distance from ``source`` to ``target``; None if not
        connected (within the threshold).

        As in the paper, the search "proceeds until it finds b": the first
        path discovered is reported, so the returned distance can exceed the
        true shortest path when that crosses meta documents differently.
        The client limits the depth via ``max_distance`` because "the
        resulting relevance is negligible" beyond it.  ``stats`` is an
        optional caller-owned counter sink (per-query, never shared).
        """
        stats = stats if stats is not None else QueryStats()
        started = time.perf_counter() if self._obs.enabled else 0.0
        try:
            return self._connection_test(
                source, target, max_distance, stats,
                self._effective_budget(budget),
            )
        finally:
            self.last_stats = stats.snapshot()
            if self._obs.enabled:
                self._publish(
                    stats, "connection", time.perf_counter() - started
                )

    def _connection_test(
        self,
        source: NodeId,
        target: NodeId,
        max_distance: Optional[int],
        stats: QueryStats,
        budget: Optional[QueryBudget] = None,
    ) -> Optional[int]:
        entries: Dict[int, List[NodeId]] = {}
        heap: List[Tuple[int, int, NodeId]] = [(0, 0, source)]
        counter = 1
        if source not in self._meta_of or target not in self._meta_of:
            raise KeyError("both endpoints must belong to the collection")
        # frontier pruning only — connection tests stop at the first hit,
        # so reordering would change *which* path is reported
        frontier = (
            self._planner.frontier() if self._planner is not None else None
        )
        if frontier is not None:
            frontier.admit_push(source, 0)
        target_meta = self._meta_of[target]
        deadline = None
        if budget is not None and budget.deadline_seconds is not None:
            deadline = time.monotonic() + budget.deadline_seconds

        while heap:
            if budget is not None and self._budget_exhausted(
                budget, deadline, stats
            ):
                stats.mark_truncated()
                return None
            priority, _, entry = heapq.heappop(heap)
            stats.queue_pops += 1
            if max_distance is not None and priority > max_distance:
                return None
            if frontier is not None and not frontier.admit_pop(entry):
                stats.entries_dropped += 1
                stats.planner_pruned_pops += 1
                continue
            meta = self._meta_documents[self._meta_of[entry]]
            previous = entries.setdefault(meta.meta_id, [])
            outcome = self._connection_probe(
                meta, entry, priority, target, target_meta, max_distance,
                previous, stats,
            )
            if outcome is None:
                stats.entries_dropped += 1
                continue
            stats.meta_document_visits += 1
            found, link_pushes = outcome
            if found is not None:
                stats.results_returned = 1
                return found
            previous.append(entry)
            for local_distance, out_target in link_pushes:
                push_priority = priority + local_distance + 1
                if frontier is not None and not frontier.admit_push(
                    out_target, push_priority
                ):
                    stats.planner_pruned_pushes += 1
                    continue
                stats.link_traversals += 1
                counter += 1
                heapq.heappush(
                    heap, (push_priority, counter, out_target)
                )
        return None

    def _connection_probe(
        self,
        meta: MetaDocument,
        entry: NodeId,
        priority: int,
        target: NodeId,
        target_meta: int,
        max_distance: Optional[int],
        previous: List[NodeId],
        stats: QueryStats,
    ):
        """Connection-test expansion of one entry, with the same
        retry-on-fallback contract as :meth:`_expand_entry`."""
        index = self._local_index(meta, stats)
        try:
            return self._connection_probe_with(
                index, meta, entry, priority, target, target_meta,
                max_distance, previous, stats,
            )
        except StorageError as exc:
            index = self._activate_fallback(meta, stats, exc)
            return self._connection_probe_with(
                index, meta, entry, priority, target, target_meta,
                max_distance, previous, stats,
            )

    def _connection_probe_with(
        self,
        index,
        meta: MetaDocument,
        entry: NodeId,
        priority: int,
        target: NodeId,
        target_meta: int,
        max_distance: Optional[int],
        previous: List[NodeId],
        stats: QueryStats,
    ):
        if self._covered(index, previous, entry, True, stats):
            return None
        found: Optional[int] = None
        if meta.meta_id == target_meta:
            local = index.distance(entry, target)
            if local is not None:
                total = priority + local
                if max_distance is None or total <= max_distance:
                    found = total
        link_pushes: List[Tuple[int, NodeId]] = []
        if found is None:
            for element, local_distance in index.reachable_subset(
                entry, meta.link_sources
            ):
                for out_target in meta.outgoing_links[element]:
                    link_pushes.append((local_distance, out_target))
        return found, link_pushes

    def connection_test_bidirectional(
        self,
        source: NodeId,
        target: NodeId,
        max_distance: Optional[int] = None,
        stats: Optional[QueryStats] = None,
        budget: Optional[QueryBudget] = None,
    ) -> Optional[int]:
        """The optimization sketched in section 5.2: run a descendants
        search from ``source`` and an ancestors search from ``target``
        simultaneously, alternating steps, and stop at the first meeting
        element.  Depending on the data's shape either direction may win, so
        alternation bounds the work by twice the cheaper side."""
        stats = stats if stats is not None else QueryStats()
        started = time.perf_counter() if self._obs.enabled else 0.0
        # The two sub-searches share this query's stats and publish
        # nothing themselves (axis=None) — the single registry/trace
        # publication below covers the whole bidirectional run.
        forward = self._search(
            seeds=[source], tag=None, max_distance=max_distance,
            forward=True, skip_nodes=(), stats=stats, budget=budget,
        )
        backward = self._search(
            seeds=[target], tag=None, max_distance=max_distance,
            forward=False, skip_nodes=(), stats=stats, budget=budget,
        )
        try:
            seen_forward: Dict[NodeId, int] = {}
            seen_backward: Dict[NodeId, int] = {}
            streams = [(forward, seen_forward, seen_backward),
                       (backward, seen_backward, seen_forward)]
            active = [True, True]
            best: Optional[int] = None
            while any(active):
                for side, (stream, mine, theirs) in enumerate(streams):
                    if not active[side]:
                        continue
                    try:
                        result = next(stream)
                    except StopIteration:
                        active[side] = False
                        continue
                    node, distance = result.node, result.distance
                    if node not in mine or distance < mine[node]:
                        mine[node] = distance
                    if node in theirs:
                        candidate = distance + theirs[node]
                        if max_distance is None or candidate <= max_distance:
                            if best is None or candidate < best:
                                best = candidate
                                return best
            return best
        finally:
            # finalize both sub-streams (their finalizers are idempotent)
            forward.close()
            backward.close()
            if self._obs.enabled:
                self._publish(
                    stats, "connection", time.perf_counter() - started
                )
