"""The Path Expression Evaluator (PEE), section 5 and Figure 4.

The evaluator answers ``a//b``-style queries by interleaving per-meta-
document index lookups with run-time traversal of residual links:

1. a priority queue ``IE`` of *entry elements*, keyed by the minimal
   distance any of their descendants can have to the start node;
2. for the popped entry ``e``, the local index returns all matches inside
   ``e``'s meta document (one block, ascending local distance) and the set
   ``L(e)`` of link-carrying descendants, whose link targets are enqueued at
   priority ``dist(a, e) + dist(e, l) + 1``;
3. duplicate elimination (section 5.1) keeps, per meta document, the entry
   points visited so far: a new entry covered by an earlier one is dropped
   outright, and individual results are suppressed when they are descendants
   of an earlier entry point — all checked through the local index, with no
   per-result hash of the output.

Results therefore stream in *approximately* ascending distance: within one
meta document they are exact, across meta documents the block-wise delivery
can invert neighbours (the error-rate experiment of section 6 quantifies
this at 8-13%).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.meta_document import MetaDocument
from repro.indexes.base import NodeId


@dataclass(frozen=True)
class QueryResult:
    """One streamed result: the element, its (approximate) distance to the
    query start, and the meta document it was found in."""

    node: NodeId
    distance: int
    meta_id: int


@dataclass
class QueryStats:
    """Run-time counters for one query (feeds the self-tuning monitor)."""

    meta_document_visits: int = 0
    link_traversals: int = 0
    entries_dropped: int = 0
    results_returned: int = 0
    results_suppressed: int = 0
    covered_probes: int = 0

    def snapshot(self) -> "QueryStats":
        """An immutable-by-convention copy (what ``last_stats`` publishes)."""
        return replace(self)

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another query's counters (multi-step evaluations)."""
        self.meta_document_visits += other.meta_document_visits
        self.link_traversals += other.link_traversals
        self.entries_dropped += other.entries_dropped
        self.results_returned += other.results_returned
        self.results_suppressed += other.results_suppressed
        self.covered_probes += other.covered_probes


class QueryStream:
    """An in-flight query: the result iterator plus its private stats.

    Each query owns its :class:`QueryStats` instance, so concurrent queries
    against one evaluator never share mutable counters; read ``.stats`` at
    (or after) any point of consumption for this query's numbers.
    """

    __slots__ = ("_iterator", "stats")

    def __init__(self, iterator: Iterator[QueryResult], stats: QueryStats) -> None:
        self._iterator = iterator
        self.stats = stats

    def __iter__(self) -> "QueryStream":
        return self

    def __next__(self) -> QueryResult:
        return next(self._iterator)

    def close(self) -> None:
        self._iterator.close()


class PathExpressionEvaluator:
    """Figure 4's algorithm over a set of built meta documents."""

    def __init__(
        self,
        meta_documents: Sequence[MetaDocument],
        meta_of: Dict[NodeId, int],
    ) -> None:
        self._meta_documents = list(meta_documents)
        self._meta_of = dict(meta_of)
        #: snapshot of the most recently *completed* query's counters; the
        #: live per-query counters travel on the :class:`QueryStream`
        self.last_stats = QueryStats()

    # ------------------------------------------------------------------
    # descendants (a//b, a//*)
    # ------------------------------------------------------------------
    def find_descendants(
        self,
        start: NodeId,
        tag: Optional[str] = None,
        max_distance: Optional[int] = None,
        include_self: bool = False,
        exact_order: bool = False,
    ) -> Iterator[QueryResult]:
        """Stream descendants of ``start`` with the given tag.

        ``tag=None`` is the wildcard.  ``max_distance`` is the client-side
        threshold of section 5.1: evaluation stops once the queue's head is
        beyond it.  ``include_self`` controls whether ``start`` itself may
        qualify (XPath's descendant-or-self vs. descendant).

        ``exact_order`` implements the first future-work item of section 7
        ("returning results exactly sorted instead of approximately"):
        results are buffered and released only once the evaluator's queue
        guarantees no later result can carry a smaller distance, so the
        stream is non-decreasing in the reported distance — at the price of
        the early-first-results advantage FliX otherwise has.
        """
        stats = QueryStats()
        return QueryStream(
            self._search(
                seeds=[start],
                tag=tag,
                max_distance=max_distance,
                forward=True,
                skip_nodes=() if include_self else (start,),
                stats=stats,
                exact_order=exact_order,
            ),
            stats,
        )

    def find_ancestors(
        self,
        start: NodeId,
        tag: Optional[str] = None,
        max_distance: Optional[int] = None,
        include_self: bool = False,
        exact_order: bool = False,
    ) -> Iterator[QueryResult]:
        """Stream ancestors of ``start`` (section 5.1: "a similar algorithm
        can be applied to find ancestors"); distances are path lengths from
        the ancestor down to ``start``."""
        stats = QueryStats()
        return QueryStream(
            self._search(
                seeds=[start],
                tag=tag,
                max_distance=max_distance,
                forward=False,
                skip_nodes=() if include_self else (start,),
                stats=stats,
                exact_order=exact_order,
            ),
            stats,
        )

    def evaluate_type_query(
        self,
        source_tag_nodes: Sequence[NodeId],
        tag: Optional[str],
        max_distance: Optional[int] = None,
    ) -> Iterator[QueryResult]:
        """``A//B`` evaluation (section 5.2): seed the queue with every
        element of type ``A`` at priority 0 and run the same algorithm.

        Results are the distinct ``B`` elements reachable from *some* seed,
        each reported once with (approximately) its smallest seed distance.
        """
        stats = QueryStats()
        return QueryStream(
            self._search(
                seeds=list(source_tag_nodes),
                tag=tag,
                max_distance=max_distance,
                forward=True,
                skip_nodes=(),
                stats=stats,
            ),
            stats,
        )

    # ------------------------------------------------------------------
    # the core loop
    # ------------------------------------------------------------------
    def _search(
        self,
        seeds: Sequence[NodeId],
        tag: Optional[str],
        max_distance: Optional[int],
        forward: bool,
        skip_nodes: Tuple[NodeId, ...],
        stats: QueryStats,
        exact_order: bool = False,
    ) -> Iterator[QueryResult]:
        try:
            yield from self._search_inner(
                seeds, tag, max_distance, forward, skip_nodes, stats, exact_order
            )
        finally:
            # Publish a frozen copy only: concurrent readers of last_stats
            # must never observe another query's counters mid-mutation.
            self.last_stats = stats.snapshot()

    def _search_inner(
        self,
        seeds: Sequence[NodeId],
        tag: Optional[str],
        max_distance: Optional[int],
        forward: bool,
        skip_nodes: Tuple[NodeId, ...],
        stats: QueryStats,
        exact_order: bool,
    ) -> Iterator[QueryResult]:
        # entry points already expanded, per meta document
        entries: Dict[int, List[NodeId]] = {}
        heap: List[Tuple[int, int, NodeId]] = []
        for order, seed in enumerate(seeds):
            if seed not in self._meta_of:
                raise KeyError(f"node {seed} is not part of the collection")
            heapq.heappush(heap, (0, order, seed))
        counter = len(seeds)
        skip = set(skip_nodes)
        # exact-order buffering: (distance, tiebreak, result)
        buffer: List[Tuple[int, int, QueryResult]] = []

        while heap:
            priority, _, entry = heapq.heappop(heap)
            if exact_order:
                # Every later result is found through an entry of priority
                # >= this one and local distances are non-negative, so the
                # buffered results below the current priority are final.
                while buffer and buffer[0][0] < priority:
                    yield heapq.heappop(buffer)[2]
            if max_distance is not None and priority > max_distance:
                break  # queue head beyond the client's threshold
            meta = self._meta_documents[self._meta_of[entry]]
            index = meta.index
            previous = entries.setdefault(meta.meta_id, [])
            if self._covered(index, previous, entry, forward, stats):
                stats.entries_dropped += 1
                continue
            stats.meta_document_visits += 1

            matches = (
                index.find_descendants_by_tag(entry, tag)
                if forward
                else index.find_ancestors_by_tag(entry, tag)
            )
            for node, local_distance in matches:
                if node in skip and node == entry and local_distance == 0:
                    continue
                total = priority + local_distance
                if max_distance is not None and total > max_distance:
                    continue
                if self._covered(index, previous, node, forward, stats):
                    stats.results_suppressed += 1
                    continue
                stats.results_returned += 1
                result = QueryResult(node, total, meta.meta_id)
                if exact_order:
                    counter += 1
                    heapq.heappush(buffer, (total, counter, result))
                else:
                    yield result

            previous.append(entry)

            # Follow residual links out of (forward) / into (backward) the
            # meta document.
            if forward:
                link_elements = index.reachable_subset(entry, meta.link_sources)
                for element, local_distance in link_elements:
                    for target in meta.outgoing_links[element]:
                        stats.link_traversals += 1
                        counter += 1
                        heapq.heappush(
                            heap,
                            (priority + local_distance + 1, counter, target),
                        )
            else:
                for element, local_distance in self._reverse_reachable_subset(
                    index, entry, meta.link_targets
                ):
                    for source in meta.incoming_links[element]:
                        stats.link_traversals += 1
                        counter += 1
                        heapq.heappush(
                            heap,
                            (priority + local_distance + 1, counter, source),
                        )

        while buffer:
            yield heapq.heappop(buffer)[2]

    @staticmethod
    def _covered(
        index,
        previous_entries: List[NodeId],
        node: NodeId,
        forward: bool,
        stats: QueryStats,
    ) -> bool:
        """Is ``node``'s result set already covered by an earlier entry?

        Forward: a previous entry that reaches ``node`` has already returned
        all of ``node``'s descendants.  Backward: a previous entry reachable
        *from* ``node`` has already returned all of ``node``'s ancestors.

        Entries are probed most-recently-added first: the queue pops entries
        in ascending priority, and a popped node is far more likely to hang
        off the subtree the evaluator just expanded than off an entry from
        many blocks ago, so late entries resolve most positive probes in one
        ``reachable`` call.  Every probe is counted in ``stats``.
        """
        if not previous_entries:
            return False
        for entry in reversed(previous_entries):
            stats.covered_probes += 1
            if forward:
                if index.reachable(entry, node):
                    return True
            else:
                if index.reachable(node, entry):
                    return True
        return False

    @staticmethod
    def _reverse_reachable_subset(
        index,
        entry: NodeId,
        candidates,
    ) -> List[Tuple[NodeId, int]]:
        """Candidates that *reach* ``entry`` locally, by ascending distance."""
        hits = []
        for candidate in candidates:
            d = index.distance(candidate, entry)
            if d is not None:
                hits.append((candidate, d))
        hits.sort(key=lambda pair: (pair[1], pair[0]))
        return hits

    # ------------------------------------------------------------------
    # connection tests (section 5.2)
    # ------------------------------------------------------------------
    def connection_test(
        self,
        source: NodeId,
        target: NodeId,
        max_distance: Optional[int] = None,
        stats: Optional[QueryStats] = None,
    ) -> Optional[int]:
        """Approximate distance from ``source`` to ``target``; None if not
        connected (within the threshold).

        As in the paper, the search "proceeds until it finds b": the first
        path discovered is reported, so the returned distance can exceed the
        true shortest path when that crosses meta documents differently.
        The client limits the depth via ``max_distance`` because "the
        resulting relevance is negligible" beyond it.  ``stats`` is an
        optional caller-owned counter sink (per-query, never shared).
        """
        stats = stats if stats is not None else QueryStats()
        try:
            return self._connection_test(source, target, max_distance, stats)
        finally:
            self.last_stats = stats.snapshot()

    def _connection_test(
        self,
        source: NodeId,
        target: NodeId,
        max_distance: Optional[int],
        stats: QueryStats,
    ) -> Optional[int]:
        entries: Dict[int, List[NodeId]] = {}
        heap: List[Tuple[int, int, NodeId]] = [(0, 0, source)]
        counter = 1
        if source not in self._meta_of or target not in self._meta_of:
            raise KeyError("both endpoints must belong to the collection")
        target_meta = self._meta_of[target]

        while heap:
            priority, _, entry = heapq.heappop(heap)
            if max_distance is not None and priority > max_distance:
                return None
            meta = self._meta_documents[self._meta_of[entry]]
            index = meta.index
            previous = entries.setdefault(meta.meta_id, [])
            if self._covered(index, previous, entry, True, stats):
                stats.entries_dropped += 1
                continue
            stats.meta_document_visits += 1
            if meta.meta_id == target_meta:
                local = index.distance(entry, target)
                if local is not None:
                    total = priority + local
                    if max_distance is None or total <= max_distance:
                        stats.results_returned = 1
                        return total
            previous.append(entry)
            for element, local_distance in index.reachable_subset(
                entry, meta.link_sources
            ):
                for out_target in meta.outgoing_links[element]:
                    stats.link_traversals += 1
                    counter += 1
                    heapq.heappush(
                        heap, (priority + local_distance + 1, counter, out_target)
                    )
        return None

    def connection_test_bidirectional(
        self,
        source: NodeId,
        target: NodeId,
        max_distance: Optional[int] = None,
        stats: Optional[QueryStats] = None,
    ) -> Optional[int]:
        """The optimization sketched in section 5.2: run a descendants
        search from ``source`` and an ancestors search from ``target``
        simultaneously, alternating steps, and stop at the first meeting
        element.  Depending on the data's shape either direction may win, so
        alternation bounds the work by twice the cheaper side."""
        stats = stats if stats is not None else QueryStats()
        forward = self._search(
            seeds=[source], tag=None, max_distance=max_distance,
            forward=True, skip_nodes=(), stats=stats,
        )
        backward = self._search(
            seeds=[target], tag=None, max_distance=max_distance,
            forward=False, skip_nodes=(), stats=stats,
        )
        seen_forward: Dict[NodeId, int] = {}
        seen_backward: Dict[NodeId, int] = {}
        streams = [(forward, seen_forward, seen_backward),
                   (backward, seen_backward, seen_forward)]
        active = [True, True]
        best: Optional[int] = None
        while any(active):
            for side, (stream, mine, theirs) in enumerate(streams):
                if not active[side]:
                    continue
                try:
                    result = next(stream)
                except StopIteration:
                    active[side] = False
                    continue
                node, distance = result.node, result.distance
                if node not in mine or distance < mine[node]:
                    mine[node] = distance
                if node in theirs:
                    candidate = distance + theirs[node]
                    if max_distance is None or candidate <= max_distance:
                        if best is None or candidate < best:
                            best = candidate
                            return best
        return best
