"""The FliX framework itself (sections 3-5 of the paper).

Build phase (section 4): the :class:`~repro.core.mdb.MetaDocumentBuilder`
splits the collection into meta documents following one of the paper's
configurations, the :class:`~repro.core.iss.IndexingStrategySelector` picks
the best strategy per meta document, and the
:class:`~repro.core.ib.IndexBuilder` materializes the indexes plus the
residual link sets.

Query phase (section 5): the :class:`~repro.core.pee.PathExpressionEvaluator`
answers ``a//b``, ``a//*``, ``A//B``, ancestor, and connection-test queries
by combining per-meta-document index lookups with run-time link traversal,
streaming results in approximately ascending distance.

:class:`~repro.core.framework.Flix` is the facade tying both phases together.
"""

from repro.core.api import (
    QUERY_KINDS,
    QueryRequest,
    QueryResponse,
)
from repro.core.config import (
    CacheConfig,
    FlixConfig,
    PlannerConfig,
    ResilienceConfig,
)
from repro.core.connections import ConnectionEvaluator, ConnectionModel
from repro.core.fallback import BfsFallbackIndex, FallbackContext
from repro.core.meta_document import MetaDocument, MetaDocumentSpec
from repro.core.mdb import MetaDocumentBuilder
from repro.core.iss import IndexingStrategySelector, StrategyChoice
from repro.core.ib import IndexBuilder
from repro.core.pee import (
    PathExpressionEvaluator,
    QueryBudget,
    QueryResult,
    QueryStream,
)
from repro.core.planner import (
    LayoutStatistics,
    ProbePlanner,
    QueryPlan,
    collect_layout_statistics,
)
from repro.core.results import StreamedList
from repro.core.framework import Flix
from repro.core.selftune import QueryLoadMonitor, TuningAdvice, WorkloadProfile
from repro.core.subcollections import (
    Subcollection,
    build_auto_partitioned,
    identify_subcollections,
)

__all__ = [
    "Flix",
    "FlixConfig",
    "CacheConfig",
    "ResilienceConfig",
    "QUERY_KINDS",
    "QueryRequest",
    "QueryResponse",
    "QueryBudget",
    "QueryStream",
    "BfsFallbackIndex",
    "FallbackContext",
    "ConnectionModel",
    "ConnectionEvaluator",
    "Subcollection",
    "identify_subcollections",
    "build_auto_partitioned",
    "MetaDocument",
    "MetaDocumentSpec",
    "MetaDocumentBuilder",
    "IndexingStrategySelector",
    "StrategyChoice",
    "IndexBuilder",
    "PathExpressionEvaluator",
    "QueryResult",
    "StreamedList",
    "QueryLoadMonitor",
    "TuningAdvice",
    "WorkloadProfile",
    "PlannerConfig",
    "ProbePlanner",
    "QueryPlan",
    "LayoutStatistics",
    "collect_layout_statistics",
]
