"""The unified query API: one request type, one response type.

FliX grew eight query entry points (``find_descendants``,
``find_ancestors``, ``find_children``, ``evaluate_type_query``,
``find_path``, ``find_connections``, ``connection_cost``,
``connection_test``), each with its own signature.  That shape cannot be
queued, cached, retried, or shipped to a worker pool uniformly — the
serving layer needs *one* value that fully describes a query and *one*
value that fully describes its answer.

:class:`QueryRequest` is that description: a frozen, hashable dataclass
naming the query ``kind`` plus every knob the kind understands.
:class:`QueryResponse` is the materialized answer: the result list (or
scalar ``value`` for connection cost/test kinds), the query's private
:class:`~repro.core.pee.QueryStats`, and the completeness flag.

``Flix.query(request)`` evaluates one request synchronously;
``FlixService.submit(request)`` (:mod:`repro.serve`) queues it onto a
worker pool.  The legacy ``find_*``/``connection_*`` methods survive as
thin shims building a :class:`QueryRequest` internally.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.connections import ConnectionModel
from repro.core.pee import QueryBudget, QueryStats
from repro.indexes.base import NodeId

#: every query kind the unified API understands
QUERY_KINDS = (
    "descendants",
    "ancestors",
    "children",
    "path",
    "connections",
    "cost",
    "test",
)

#: kinds whose answer is a scalar ``value`` instead of a result list
SCALAR_KINDS = ("cost", "test")

#: kinds that stream results lazily (``Flix.query_stream`` accepts these)
STREAMING_KINDS = ("descendants", "ancestors", "connections")


@dataclass(frozen=True)
class QueryRequest:
    """One fully-described query, ready to evaluate, queue, or cache.

    Which fields matter depends on ``kind``:

    ===============  =====================================================
    kind             meaning / required fields
    ===============  =====================================================
    ``descendants``  ``a//b``: ``source`` (or ``source_tag`` for the
                     ``A//B`` type-query form), optional ``tag``,
                     ``max_distance``, ``include_self``, ``exact_order``
    ``ancestors``    reverse axis from ``source``
    ``children``     direct successors of ``source``, optional ``tag``
    ``path``         multi-step ``source//t1//…//tn``: ``path`` holds the
                     step tags, ``max_distance`` bounds each step
    ``connections``  generalized connection search from ``source`` under
                     ``model``, bounded by ``max_cost``
    ``cost``         cheapest connection cost ``source`` → ``target``
    ``test``         reachability ``source`` → ``target`` (approximate
                     distance or None), optionally ``bidirectional``
    ===============  =====================================================

    ``limit`` truncates list-valued answers (top-k early stop); ``budget``
    attaches per-request work limits (deadline / link hops / queue pops)
    that override the evaluator's configured default for this query only.

    Instances are frozen and hashable, which is what makes them usable as
    cache keys and queue items without copying.
    """

    kind: str
    #: the start element (all kinds except the type-query form)
    source: Optional[NodeId] = None
    #: the end element (``cost`` / ``test``)
    target: Optional[NodeId] = None
    #: element-type filter on results (None = wildcard ``*``)
    tag: Optional[str] = None
    #: type-query form of ``descendants``: seed every element of this tag
    source_tag: Optional[str] = None
    #: step tags for the ``path`` kind
    path: Tuple[str, ...] = ()
    #: distance threshold (descendants/ancestors/test; per step for path)
    max_distance: Optional[int] = None
    #: cost threshold (connections / cost)
    max_cost: Optional[float] = None
    #: connection-cost model (connections / cost); None = plain descendants
    model: Optional[ConnectionModel] = None
    #: top-k early stop for list-valued kinds
    limit: Optional[int] = None
    #: may ``source`` itself qualify (descendants / ancestors)
    include_self: bool = False
    #: buffer results until exactly sorted by distance (descendants /
    #: ancestors) — section 7's first future-work item
    exact_order: bool = False
    #: alternate a forward and a backward search (``test`` kind, §5.2)
    bidirectional: bool = False
    #: per-request work limits, overriding the evaluator's default
    budget: Optional[QueryBudget] = None
    #: stamp the probe planner's :class:`~repro.core.planner.QueryPlan`
    #: onto ``QueryResponse.plan`` (the EXPLAIN surface; uncacheable)
    explain: bool = False

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise ValueError(
                f"unknown query kind {self.kind!r}; expected one of {QUERY_KINDS}"
            )
        if self.limit is not None and self.limit < 1:
            raise ValueError("limit must be positive when set")
        if self.max_distance is not None and self.max_distance < 0:
            raise ValueError("max_distance must be non-negative when set")
        if self.max_cost is not None and self.max_cost < 0:
            raise ValueError("max_cost must be non-negative when set")
        if self.kind in ("descendants",):
            if (self.source is None) == (self.source_tag is None):
                raise ValueError(
                    "descendants queries need exactly one of source "
                    "(a//b) or source_tag (A//B)"
                )
        elif self.source is None:
            raise ValueError(f"{self.kind} queries need a source element")
        if self.kind in SCALAR_KINDS and self.target is None:
            raise ValueError(f"{self.kind} queries need a target element")
        if self.kind == "path" and not self.path:
            raise ValueError("path queries need at least one step tag")
        if self.kind != "path" and self.path:
            raise ValueError("path steps only apply to the path kind")
        if self.bidirectional and self.kind != "test":
            raise ValueError("bidirectional only applies to the test kind")

    # ------------------------------------------------------------------
    # named constructors (the eight legacy signatures, normalized)
    # ------------------------------------------------------------------
    @classmethod
    def descendants(
        cls,
        source: NodeId,
        tag: Optional[str] = None,
        max_distance: Optional[int] = None,
        limit: Optional[int] = None,
        include_self: bool = False,
        exact_order: bool = False,
        budget: Optional[QueryBudget] = None,
    ) -> "QueryRequest":
        return cls(
            kind="descendants", source=source, tag=tag,
            max_distance=max_distance, limit=limit, include_self=include_self,
            exact_order=exact_order, budget=budget,
        )

    @classmethod
    def ancestors(
        cls,
        source: NodeId,
        tag: Optional[str] = None,
        max_distance: Optional[int] = None,
        limit: Optional[int] = None,
        include_self: bool = False,
        exact_order: bool = False,
        budget: Optional[QueryBudget] = None,
    ) -> "QueryRequest":
        return cls(
            kind="ancestors", source=source, tag=tag,
            max_distance=max_distance, limit=limit, include_self=include_self,
            exact_order=exact_order, budget=budget,
        )

    @classmethod
    def children(
        cls, source: NodeId, tag: Optional[str] = None
    ) -> "QueryRequest":
        return cls(kind="children", source=source, tag=tag)

    @classmethod
    def type_query(
        cls,
        source_tag: str,
        tag: Optional[str] = None,
        max_distance: Optional[int] = None,
        limit: Optional[int] = None,
        budget: Optional[QueryBudget] = None,
    ) -> "QueryRequest":
        """The ``A//B`` form: descendants of any element tagged ``source_tag``."""
        return cls(
            kind="descendants", source_tag=source_tag, tag=tag,
            max_distance=max_distance, limit=limit, budget=budget,
        )

    @classmethod
    def find_path(
        cls,
        source: NodeId,
        steps: Sequence[str],
        max_distance_per_step: Optional[int] = None,
    ) -> "QueryRequest":
        return cls(
            kind="path", source=source, path=tuple(steps),
            max_distance=max_distance_per_step,
        )

    @classmethod
    def connections(
        cls,
        source: NodeId,
        tag: Optional[str] = None,
        model: Optional[ConnectionModel] = None,
        max_cost: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> "QueryRequest":
        return cls(
            kind="connections", source=source, tag=tag, model=model,
            max_cost=max_cost, limit=limit,
        )

    @classmethod
    def cost(
        cls,
        source: NodeId,
        target: NodeId,
        model: Optional[ConnectionModel] = None,
        max_cost: Optional[float] = None,
    ) -> "QueryRequest":
        return cls(
            kind="cost", source=source, target=target, model=model,
            max_cost=max_cost,
        )

    @classmethod
    def test(
        cls,
        source: NodeId,
        target: NodeId,
        max_distance: Optional[int] = None,
        bidirectional: bool = False,
        budget: Optional[QueryBudget] = None,
    ) -> "QueryRequest":
        return cls(
            kind="test", source=source, target=target,
            max_distance=max_distance, bidirectional=bidirectional,
            budget=budget,
        )

    # ------------------------------------------------------------------
    # serving / caching support
    # ------------------------------------------------------------------
    def with_budget(self, budget: Optional[QueryBudget]) -> "QueryRequest":
        return replace(self, budget=budget)

    def with_limit(self, limit: Optional[int]) -> "QueryRequest":
        return replace(self, limit=limit)

    def with_explain(self, explain: bool = True) -> "QueryRequest":
        return replace(self, explain=explain)

    @property
    def is_scalar(self) -> bool:
        return self.kind in SCALAR_KINDS

    def cache_key(self) -> Optional[tuple]:
        """The hashable identity of this request's *full* answer.

        ``limit`` is deliberately excluded: the cache stores complete
        result sets and serves limited requests by slicing the cached
        superset.  A budget-bearing request is **uncacheable** (returns
        ``None``): its answer may be truncated at an arbitrary point, and
        serving that truncation to an unbudgeted caller would silently
        lose results.  An ``explain`` request is uncacheable too — its
        plan describes *this* evaluation, and a replayed answer has none.
        """
        if self.budget is not None or self.explain:
            return None
        return (
            self.kind,
            self.source,
            self.target,
            self.tag,
            self.source_tag,
            self.path,
            self.max_distance,
            self.max_cost,
            self.model,
            self.include_self,
            self.exact_order,
            self.bidirectional,
        )


@dataclass
class QueryResponse:
    """The materialized answer to one :class:`QueryRequest`.

    ``results`` holds the (possibly ``limit``-truncated) result list —
    :class:`~repro.core.pee.QueryResult` rows for descendants, ancestors,
    children, and type queries; ``(node, distance)`` pairs for ``path``;
    ``(node, cost)`` pairs for ``connections``; empty for the scalar
    kinds, whose answer travels in ``value``.

    ``stats`` are this query's private counters.  For a cached response
    they describe the evaluation that originally produced the entry
    (``from_cache`` is then True and ``elapsed_seconds`` the replay time).

    ``layout_generation`` is the generation of the index-layout snapshot
    the whole answer was computed against (see ``docs/MAINTENANCE.md``):
    a query racing ``add_document``/``remove_document``/``compact`` is
    consistent with exactly one published layout, never a mix.
    """

    request: QueryRequest
    results: List[Any] = field(default_factory=list)
    value: Optional[float] = None
    stats: QueryStats = field(default_factory=QueryStats)
    from_cache: bool = False
    elapsed_seconds: float = 0.0
    layout_generation: int = 0
    #: the probe planner's :class:`~repro.core.planner.QueryPlan`, stamped
    #: only when the request set ``explain=True`` (``Flix.explain`` returns
    #: one without evaluating)
    plan: Optional[Any] = None

    @property
    def completeness(self) -> str:
        """``complete`` / ``truncated`` / ``degraded`` (worst wins)."""
        return self.stats.completeness

    @property
    def is_complete(self) -> bool:
        return self.stats.is_complete

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


__all__ = [
    "QUERY_KINDS",
    "SCALAR_KINDS",
    "STREAMING_KINDS",
    "QueryRequest",
    "QueryResponse",
]
