"""Immutable index-layout snapshots for maintenance under serving.

``Flix`` used to mutate ``meta_documents``, ``meta_of``, and ``self.pee``
in place while ``FlixService`` worker threads were evaluating queries —
a worker could observe a half-updated ``meta_of`` (the PR-4-era race).
:class:`IndexLayout` fixes that with copy-on-write snapshots:

* the whole mutable layout — the meta-document slot list, the
  node→meta-id map, the evaluator built over them — lives on one frozen
  object;
* every maintenance verb (``add_document``, ``add_documents``,
  ``remove_document``, ``update_document``, ``compact``) builds a *new*
  layout off to the side and publishes it with a single reference
  assignment (atomic under CPython), bumping ``generation`` and the
  shared result cache's generation in the same step;
* a query pins ``flix._layout`` **once** when it starts and uses that
  snapshot for its whole lifetime, so an in-flight query always finishes
  against exactly one layout generation — never a mix.

Tombstones
----------

``slots`` is indexed by ``meta_id`` and may contain ``None`` where a
meta document was removed (``remove_document``) or absorbed into a
compacted meta (``compact``).  Keeping the slot preserves the invariant
``slots[meta_of[node]] is the node's meta document`` that the PEE's
inner loop relies on; ``meta_of`` never maps a live node to a
tombstoned slot.  ``tombstones`` records those ids explicitly so
persistence can round-trip a mutated layout, and ``incremental_meta_ids``
remembers which live metas were produced by incremental growth — the
self-tuner's compaction candidates (see ``docs/MAINTENANCE.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.core.meta_document import MetaDocument
from repro.indexes.base import NodeId


@dataclass(frozen=True)
class IndexLayout:
    """One immutable snapshot of the queryable index state."""

    #: meta documents indexed by ``meta_id``; ``None`` marks a tombstone
    slots: Tuple[Optional[MetaDocument], ...]
    #: node id -> meta id (live nodes only; never points at a tombstone)
    meta_of: Dict[NodeId, int]
    #: the evaluator built over exactly this snapshot
    pee: object
    #: monotonically increasing layout version; bumped on every publish
    generation: int = 0
    #: meta ids whose slot is ``None`` (removed or compacted away)
    tombstones: FrozenSet[int] = frozenset()
    #: live meta ids created by incremental growth (compaction candidates)
    incremental_meta_ids: FrozenSet[int] = frozenset()

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def live_metas(self) -> List[MetaDocument]:
        """The live meta documents in ascending ``meta_id`` order."""
        return [meta for meta in self.slots if meta is not None]

    def iter_live(self) -> Iterator[MetaDocument]:
        return (meta for meta in self.slots if meta is not None)

    @property
    def live_count(self) -> int:
        return sum(1 for meta in self.slots if meta is not None)

    @property
    def next_meta_id(self) -> int:
        """The id the next incrementally added meta document gets."""
        return len(self.slots)

    def meta(self, meta_id: int) -> MetaDocument:
        """The live meta document with this id (``KeyError`` on tombstones)."""
        if meta_id >= len(self.slots) or self.slots[meta_id] is None:
            raise KeyError(f"meta document {meta_id} is not part of this layout")
        return self.slots[meta_id]

    def meta_document_of(self, node: NodeId) -> MetaDocument:
        return self.slots[self.meta_of[node]]

    def compaction_candidates(self) -> List[int]:
        """Live incremental meta ids, ascending (what ``compact`` merges)."""
        return sorted(
            meta_id
            for meta_id in self.incremental_meta_ids
            if meta_id < len(self.slots) and self.slots[meta_id] is not None
        )

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def with_pee(self, pee: object) -> "IndexLayout":
        """The same layout with a replaced evaluator (same generation).

        Benchmarks wrap the evaluator (e.g. a latency-injecting decorator)
        without changing what is indexed; the generation is deliberately
        kept, because cached results remain valid.
        """
        return replace(self, pee=pee)


__all__ = ["IndexLayout"]
