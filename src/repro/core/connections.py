"""Generalized connection models (sections 1.1 and 7).

Beyond plain descendants, the paper sketches richer notions of relevance-
bearing connectivity: "paths that include at least one link traversal could
be penalized, representing the notion that information within one document
normally is more coherent", and "one could also consider inverting the
direction, i.e., consider also actor/acts_in/movie relevant (with a lower
similarity)".  Section 7 lists "more general concepts of connectivity" as
planned work.

:class:`ConnectionModel` assigns a cost to each traversal kind — tree edge,
link edge, and (optionally) their reversals — and
:class:`ConnectionEvaluator` runs a Dijkstra search under that model over
the typed element graph, streaming ``(node, cost)`` in ascending cost.
Because edge costs differ by type, per-meta-document hop indexes cannot
answer these queries directly; the evaluator works on the collection graph,
which is exactly why the paper defers this generality to future work while
optimizing the uniform-cost case through FliX.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.collection.collection import NodeId, XmlCollection


@dataclass(frozen=True)
class ConnectionModel:
    """Traversal costs defining a connection semantics.

    ``None`` disables a traversal direction.  The defaults reproduce plain
    descendants-or-self (everything costs one hop, no reversals).
    """

    tree_cost: float = 1.0
    link_cost: float = 1.0
    reverse_tree_cost: Optional[float] = None
    reverse_link_cost: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("tree_cost", "link_cost"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("reverse_tree_cost", "reverse_link_cost"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when enabled")

    @classmethod
    def descendants(cls) -> "ConnectionModel":
        """Plain descendants-or-self: the FliX default semantics."""
        return cls()

    @classmethod
    def link_penalized(cls, penalty: float = 2.0) -> "ConnectionModel":
        """Cross-document information is less coherent: links cost more."""
        return cls(link_cost=penalty)

    @classmethod
    def undirected(
        cls,
        reverse_penalty: float = 2.0,
        link_penalty: float = 1.0,
    ) -> "ConnectionModel":
        """Both directions traversable; going against an edge costs more.

        This is the "actor/acts_in/movie" relaxation: a movie is connected
        to its actor's other movies even though no directed path exists.
        """
        return cls(
            link_cost=link_penalty,
            reverse_tree_cost=reverse_penalty,
            reverse_link_cost=reverse_penalty * link_penalty,
        )


class ConnectionEvaluator:
    """Cost-ordered connection search over the typed element graph."""

    def __init__(self, collection: XmlCollection) -> None:
        self._collection = collection

    def _moves(
        self,
        node: NodeId,
        model: ConnectionModel,
    ) -> Iterator[Tuple[NodeId, float]]:
        collection = self._collection
        for succ in collection.graph.successors(node):
            if collection.is_link_edge(node, succ):
                yield succ, model.link_cost
            else:
                yield succ, model.tree_cost
        if model.reverse_tree_cost is not None or model.reverse_link_cost is not None:
            for pred in collection.graph.predecessors(node):
                if collection.is_link_edge(pred, node):
                    if model.reverse_link_cost is not None:
                        yield pred, model.reverse_link_cost
                else:
                    if model.reverse_tree_cost is not None:
                        yield pred, model.reverse_tree_cost

    def find_connected(
        self,
        start: NodeId,
        tag: Optional[str] = None,
        model: Optional[ConnectionModel] = None,
        max_cost: Optional[float] = None,
        include_self: bool = False,
    ) -> Iterator[Tuple[NodeId, float]]:
        """Stream ``(node, cost)`` in ascending connection cost.

        Exact (Dijkstra), so unlike the FliX descendant stream there is no
        ordering approximation — the price is that no precomputed index
        accelerates it.
        """
        model = model or ConnectionModel.descendants()
        if start not in self._collection.graph:
            raise KeyError(f"node {start} is not part of the collection")
        best: Dict[NodeId, float] = {start: 0.0}
        settled = set()
        counter = 0
        heap: List[Tuple[float, int, NodeId]] = [(0.0, 0, start)]
        while heap:
            cost, _, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            if max_cost is not None and cost > max_cost:
                return
            matches = tag is None or self._collection.tag(node) == tag
            if matches and (include_self or node != start):
                yield node, cost
            for succ, step in self._moves(node, model):
                candidate = cost + step
                if max_cost is not None and candidate > max_cost:
                    continue
                if succ not in best or candidate < best[succ]:
                    best[succ] = candidate
                    counter += 1
                    heapq.heappush(heap, (candidate, counter, succ))

    def connection_cost(
        self,
        source: NodeId,
        target: NodeId,
        model: Optional[ConnectionModel] = None,
        max_cost: Optional[float] = None,
    ) -> Optional[float]:
        """Cheapest connection cost between two elements, or ``None``."""
        for node, cost in self.find_connected(
            source, model=model, max_cost=max_cost, include_self=True
        ):
            if node == target:
                return cost
        return None
