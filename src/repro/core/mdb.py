"""The Meta Document Builder (MDB), section 4.1 and 4.3.

Finding truly optimal meta documents is NP-hard (the paper reduces it to set
cover), so "each configuration comes with its own approximation algorithm".
The four algorithms here are the paper's:

``naive``
    Each XML document is its own meta document, all intra-document structure
    (including intra-document links) represented in its index.

``maximal_ppo``
    PPO is the most efficient index but needs tree-shaped data.  The MDB
    keeps every document's tree edges, discards intra-document links, and
    greedily accepts inter-document links that point at a document root and
    keep the grown partition acyclic with unique parents — a spanning-forest
    construction over documents (union-find with a root-taken constraint).
    With ``single_tree`` (the paper's variant 1) everything lands in one
    forest-shaped meta document; otherwise (variant 2) each connected group
    becomes a meta document.

``unconnected_hopi``
    The first step of HOPI's divide-and-conquer build: size-bounded
    partitions of the element graph with few crossing edges; the algorithm
    stops "after the second step and uses the partitions as meta documents".

``hybrid``
    Documents whose internal structure is already tree-shaped participate in
    the Maximal-PPO forest construction; documents with intra-document links
    are pooled and partitioned like Unconnected HOPI.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.collection.collection import NodeId, XmlCollection
from repro.core.config import FlixConfig
from repro.core.meta_document import Edge, MetaDocumentSpec
from repro.graph.partition import partition_graph


class _UnionFind:
    """Union-find over document names (path compression + union by size)."""

    def __init__(self, items) -> None:
        self._parent = {item: item for item in items}
        self._size = {item: 1 for item in items}

    def find(self, item):
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]


class MetaDocumentBuilder:
    """Builds meta-document specs for a collection under a configuration."""

    def __init__(self, collection: XmlCollection, config: FlixConfig) -> None:
        self._collection = collection
        self._config = config

    def build_specs(
        self,
        documents: Optional[Set[str]] = None,
        first_id: int = 0,
    ) -> List[MetaDocumentSpec]:
        """Meta-document specs for ``documents`` (default: the whole
        collection), numbered from ``first_id``.

        The subset form is what the automatic subcollection partitioner
        (:mod:`repro.core.subcollections`) uses to apply a different
        configuration to each homogeneous part of the collection.
        """
        if documents is None:
            documents = set(self._collection.documents)
        else:
            unknown = documents - set(self._collection.documents)
            if unknown:
                raise KeyError(f"unknown documents: {sorted(unknown)[:3]}")
        strategy = self._config.mdb_strategy
        if strategy == "naive":
            specs = self._naive(documents)
        elif strategy == "maximal_ppo":
            specs = self._maximal_ppo(documents)
        elif strategy == "unconnected_hopi":
            specs = self._unconnected_hopi(documents)
        elif strategy == "hybrid":
            specs = self._hybrid(documents)
        else:
            raise AssertionError(f"unreachable MDB strategy {strategy!r}")
        if first_id:
            specs = [
                MetaDocumentSpec(first_id + i, spec.nodes, spec.internal_edges)
                for i, spec in enumerate(specs)
            ]
        return specs

    # ------------------------------------------------------------------
    # naive
    # ------------------------------------------------------------------
    def _naive(self, documents: Set[str]) -> List[MetaDocumentSpec]:
        collection = self._collection
        specs: List[MetaDocumentSpec] = []
        for name in sorted(documents):
            nodes = set(collection.document_nodes(name))
            internal = [
                (u, v)
                for u in sorted(nodes)
                for v in sorted(collection.graph.successors(u))
                if v in nodes
            ]
            specs.append(MetaDocumentSpec(len(specs), nodes, internal))
        return specs

    # ------------------------------------------------------------------
    # maximal PPO
    # ------------------------------------------------------------------
    def _tree_compatible_links(self, documents: Set[str]) -> List[Edge]:
        """Inter-document link edges that point at a document root.

        Only such links can be represented under PPO: a link into the middle
        of another document would give its target a second parent.
        """
        collection = self._collection
        roots = {collection.document_root(name) for name in documents}
        candidates = []
        for u, v in sorted(collection.link_edges):
            info_u, info_v = collection.info(u), collection.info(v)
            if info_u.document == info_v.document:
                continue
            if info_u.document in documents and info_v.document in documents:
                if v in roots:
                    candidates.append((u, v))
        return candidates

    def _grow_ppo_forest(
        self,
        documents: Set[str],
    ) -> Tuple[List[Edge], _UnionFind]:
        """Greedy spanning forest over ``documents``; returns accepted links."""
        collection = self._collection
        union = _UnionFind(sorted(documents))
        root_taken: Dict[str, bool] = {name: False for name in documents}
        accepted: List[Edge] = []
        for u, v in self._tree_compatible_links(documents):
            doc_u = collection.info(u).document
            doc_v = collection.info(v).document
            if root_taken[doc_v]:
                continue  # target root already has a parent link
            if union.find(doc_u) == union.find(doc_v):
                continue  # would close a cycle
            union.union(doc_u, doc_v)
            root_taken[doc_v] = True
            accepted.append((u, v))
        return accepted, union

    def _document_tree_edges(self, name: str) -> List[Edge]:
        """The parent-child edges of one document (intra links excluded)."""
        collection = self._collection
        nodes = set(collection.document_nodes(name))
        return [
            (u, v)
            for u in sorted(nodes)
            for v in sorted(collection.graph.successors(u))
            if v in nodes and not collection.is_link_edge(u, v)
        ]

    def _maximal_ppo(self, documents: Set[str]) -> List[MetaDocumentSpec]:
        collection = self._collection
        accepted, union = self._grow_ppo_forest(documents)

        if self._config.single_tree:
            # Variant 1: everything in one forest-shaped meta document; all
            # non-accepted links are residual.
            nodes: Set[NodeId] = set()
            for name in documents:
                nodes.update(collection.document_nodes(name))
            internal: List[Edge] = []
            for name in sorted(documents):
                internal.extend(self._document_tree_edges(name))
            internal.extend(accepted)
            return [MetaDocumentSpec(0, nodes, internal)]

        # Variant 2: one meta document per connected document group.
        groups: Dict[str, List[str]] = {}
        for name in sorted(documents):
            groups.setdefault(union.find(name), []).append(name)
        accepted_by_group: Dict[str, List[Edge]] = {}
        for u, v in accepted:
            group = union.find(collection.info(u).document)
            accepted_by_group.setdefault(group, []).append((u, v))

        specs: List[MetaDocumentSpec] = []
        for group in sorted(groups):
            nodes: Set[NodeId] = set()
            internal = []
            for name in groups[group]:
                nodes.update(collection.document_nodes(name))
                internal.extend(self._document_tree_edges(name))
            internal.extend(accepted_by_group.get(group, []))
            specs.append(MetaDocumentSpec(len(specs), nodes, internal))
        return specs

    # ------------------------------------------------------------------
    # unconnected HOPI
    # ------------------------------------------------------------------
    def _unconnected_hopi(self, documents: Set[str]) -> List[MetaDocumentSpec]:
        collection = self._collection
        if documents == set(collection.documents):
            graph = collection.graph
        else:
            pool: Set[NodeId] = set()
            for name in documents:
                pool.update(collection.document_nodes(name))
            graph = collection.graph.subgraph(pool)
        partitioning = partition_graph(graph, self._config.partition_size)
        return self._specs_from_blocks(partitioning.blocks)

    def _specs_from_blocks(self, blocks, first_id: int = 0) -> List[MetaDocumentSpec]:
        collection = self._collection
        specs = []
        for offset, block in enumerate(blocks):
            internal = [
                (u, v)
                for u in sorted(block)
                for v in sorted(collection.graph.successors(u))
                if v in block
            ]
            specs.append(MetaDocumentSpec(first_id + offset, set(block), internal))
        return specs

    # ------------------------------------------------------------------
    # hybrid partitions
    # ------------------------------------------------------------------
    def _ppo_incompatible_documents(self, documents: Set[str]) -> Set[str]:
        """Documents PPO partitions cannot absorb.

        A document is routed to the Unconnected-HOPI pool when (a) it has
        intra-document links (its own element graph is not a tree), (b) it
        is the target of a *deep* link into a non-root element (that element
        would get a second parent), or (c) its root is shared by two or
        more incoming links.  The remaining documents are exactly those the
        greedy Maximal-PPO forest can work with.
        """
        collection = self._collection
        docs: Set[str] = set()
        root_link_count: Dict[str, int] = {}
        for u, v in collection.link_edges:
            doc_u = collection.info(u).document
            doc_v = collection.info(v).document
            if doc_v not in documents:
                continue
            if doc_u == doc_v:
                docs.add(doc_u)
                continue
            if v == collection.document_root(doc_v):
                root_link_count[doc_v] = root_link_count.get(doc_v, 0) + 1
            else:
                docs.add(doc_v)  # deep link target
        for name, count in root_link_count.items():
            if count >= 2:
                docs.add(name)
        return docs

    def _hybrid(self, documents: Set[str]) -> List[MetaDocumentSpec]:
        collection = self._collection
        linked = self._ppo_incompatible_documents(documents)
        tree_docs = {name for name in documents if name not in linked}
        linked_docs = documents - tree_docs

        specs: List[MetaDocumentSpec] = []
        if tree_docs:
            accepted, union = self._grow_ppo_forest(tree_docs)
            groups: Dict[str, List[str]] = {}
            for name in sorted(tree_docs):
                groups.setdefault(union.find(name), []).append(name)
            accepted_by_group: Dict[str, List[Edge]] = {}
            for u, v in accepted:
                group = union.find(collection.info(u).document)
                accepted_by_group.setdefault(group, []).append((u, v))
            for group in sorted(groups):
                nodes: Set[NodeId] = set()
                internal: List[Edge] = []
                for name in groups[group]:
                    nodes.update(collection.document_nodes(name))
                    internal.extend(self._document_tree_edges(name))
                internal.extend(accepted_by_group.get(group, []))
                specs.append(MetaDocumentSpec(len(specs), nodes, internal))

        if linked_docs:
            pool: Set[NodeId] = set()
            for name in linked_docs:
                pool.update(collection.document_nodes(name))
            sub = collection.graph.subgraph(pool)
            partitioning = partition_graph(sub, self._config.partition_size)
            specs.extend(
                self._specs_from_blocks(partitioning.blocks, first_id=len(specs))
            )
        return specs
