"""FliX configurations (section 4.3).

A configuration bundles a meta-document building strategy with the set of
index strategies the ISS may choose from, plus the tuning knobs both need.
The four predefined configurations are the paper's:

* **Naive** — one meta document per XML document;
* **Maximal PPO** — greedy tree-shaped partitions indexed with PPO
  (variant 1, ``single_tree=True``, keeps the whole collection in one
  forest-shaped meta document instead);
* **Unconnected HOPI** — the first two steps of HOPI's divide-and-conquer
  builder: size-bounded partitions, each indexed with HOPI;
* **Hybrid Partitions** — tree partitions with PPO where possible,
  Unconnected HOPI for the densely linked remainder.

"In our current implementation, an administrator must decide which
configuration to use" (section 4.1) — :func:`FlixConfig.recommend` is our
step toward the automatic choice the paper leaves as future work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: meta-document building strategies the MDB understands
MDB_STRATEGIES = ("naive", "maximal_ppo", "unconnected_hopi", "hybrid")

#: build-executor kinds the Index Builder understands
BUILD_EXECUTORS = ("auto", "process", "thread", "serial")


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault-tolerance knobs: storage retries, circuit breaking, query
    budgets, and build-time fallback (see ``docs/RESILIENCE.md``).

    Attached to a configuration via :attr:`FlixConfig.resilience` (or
    :meth:`FlixConfig.with_resilience`); ``None`` there means the
    resilience layer is fully disabled and FliX behaves exactly as
    before — every knob here only matters once the config is present.
    """

    # -- storage retry (see repro.storage.resilient.RetryPolicy) --------
    max_attempts: int = 4
    backoff_base_seconds: float = 0.002
    backoff_max_seconds: float = 0.25
    backoff_jitter: float = 0.5
    retry_seed: int = 0
    # -- per-table circuit breaker --------------------------------------
    breaker_failure_threshold: int = 5
    breaker_reset_seconds: float = 30.0
    # -- query budgets (graceful degradation, section 5's run-time side) --
    #: wall-clock deadline per query; exceeded -> stop, flag ``truncated``
    query_deadline_seconds: Optional[float] = None
    #: residual-link traversals allowed per query (cyclic link graphs!)
    max_link_hops: Optional[int] = None
    #: priority-queue pops allowed per query
    max_queue_pops: Optional[int] = None
    #: whether the PEE may fall back to on-the-fly BFS over the element
    #: graph when a meta document's index is missing or failing
    allow_query_fallback: bool = True
    # -- build-time resilience ------------------------------------------
    #: extra in-place attempts for a failed per-meta index build before
    #: the strategy fallback engages
    build_retry_attempts: int = 1
    #: safe strategy rebuilt per-meta after the selected one fails
    #: (``None`` disables the fallback)
    build_fallback_strategy: Optional[str] = "transitive_closure"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_seconds < 0 or self.backoff_max_seconds < 0:
            raise ValueError("backoff delays must be non-negative")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_reset_seconds < 0:
            raise ValueError("breaker_reset_seconds must be non-negative")
        for name in ("query_deadline_seconds", "max_link_hops", "max_queue_pops"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set")
        if self.build_retry_attempts < 0:
            raise ValueError("build_retry_attempts must be non-negative")

    # ------------------------------------------------------------------
    # adapters for the storage layer
    # ------------------------------------------------------------------
    def retry_policy(self):
        from repro.storage.resilient import RetryPolicy

        return RetryPolicy(
            max_attempts=self.max_attempts,
            base_delay=self.backoff_base_seconds,
            max_delay=self.backoff_max_seconds,
            jitter=self.backoff_jitter,
            seed=self.retry_seed,
        )

    def breaker_policy(self):
        from repro.storage.resilient import BreakerPolicy

        return BreakerPolicy(
            failure_threshold=self.breaker_failure_threshold,
            reset_timeout=self.breaker_reset_seconds,
        )

    # ------------------------------------------------------------------
    # persistence (manifest round-trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ResilienceConfig":
        known = {f.name for f in cls.__dataclass_fields__.values()}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class CacheConfig:
    """Result/connection-cache knobs (see ``docs/SERVING.md``).

    Attached to a configuration via :attr:`FlixConfig.cache` (or
    :meth:`FlixConfig.with_cache`); ``None`` there means no cache at all.
    The cache itself is a :class:`repro.serve.cache.ShardedLRUCache`:
    ``maxsize`` bounds the total entry count, ``shards`` sets how many
    independently locked LRU shards share it (1 = exact global LRU
    order; more shards = less lock contention under concurrent serving).
    """

    #: total cached entries across all shards (full query result lists
    #: and connection cost/test scalars alike)
    maxsize: int = 1024
    #: independently locked LRU shards (clamped to ``maxsize``)
    shards: int = 8

    def __post_init__(self) -> None:
        if self.maxsize < 1:
            raise ValueError("maxsize must be positive")
        if self.shards < 1:
            raise ValueError("shards must be positive")

    def build(self):
        """Materialize the configured :class:`ShardedLRUCache`."""
        from repro.serve.cache import ShardedLRUCache

        return ShardedLRUCache(maxsize=self.maxsize, shards=self.shards)

    # ------------------------------------------------------------------
    # persistence (manifest round-trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CacheConfig":
        known = {f.name for f in cls.__dataclass_fields__.values()}
        return cls(**{k: v for k, v in data.items() if k in known})


#: probe orderings the planner understands: ``fifo`` keeps the paper's
#: fixed discipline (pruning only), ``cost`` reorders same-distance probes
#: by estimated selectivity where provably safe
PLANNER_ORDERS = ("fifo", "cost")


@dataclass(frozen=True)
class PlannerConfig:
    """Cost-based probe-planner knobs (see ``docs/PLANNING.md``).

    Attached to a configuration via :attr:`FlixConfig.planner` (or
    :meth:`FlixConfig.with_planner`); ``None`` there means the PEE runs
    the paper's fixed Figure-4 discipline untouched.  The planner never
    changes a query's *result set* — only the expansion order and the
    amount of provably-covered work it skips (``docs/PLANNING.md``
    carries the safety argument).
    """

    #: skip probes whose contribution is provably covered before they are
    #: expanded (duplicate heap entries for an already-popped node, and
    #: re-pushes at no-better priority); byte-identical result streams
    prune: bool = True
    #: probe ordering: ``"fifo"`` preserves the fixed discipline's exact
    #: result order; ``"cost"`` additionally rank-orders same-distance
    #: probes by the per-meta selectivity statistics where that cannot
    #: change the result set (unbounded-distance searches only)
    order: str = "fifo"
    #: collect and persist per-meta selectivity statistics (the planner's
    #: sidecar, ``planner_stats.json``); off = prune-only planning
    statistics: bool = True
    #: rounds for the Cohen TC-size estimator over the meta link graph
    rounds: int = 8

    def __post_init__(self) -> None:
        if self.order not in PLANNER_ORDERS:
            raise ValueError(
                f"unknown planner order {self.order!r}; "
                f"expected one of {PLANNER_ORDERS}"
            )
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")

    # ------------------------------------------------------------------
    # persistence (manifest round-trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "PlannerConfig":
        known = {f.name for f in cls.__dataclass_fields__.values()}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class FlixConfig:
    """One configuration of the framework."""

    name: str
    mdb_strategy: str
    #: strategies (by registry name) the ISS may choose from, in preference order
    allowed_strategies: Tuple[str, ...]
    #: partition node budget for unconnected_hopi / hybrid
    partition_size: int = 5000
    #: maximal_ppo variant 1: a single forest meta document instead of partitions
    single_tree: bool = False
    #: ISS budget: maximum estimated closure pairs per node before HOPI is
    #: considered too expensive and the selector falls back (section 2.2:
    #: "HOPI's size may grow large for large document sets")
    hopi_pairs_per_node_budget: float = 256.0
    #: whether the expected query load is dominated by long descendants-or-
    #: self paths (the structural-vagueness scenario of section 1.1); biases
    #: the ISS toward HOPI over APEX
    expect_long_paths: bool = True
    #: worker count for the Index Builder's per-meta-document builds
    #: (1 = sequential); the merged result is identical at any value
    jobs: int = 1
    #: how jobs > 1 builds execute: "process" (CPU-bound default), "thread"
    #: (shared-object fallback), "serial", or "auto" (process when the
    #: hand-off pickles, thread otherwise)
    build_executor: str = "auto"
    #: collect metrics and query traces (see ``repro.obs``); turning this
    #: off makes ``Flix.metrics()`` empty and skips all instrumentation
    #: branches, so disabled runs pay near-zero overhead
    observability: bool = True
    #: fault-tolerance layer (storage retry/backoff + circuit breaker,
    #: query budgets with graceful degradation, build fallback); ``None``
    #: disables it entirely — see ``docs/RESILIENCE.md``
    resilience: Optional[ResilienceConfig] = None
    #: shared result/connection cache for the query phase (sharded LRU
    #: with generation-based invalidation, see ``docs/SERVING.md``);
    #: ``None`` disables caching — the classic zero-memory behaviour
    cache: Optional[CacheConfig] = None
    #: cost-based probe planner for the PEE (probe ordering + covered-
    #: probe pruning driven by per-meta selectivity statistics, see
    #: ``docs/PLANNING.md``); ``None`` keeps the paper's fixed Figure-4
    #: discipline — the classic behaviour
    planner: Optional[PlannerConfig] = None
    #: serve probes from the flat columnar index layout
    #: (``repro.indexes.packed``, see ``docs/DATA_LAYOUT.md``): indexes
    #: are compiled to FLXPACK blobs after every build/rebuild, saves
    #: write mmap-able ``.pack`` files, and loads attach them lazily.
    #: Answers are byte-identical to the object layout either way.
    packed: bool = False

    def __post_init__(self) -> None:
        if self.mdb_strategy not in MDB_STRATEGIES:
            raise ValueError(
                f"unknown MDB strategy {self.mdb_strategy!r}; "
                f"expected one of {MDB_STRATEGIES}"
            )
        if self.partition_size < 1:
            raise ValueError("partition_size must be positive")
        if not self.allowed_strategies:
            raise ValueError("at least one index strategy must be allowed")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.build_executor not in BUILD_EXECUTORS:
            raise ValueError(
                f"unknown build executor {self.build_executor!r}; "
                f"expected one of {BUILD_EXECUTORS}"
            )

    def with_jobs(
        self, jobs: int, build_executor: Optional[str] = None
    ) -> "FlixConfig":
        """This configuration with a different build parallelism."""
        from dataclasses import replace

        if build_executor is None:
            return replace(self, jobs=jobs)
        return replace(self, jobs=jobs, build_executor=build_executor)

    def with_observability(self, enabled: bool) -> "FlixConfig":
        """This configuration with observability on or off."""
        from dataclasses import replace

        return replace(self, observability=enabled)

    def with_resilience(
        self, resilience: Optional[ResilienceConfig] = None, **overrides
    ) -> "FlixConfig":
        """This configuration with the fault-tolerance layer enabled.

        With no arguments the defaults apply; keyword overrides build a
        custom :class:`ResilienceConfig` (``with_resilience(max_link_hops=
        1000)``); use :meth:`without_resilience` to disable the layer.
        """
        from dataclasses import replace

        if resilience is None and overrides:
            resilience = ResilienceConfig(**overrides)
        elif resilience is None and not overrides:
            resilience = ResilienceConfig()
        return replace(self, resilience=resilience)

    def without_resilience(self) -> "FlixConfig":
        """This configuration with the fault-tolerance layer disabled."""
        from dataclasses import replace

        return replace(self, resilience=None)

    def with_packed(self, packed: bool = True) -> "FlixConfig":
        """This configuration with the packed index layout on (or off)."""
        from dataclasses import replace

        return replace(self, packed=packed)

    def with_cache(
        self, cache: Optional[CacheConfig] = None, **overrides
    ) -> "FlixConfig":
        """This configuration with the shared query cache enabled.

        With no arguments the defaults apply; keyword overrides build a
        custom :class:`CacheConfig` (``with_cache(maxsize=4096,
        shards=16)``); use :meth:`without_cache` to disable caching.
        """
        from dataclasses import replace

        if cache is None:
            cache = CacheConfig(**overrides) if overrides else CacheConfig()
        return replace(self, cache=cache)

    def without_cache(self) -> "FlixConfig":
        """This configuration with the shared query cache disabled."""
        from dataclasses import replace

        return replace(self, cache=None)

    def with_planner(
        self, planner: Optional[PlannerConfig] = None, **overrides
    ) -> "FlixConfig":
        """This configuration with the cost-based probe planner enabled.

        With no arguments the defaults apply; keyword overrides build a
        custom :class:`PlannerConfig` (``with_planner(order="cost")``);
        use :meth:`without_planner` to restore the fixed discipline.
        """
        from dataclasses import replace

        if planner is None:
            planner = (
                PlannerConfig(**overrides) if overrides else PlannerConfig()
            )
        return replace(self, planner=planner)

    def without_planner(self) -> "FlixConfig":
        """This configuration with the probe planner disabled."""
        from dataclasses import replace

        return replace(self, planner=None)

    # ------------------------------------------------------------------
    # the paper's predefined configurations
    # ------------------------------------------------------------------
    @classmethod
    def naive(cls) -> "FlixConfig":
        """One meta document per document; PPO where tree-shaped, else HOPI/APEX."""
        return cls(
            name="naive",
            mdb_strategy="naive",
            allowed_strategies=("ppo", "hopi", "apex"),
        )

    @classmethod
    def maximal_ppo(cls, single_tree: bool = False) -> "FlixConfig":
        """Greedy tree partitions, all indexed with PPO."""
        return cls(
            name="maximal_ppo" + ("_single" if single_tree else ""),
            mdb_strategy="maximal_ppo",
            allowed_strategies=("ppo",),
            single_tree=single_tree,
        )

    @classmethod
    def unconnected_hopi(cls, partition_size: int = 5000) -> "FlixConfig":
        """Size-bounded partitions, all indexed with HOPI."""
        return cls(
            name=f"unconnected_hopi_{partition_size}",
            mdb_strategy="unconnected_hopi",
            allowed_strategies=("hopi",),
            partition_size=partition_size,
        )

    @classmethod
    def hybrid(cls, partition_size: int = 5000) -> "FlixConfig":
        """Tree partitions with PPO + Unconnected HOPI for the rest."""
        return cls(
            name=f"hybrid_{partition_size}",
            mdb_strategy="hybrid",
            allowed_strategies=("ppo", "hopi", "apex"),
            partition_size=partition_size,
        )

    # ------------------------------------------------------------------
    # automatic configuration (the paper's "ultimate goal", section 4.1)
    # ------------------------------------------------------------------
    @classmethod
    def recommend(
        cls,
        link_density: float,
        intra_document_links: int,
        mean_document_size: float,
        partition_size: int = 5000,
        intra_link_fraction: Optional[float] = None,
    ) -> "FlixConfig":
        """Heuristic configuration choice from collection statistics.

        Mirrors the per-configuration applicability notes of section 4.3:
        large documents whose links stay *inside* documents (the INEX
        profile) -> Naive; few links overall -> Maximal PPO; links
        everywhere -> Unconnected HOPI; mixed -> Hybrid.

        ``intra_link_fraction`` is the share of links that are
        intra-document (``None`` when unknown); it is the signal that
        distinguishes the INEX profile from a densely *inter*-linked web.
        """
        if link_density == 0.0:
            return cls.maximal_ppo()
        if (
            intra_link_fraction is not None
            and intra_link_fraction >= 0.7
            and mean_document_size >= 50
        ):
            # INEX profile: "documents are relatively large, the number of
            # inter-document links is small, and queries usually do not
            # cross document boundaries" (section 4.3)
            return cls.naive()
        if intra_document_links == 0 and link_density < 0.01:
            return cls.maximal_ppo()
        if mean_document_size > 1000 and link_density < 0.005:
            return cls.naive()
        if link_density > 0.05:
            return cls.unconnected_hopi(partition_size)
        return cls.hybrid(partition_size)

    @classmethod
    def recommend_for(cls, collection, partition_size: int = 5000) -> "FlixConfig":
        """:meth:`recommend`, fed from a collection's measured statistics.

        This is what ``Flix.build(collection)`` uses when no configuration
        is given; exposed so callers (the CLI, benchmarks) can obtain the
        recommendation and adjust knobs before building.
        """
        from repro.collection.stats import collect_statistics

        stats = collect_statistics(collection)
        return cls.recommend(
            link_density=stats.link_density,
            intra_document_links=stats.intra_document_links,
            mean_document_size=stats.mean_document_size,
            partition_size=partition_size,
            intra_link_fraction=stats.intra_link_fraction,
        )


def apply_planner_env(config: FlixConfig) -> FlixConfig:
    """Apply the ``FLIX_PLANNER`` environment override to ``config``.

    ``FLIX_PLANNER=0`` forces the probe planner off, any other non-empty
    value forces the default :class:`PlannerConfig` on, and unset/empty
    leaves the configuration untouched — the same pattern as
    ``FLIX_PACKED``/``FLIX_FAULT_PLAN``, so CI parity jobs can flip the
    knob without editing call sites.  Honoured by ``Flix.build`` and
    ``Flix.load``.
    """
    import os

    value = os.environ.get("FLIX_PLANNER", "")
    if value == "":
        return config
    if value == "0":
        if config.planner is not None:
            return config.without_planner()
        return config
    if config.planner is None:
        return config.with_planner()
    return config
