"""On-the-fly BFS fallback index for degraded meta documents.

When a meta document's index is missing (a failed per-meta build that the
builder could not repair) or starts raising
:class:`~repro.storage.errors.StorageError` at query time, the PEE swaps
in a :class:`BfsFallbackIndex`: the same :class:`~repro.indexes.base
.PathIndex` query interface, answered by breadth-first search over the
meta document's *internal* edges reconstructed from the collection graph.

The reconstruction subtracts residual links (``meta.outgoing_links``)
from the induced subgraph, so the fallback sees exactly the edge set the
real index represented — reachability and distances match, only the cost
profile changes (per-probe BFS instead of precomputed lookups).  Queries
that touch a fallback are flagged ``degraded`` on their
:class:`~repro.core.pee.QueryStats`, never silently slower.

Per-source BFS results are memoized, so repeated probes against the same
entry element (the common case: coverage checks + probe + link subset all
share the entry) pay for one traversal.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from dataclasses import dataclass
from typing import Callable, Union

from repro.graph.digraph import Digraph
from repro.indexes.base import NodeId, ScoredNode, sort_scored


@dataclass(frozen=True)
class FallbackContext:
    """What the PEE needs to improvise an index: the collection's element
    graph and a node -> tag lookup (a callable or a mapping)."""

    graph: Digraph
    tags: Union[Callable[[NodeId], str], Mapping[NodeId, str]]

    def build_for(self, meta) -> "BfsFallbackIndex":
        return BfsFallbackIndex.for_meta(meta, self.graph, self.tags)


class BfsFallbackIndex:
    """BFS-backed stand-in for a meta document's unavailable index.

    Implements the read side of the :class:`~repro.indexes.base.PathIndex`
    contract (``reachable`` / ``distance`` / ``find_*_by_tag`` /
    ``reachable_subset``); it is never persisted and owns no storage
    backend.
    """

    strategy_name = "bfs_fallback"

    def __init__(
        self,
        nodes: Iterable[NodeId],
        forward: Mapping[NodeId, Iterable[NodeId]],
        tags: Mapping[NodeId, str],
    ) -> None:
        self._nodes = frozenset(nodes)
        self._forward: Dict[NodeId, Tuple[NodeId, ...]] = {
            node: tuple(sorted(forward.get(node, ()))) for node in self._nodes
        }
        reverse: Dict[NodeId, List[NodeId]] = {node: [] for node in self._nodes}
        for source, targets in self._forward.items():
            for target in targets:
                reverse[target].append(source)
        self._reverse: Dict[NodeId, Tuple[NodeId, ...]] = {
            node: tuple(sorted(preds)) for node, preds in reverse.items()
        }
        self._tags = {node: tags[node] for node in self._nodes}
        # memoized per-source distance maps (descendants / ancestors)
        self._down: Dict[NodeId, Dict[NodeId, int]] = {}
        self._up: Dict[NodeId, Dict[NodeId, int]] = {}

    @classmethod
    def for_meta(cls, meta, graph: Digraph, tags) -> "BfsFallbackIndex":
        """Rebuild the internal-edge view of ``meta`` from the collection.

        Internal edges are the collection edges between two of the meta
        document's nodes *minus* its residual links: a residual link is
        followed by the PEE itself, so representing it here too would
        shortcut distances the real index never knew.
        """
        nodes = meta.nodes
        forward: Dict[NodeId, List[NodeId]] = {}
        residual = meta.outgoing_links
        for node in nodes:
            residual_targets = residual.get(node, ())
            forward[node] = [
                succ
                for succ in graph.successors(node)
                if succ in nodes and succ not in residual_targets
            ]
        lookup = tags if callable(tags) else tags.__getitem__
        return cls(nodes, forward, {node: lookup(node) for node in nodes})

    # ------------------------------------------------------------------
    # traversal core
    # ------------------------------------------------------------------
    def _distances(self, source: NodeId, forward: bool) -> Dict[NodeId, int]:
        cache = self._down if forward else self._up
        found = cache.get(source)
        if found is not None:
            return found
        adjacency = self._forward if forward else self._reverse
        found = {source: 0}
        frontier = [source]
        depth = 0
        while frontier:
            depth += 1
            next_frontier: List[NodeId] = []
            for node in frontier:
                for neighbour in adjacency[node]:
                    if neighbour not in found:
                        found[neighbour] = depth
                        next_frontier.append(neighbour)
            frontier = next_frontier
        cache[source] = found
        return found

    def _require(self, node: NodeId) -> None:
        if node not in self._nodes:
            raise KeyError(f"node {node} is not part of this meta document")

    # ------------------------------------------------------------------
    # PathIndex query interface
    # ------------------------------------------------------------------
    def reachable(self, source: NodeId, target: NodeId) -> bool:
        if source not in self._nodes or target not in self._nodes:
            return False
        return target in self._distances(source, forward=True)

    def distance(self, source: NodeId, target: NodeId) -> Optional[int]:
        if source not in self._nodes or target not in self._nodes:
            return None
        return self._distances(source, forward=True).get(target)

    def find_descendants_by_tag(
        self, source: NodeId, tag: Optional[str]
    ) -> List[ScoredNode]:
        self._require(source)
        return sort_scored(
            (node, dist)
            for node, dist in self._distances(source, forward=True).items()
            if tag is None or self._tags[node] == tag
        )

    def find_ancestors_by_tag(
        self, source: NodeId, tag: Optional[str]
    ) -> List[ScoredNode]:
        self._require(source)
        return sort_scored(
            (node, dist)
            for node, dist in self._distances(source, forward=False).items()
            if tag is None or self._tags[node] == tag
        )

    def reachable_subset(
        self, source: NodeId, candidates: Iterable[NodeId]
    ) -> List[ScoredNode]:
        distances = self._distances(source, forward=True)
        return sort_scored(
            (candidate, distances[candidate])
            for candidate in candidates
            if candidate in distances
        )

    def prepare_link_candidates(self, candidates: frozenset) -> None:
        """No preparation: every probe is a (memoized) BFS anyway."""

    def contains(self, node: NodeId) -> bool:
        return node in self._nodes

    def _node_set(self) -> frozenset:
        return self._nodes

    @property
    def backend(self):
        """No storage backend: the fallback is ephemeral by design."""
        return None

    def size_bytes(self) -> int:
        return 0

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BfsFallbackIndex nodes={len(self._nodes)}>"
