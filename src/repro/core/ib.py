"""The Index Builder (IB), section 4.2.

Builds one index per meta document with the ISS-selected strategy, and
maintains, for each meta document ``M_i``, the residual-link bookkeeping:
the set ``L_i`` of elements with outgoing links not reflected in any index,
the per-link target lists, and the mirrored incoming side used for ancestor
queries.  The residual links are also persisted to a table so that FliX's
total storage (Table 1) includes them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.collection.collection import NodeId, XmlCollection
from repro.core.config import FlixConfig
from repro.core.iss import IndexingStrategySelector, StrategyChoice
from repro.core.meta_document import Edge, MetaDocument, MetaDocumentSpec
from repro.indexes.registry import build_index
from repro.storage.memory import MemoryBackend
from repro.storage.table import Column, StorageBackend, TableSchema

_LINKS_SCHEMA = TableSchema(
    name="flix_residual_links",
    columns=(
        Column("src", "int"),
        Column("dst", "int"),
        Column("src_meta", "int"),
        Column("dst_meta", "int"),
    ),
    indexed=("src",),
)


@dataclass
class MetaDocumentReport:
    """Per-meta-document build outcome (for reports and benchmarks)."""

    meta_id: int
    node_count: int
    internal_edge_count: int
    strategy: str
    rationale: str
    index_bytes: int
    build_seconds: float


@dataclass
class BuildReport:
    """What the build phase produced, and what it cost."""

    config_name: str
    meta_documents: List[MetaDocumentReport] = field(default_factory=list)
    residual_link_count: int = 0
    residual_link_bytes: int = 0
    total_seconds: float = 0.0

    @property
    def total_index_bytes(self) -> int:
        return (
            sum(m.index_bytes for m in self.meta_documents)
            + self.residual_link_bytes
        )

    def strategy_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for meta in self.meta_documents:
            histogram[meta.strategy] = histogram.get(meta.strategy, 0) + 1
        return histogram

    def summary(self) -> str:
        strategies = ", ".join(
            f"{count}x {name}" for name, count in sorted(self.strategy_histogram().items())
        )
        return (
            f"config={self.config_name}: {len(self.meta_documents)} meta "
            f"documents ({strategies}), {self.residual_link_count} residual "
            f"links, {self.total_index_bytes} bytes, "
            f"{self.total_seconds:.2f}s build"
        )


class IndexBuilder:
    """Materializes meta documents from MDB specs."""

    def __init__(
        self,
        collection: XmlCollection,
        config: FlixConfig,
        backend_factory: Callable[[], StorageBackend] = MemoryBackend,
        selector: Optional[IndexingStrategySelector] = None,
    ) -> None:
        self._collection = collection
        self._config = config
        self._backend_factory = backend_factory
        self._selector = selector or IndexingStrategySelector(config)
        #: backend holding framework-level tables (the residual link table)
        self.framework_backend = backend_factory()

    def build(
        self,
        specs: List[MetaDocumentSpec],
    ) -> Tuple[List[MetaDocument], Dict[NodeId, int], BuildReport]:
        started = time.perf_counter()
        collection = self._collection
        self._check_disjoint_cover(specs)

        meta_of: Dict[NodeId, int] = {}
        for spec in specs:
            for node in spec.nodes:
                meta_of[node] = spec.meta_id

        internal: Set[Edge] = set()
        for spec in specs:
            internal.update(spec.internal_edges)
        residual: List[Edge] = sorted(
            edge for edge in collection.graph.edges() if edge not in internal
        )

        report = BuildReport(config_name=self._config.name)
        meta_documents: List[MetaDocument] = []
        for spec in specs:
            meta_started = time.perf_counter()
            graph = spec.build_graph()
            choice = self._selector.choose(graph)
            tags = {node: collection.tag(node) for node in spec.nodes}
            index = build_index(choice.strategy, graph, tags, self._backend_factory())
            meta = MetaDocument(
                meta_id=spec.meta_id,
                nodes=frozenset(spec.nodes),
                index=index,
                strategy=choice.strategy,
            )
            meta_documents.append(meta)
            report.meta_documents.append(
                MetaDocumentReport(
                    meta_id=spec.meta_id,
                    node_count=len(spec.nodes),
                    internal_edge_count=len(spec.internal_edges),
                    strategy=choice.strategy,
                    rationale=choice.rationale,
                    index_bytes=index.size_bytes(),
                    build_seconds=time.perf_counter() - meta_started,
                )
            )

        links_table = self.framework_backend.create_table(_LINKS_SCHEMA)
        for u, v in residual:
            meta_documents[meta_of[u]].outgoing_links.setdefault(u, []).append(v)
            meta_documents[meta_of[v]].incoming_links.setdefault(v, []).append(u)
            links_table.insert((u, v, meta_of[u], meta_of[v]))
        for meta in meta_documents:
            meta.finalize_links()

        report.residual_link_count = len(residual)
        report.residual_link_bytes = links_table.size_bytes()
        report.total_seconds = time.perf_counter() - started
        return meta_documents, meta_of, report

    def _check_disjoint_cover(self, specs: List[MetaDocumentSpec]) -> None:
        """Meta documents must form a disjoint cover of the collection."""
        seen: Set[NodeId] = set()
        for position, spec in enumerate(specs):
            if spec.meta_id != position:
                raise ValueError(
                    f"spec at position {position} carries meta_id {spec.meta_id}; "
                    "meta ids must be dense and ordered"
                )
            overlap = spec.nodes & seen
            if overlap:
                raise ValueError(
                    f"meta document {spec.meta_id} overlaps earlier ones "
                    f"on {len(overlap)} nodes"
                )
            seen.update(spec.nodes)
        expected = set(self._collection.node_ids())
        if seen != expected:
            missing = len(expected - seen)
            raise ValueError(f"meta documents miss {missing} collection nodes")
