"""The Index Builder (IB), section 4.2.

Builds one index per meta document with the ISS-selected strategy, and
maintains, for each meta document ``M_i``, the residual-link bookkeeping:
the set ``L_i`` of elements with outgoing links not reflected in any index,
the per-link target lists, and the mirrored incoming side used for ancestor
queries.  The residual links are also persisted to a table so that FliX's
total storage (Table 1) includes them.

Parallel builds
---------------

The per-meta-document builds are mutually independent — the closure/2-hop
computation of one meta document never reads another's — so the builder can
fan them out over a worker pool (``jobs`` > 1).  Three execution modes
exist, chosen by :attr:`repro.core.config.FlixConfig.build_executor`:

* ``process`` — a ``concurrent.futures.ProcessPoolExecutor`` (the default
  for the CPU-bound closure builds).  Tasks, config and the backend factory
  are shipped via pickle; worker processes disable the cyclic garbage
  collector (their allocations are overwhelmingly acyclic dict/list
  plumbing and the process exits after the build, so refcounting suffices
  — this alone is worth ~30% on allocation-heavy 2-hop builds).
* ``thread`` — a ``ThreadPoolExecutor``; the automatic fallback whenever
  the hand-off cannot be pickled (lambda backend factories, custom
  selectors holding sockets, ...) or no process pool can be spawned.
* ``serial`` — the plain loop (``jobs=1``); also what ``auto`` degrades to
  when the OS grants the process a single CPU, where a pool would add
  IPC cost without parallel capacity.

Whatever the mode, results are merged back **in spec order**, so
``meta_of``, the strategy choices, per-meta index contents and the
residual-link wiring are identical to a sequential build; only the timing
fields of the :class:`BuildReport` differ.  Per-meta phase timings (queue
wait, graph build, strategy selection, index build) are recorded in a
:class:`BuildProfile` on every :class:`MetaDocumentReport` so speedups are
measurable rather than asserted.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.collection.collection import NodeId, XmlCollection
from repro.core.config import FlixConfig
from repro.core.iss import IndexingStrategySelector, StrategyChoice
from repro.core.meta_document import Edge, MetaDocument, MetaDocumentSpec
from repro.indexes.base import PathIndex
from repro.indexes.registry import IndexBuildRequest, execute_build_request
from repro.obs import OBS_OFF, Observability
from repro.storage.memory import MemoryBackend
from repro.storage.table import Column, StorageBackend, TableSchema

_LINKS_SCHEMA = TableSchema(
    name="flix_residual_links",
    columns=(
        Column("src", "int"),
        Column("dst", "int"),
        Column("src_meta", "int"),
        Column("dst_meta", "int"),
    ),
    indexed=("src",),
)


@dataclass
class BuildProfile:
    """Per-meta-document phase timings (seconds, wall clock).

    ``queue_wait_seconds`` is the time between task submission and a worker
    picking it up — the pool's scheduling latency; the remaining phases are
    the work itself.  ``worker`` names the executing context (``"main"``
    for serial builds, ``"process-<pid>"`` / ``"thread-<name>"`` for pool
    workers) so imbalance is visible in build reports.
    """

    queue_wait_seconds: float = 0.0
    graph_seconds: float = 0.0
    selection_seconds: float = 0.0
    index_seconds: float = 0.0
    worker: str = "main"

    @property
    def busy_seconds(self) -> float:
        """Time spent actually building (excludes queue wait)."""
        return self.graph_seconds + self.selection_seconds + self.index_seconds


@dataclass
class MetaDocumentReport:
    """Per-meta-document build outcome (for reports and benchmarks)."""

    meta_id: int
    node_count: int
    internal_edge_count: int
    strategy: str
    rationale: str
    index_bytes: int
    build_seconds: float
    profile: BuildProfile = field(default_factory=BuildProfile)
    #: the ISS-selected strategy this meta document *should* have used,
    #: set only when its build failed and the safe fallback strategy was
    #: built instead
    fallback_from: Optional[str] = None
    #: build attempts consumed (1 = first try succeeded)
    attempts: int = 1
    #: the final build error when even the fallback failed (index is then
    #: missing and the PEE serves this meta document via BFS at query time)
    error: Optional[str] = None


@dataclass
class BuildReport:
    """What the build phase produced, and what it cost."""

    config_name: str
    meta_documents: List[MetaDocumentReport] = field(default_factory=list)
    residual_link_count: int = 0
    residual_link_bytes: int = 0
    total_seconds: float = 0.0
    #: worker count the build ran with (1 = sequential)
    jobs: int = 1
    #: executor kind actually used: "serial", "thread" or "process"
    executor: str = "serial"
    #: human-readable build failures that were absorbed (retries that
    #: eventually succeeded, strategy fallbacks, chunks rebuilt after a
    #: worker crash, meta documents left without an index)
    failures: List[str] = field(default_factory=list)

    @property
    def fallback_count(self) -> int:
        """Meta documents built with the safe fallback strategy."""
        return sum(1 for m in self.meta_documents if m.fallback_from)

    @property
    def unindexed_count(self) -> int:
        """Meta documents that ended up with no index at all."""
        return sum(1 for m in self.meta_documents if m.error)

    @property
    def total_index_bytes(self) -> int:
        return (
            sum(m.index_bytes for m in self.meta_documents)
            + self.residual_link_bytes
        )

    def strategy_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for meta in self.meta_documents:
            histogram[meta.strategy] = histogram.get(meta.strategy, 0) + 1
        return histogram

    def phase_totals(self) -> Dict[str, float]:
        """Summed per-phase seconds across all meta documents.

        With ``jobs`` > 1 the phases overlap in wall-clock time, so the sum
        exceeds ``total_seconds`` — the ratio is the achieved parallelism.
        """
        totals = {
            "queue_wait": 0.0,
            "graph": 0.0,
            "selection": 0.0,
            "index": 0.0,
        }
        for meta in self.meta_documents:
            totals["queue_wait"] += meta.profile.queue_wait_seconds
            totals["graph"] += meta.profile.graph_seconds
            totals["selection"] += meta.profile.selection_seconds
            totals["index"] += meta.profile.index_seconds
        return totals

    def summary(self) -> str:
        strategies = ", ".join(
            f"{count}x {name}" for name, count in sorted(self.strategy_histogram().items())
        )
        parallel = (
            f", {self.jobs} jobs ({self.executor})" if self.jobs > 1 else ""
        )
        trouble = (
            f", {len(self.failures)} absorbed failures" if self.failures else ""
        )
        return (
            f"config={self.config_name}: {len(self.meta_documents)} meta "
            f"documents ({strategies}), {self.residual_link_count} residual "
            f"links, {self.total_index_bytes} bytes, "
            f"{self.total_seconds:.2f}s build{parallel}{trouble}"
        )


# ----------------------------------------------------------------------
# the worker-pool hand-off
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _BuildTask:
    """Everything a worker needs to build one meta document.

    Deliberately primitive (ints, strings, tuples) so the same object runs
    unchanged in-process, on a thread, or pickled into a process-pool
    worker.  ``nodes`` keeps the spec set's iteration order, so every
    execution mode reconstructs an identical graph.
    """

    meta_id: int
    nodes: Tuple[NodeId, ...]
    internal_edges: Tuple[Edge, ...]
    tags: Dict[NodeId, str]
    submitted_at: float


@dataclass
class _BuildResult:
    meta_id: int
    choice: StrategyChoice
    index: Optional[PathIndex]
    profile: BuildProfile
    #: the ISS choice that failed when the fallback strategy was built
    fallback_from: Optional[str] = None
    #: build attempts consumed across strategies (1 = clean first try)
    attempts: int = 1
    #: final error message when no index could be built at all
    error: Optional[str] = None
    #: absorbed-failure notes for the merged ``BuildReport.failures``
    notes: Tuple[str, ...] = ()


def _execute_task(
    task: _BuildTask,
    selector: IndexingStrategySelector,
    backend_factory: Callable[[], StorageBackend],
    worker: str,
    obs: Optional[Observability] = None,
    resilience=None,
) -> _BuildResult:
    """Build one meta document: graph -> strategy selection -> index.

    ``obs`` flows to the fresh index backend only for in-process execution
    (serial / thread builds); process-pool workers leave it ``None`` — a
    worker's registry cannot reach the parent, so their build-time storage
    traffic is intentionally uncounted (the merged phase timings are not).

    ``resilience`` (a :class:`repro.core.config.ResilienceConfig`) turns
    build failures from fatal into absorbed: the selected strategy is
    retried ``build_retry_attempts`` times on a fresh backend, then the
    safe ``build_fallback_strategy`` is tried, and if even that fails the
    meta document is returned *without* an index (the PEE answers it with
    its BFS fallback at query time).  Without ``resilience`` the first
    failure propagates, exactly as before.
    """
    started = time.perf_counter()
    profile = BuildProfile(
        queue_wait_seconds=max(0.0, started - task.submitted_at),
        worker=worker,
    )
    spec = MetaDocumentSpec(
        task.meta_id, set(task.nodes), list(task.internal_edges)
    )
    graph = spec.build_graph()
    checkpoint = time.perf_counter()
    profile.graph_seconds = checkpoint - started
    choice = selector.choose(graph)
    now = time.perf_counter()
    profile.selection_seconds = now - checkpoint
    checkpoint = now

    def attempt(strategy: str) -> PathIndex:
        return execute_build_request(
            IndexBuildRequest(strategy=strategy, tags=task.tags),
            backend_factory,
            graph=graph,
            obs=obs,
        )

    notes: List[str] = []
    attempts = 0
    index: Optional[PathIndex] = None
    fallback_from: Optional[str] = None
    error: Optional[str] = None
    tries = 1 + (resilience.build_retry_attempts if resilience else 0)
    for _ in range(tries):
        attempts += 1
        try:
            index = attempt(choice.strategy)
            break
        except Exception as exc:
            if resilience is None:
                raise
            error = f"{type(exc).__name__}: {exc}"
            notes.append(
                f"meta {task.meta_id}: {choice.strategy} build attempt "
                f"{attempts} failed ({error})"
            )
    if index is None and resilience is not None:
        fallback = resilience.build_fallback_strategy
        if fallback and fallback != choice.strategy:
            attempts += 1
            try:
                index = attempt(fallback)
                fallback_from = choice.strategy
                error = None
                notes.append(
                    f"meta {task.meta_id}: fell back to {fallback} "
                    f"after {choice.strategy} failed"
                )
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                notes.append(
                    f"meta {task.meta_id}: fallback {fallback} failed "
                    f"too ({error}); left unindexed for query-time BFS"
                )
        else:
            notes.append(
                f"meta {task.meta_id}: left unindexed for query-time BFS"
            )
    profile.index_seconds = time.perf_counter() - checkpoint
    return _BuildResult(
        task.meta_id,
        choice,
        index,
        profile,
        fallback_from=fallback_from,
        attempts=attempts,
        error=error if index is None else None,
        notes=tuple(notes),
    )


#: per-process state installed by the pool initializer:
#: (selector, factory, resilience)
_WORKER_STATE: Optional[Tuple[IndexingStrategySelector, Callable, object]] = None

#: the shared build pool: ``(key, ProcessPoolExecutor)`` — forked workers
#: are kept warm between builds so repeated builds (benchmark repeats,
#: maintenance verbs, rebuilds) pay pool startup once, not per build
_POOL_CACHE: Optional[Tuple[tuple, object]] = None
_POOL_ATEXIT_REGISTERED = False


def _shared_process_pool(payload: bytes, workers: int, context):
    """A warm ``ProcessPoolExecutor`` for this (payload, workers) hand-off.

    Worker startup — fork, initializer pickle, gc tuning — used to be paid
    on every build, which on small corpora rivals the build itself (the
    BENCH_build_time regression).  Builds with an identical hand-off reuse
    the same forked workers; a different selector/factory/resilience or
    worker count retires the old pool and forks a fresh one.
    """
    global _POOL_CACHE, _POOL_ATEXIT_REGISTERED
    from concurrent.futures import ProcessPoolExecutor

    key = (payload, workers, context.get_start_method())
    if _POOL_CACHE is not None and _POOL_CACHE[0] == key:
        return _POOL_CACHE[1]
    shutdown_build_pool(wait=False)
    pool = ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=_init_process_worker,
        initargs=(payload,),
    )
    _POOL_CACHE = (key, pool)
    if not _POOL_ATEXIT_REGISTERED:
        import atexit

        atexit.register(shutdown_build_pool)
        _POOL_ATEXIT_REGISTERED = True
    return pool


def shutdown_build_pool(wait: bool = True) -> None:
    """Retire the warm build pool (tests, atexit, broken-pool recovery)."""
    global _POOL_CACHE
    if _POOL_CACHE is not None:
        _, pool = _POOL_CACHE
        _POOL_CACHE = None
        try:
            pool.shutdown(wait=wait, cancel_futures=True)
        except Exception:  # pragma: no cover - shutdown races are benign
            pass


def _init_process_worker(payload: bytes) -> None:
    global _WORKER_STATE
    import gc

    # Build allocations (adjacency dicts, label lists, table rows) are
    # acyclic: plain refcounting reclaims them, and skipping the cyclic
    # collector's generation scans is a measurable win on 2-hop builds.
    # Workers now survive between builds (warm pool), so each chunk ends
    # with one manual collect to sweep any stray cycles.
    gc.disable()
    _WORKER_STATE = pickle.loads(payload)


def _run_chunk_in_process(chunk: List[_BuildTask]) -> List[_BuildResult]:
    import gc

    selector, backend_factory, resilience = _WORKER_STATE
    worker = f"process-{os.getpid()}"
    results = [
        _execute_task(
            task, selector, backend_factory, worker, resilience=resilience
        )
        for task in chunk
    ]
    gc.collect()
    return results


class IndexBuilder:
    """Materializes meta documents from MDB specs."""

    def __init__(
        self,
        collection: XmlCollection,
        config: FlixConfig,
        backend_factory: Callable[[], StorageBackend] = MemoryBackend,
        selector: Optional[IndexingStrategySelector] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self._collection = collection
        self._config = config
        self._backend_factory = backend_factory
        self._selector = selector or IndexingStrategySelector(config)
        self._resilience = getattr(config, "resilience", None)
        self._obs = obs if obs is not None else OBS_OFF
        #: backend holding framework-level tables (the residual link table)
        self.framework_backend = backend_factory()
        if self._obs.enabled:
            self.framework_backend.attach_observer(
                self._obs.storage_instruments(self.framework_backend)
            )

    def build(
        self,
        specs: List[MetaDocumentSpec],
        jobs: Optional[int] = None,
    ) -> Tuple[List[MetaDocument], Dict[NodeId, int], BuildReport]:
        """Build all meta documents; ``jobs`` overrides ``config.jobs``.

        Whatever the worker count, the merged output is identical to a
        sequential build (see the module docstring's determinism notes).
        """
        started = time.perf_counter()
        build_trace = (
            self._obs.tracer.trace("ib.build", specs=len(specs))
            if self._obs.enabled
            else None
        )
        collection = self._collection
        self._check_disjoint_cover(specs)

        effective_jobs = self._config.jobs if jobs is None else jobs
        if effective_jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {effective_jobs}")

        meta_of: Dict[NodeId, int] = {}
        for spec in specs:
            for node in spec.nodes:
                meta_of[node] = spec.meta_id

        internal: Set[Edge] = set()
        for spec in specs:
            internal.update(spec.internal_edges)
        residual: List[Edge] = sorted(
            edge for edge in collection.graph.edges() if edge not in internal
        )

        tasks = [
            _BuildTask(
                meta_id=spec.meta_id,
                nodes=tuple(spec.nodes),
                internal_edges=tuple(spec.internal_edges),
                tags={node: collection.tag(node) for node in spec.nodes},
                submitted_at=time.perf_counter(),
            )
            for spec in specs
        ]

        executor_kind = self._resolve_executor(effective_jobs, len(tasks))
        results, executor_kind = self._dispatch(
            tasks, effective_jobs, executor_kind
        )

        report = BuildReport(
            config_name=self._config.name,
            jobs=effective_jobs,
            executor=executor_kind,
        )
        meta_documents: List[MetaDocument] = []
        for spec, result in zip(specs, results):
            if result.meta_id != spec.meta_id:  # pragma: no cover - invariant
                raise RuntimeError(
                    f"worker results out of order: expected meta "
                    f"{spec.meta_id}, got {result.meta_id}"
                )
            built_strategy = (
                result.index.strategy_name
                if result.index is not None
                else result.choice.strategy
            )
            meta = MetaDocument(
                meta_id=spec.meta_id,
                nodes=frozenset(spec.nodes),
                index=result.index,
                strategy=built_strategy,
            )
            meta_documents.append(meta)
            report.meta_documents.append(
                MetaDocumentReport(
                    meta_id=spec.meta_id,
                    node_count=len(spec.nodes),
                    internal_edge_count=len(spec.internal_edges),
                    strategy=built_strategy,
                    rationale=result.choice.rationale,
                    index_bytes=(
                        result.index.size_bytes()
                        if result.index is not None
                        else 0
                    ),
                    build_seconds=result.profile.busy_seconds,
                    profile=result.profile,
                    fallback_from=result.fallback_from,
                    attempts=result.attempts,
                    error=result.error,
                )
            )
            report.failures.extend(result.notes)

        links_table = self.framework_backend.create_table(_LINKS_SCHEMA)
        for u, v in residual:
            meta_documents[meta_of[u]].outgoing_links.setdefault(u, []).append(v)
            meta_documents[meta_of[v]].incoming_links.setdefault(v, []).append(u)
            links_table.insert((u, v, meta_of[u], meta_of[v]))
        for meta in meta_documents:
            meta.finalize_links()

        report.residual_link_count = len(residual)
        report.residual_link_bytes = links_table.size_bytes()
        report.total_seconds = time.perf_counter() - started
        if build_trace is not None:
            build_trace.root.meta.update(
                executor=report.executor, jobs=report.jobs
            )
            build_trace.finish()
            self._publish_build(report)
        return meta_documents, meta_of, report

    def _publish_build(self, report: BuildReport) -> None:
        """Fold one build's merged profiles into the metrics registry.

        Runs in the main process after the merge, so the numbers cover
        every meta document regardless of which executor built it.
        """
        reg = self._obs.registry
        phases = reg.histogram(
            "flix_build_phase_seconds",
            "Per-meta-document build phase durations, by phase.",
        )
        builds = reg.counter(
            "flix_index_builds_total",
            "Per-meta-document index builds, by chosen strategy.",
        )
        for meta in report.meta_documents:
            profile = meta.profile
            phases.observe(profile.queue_wait_seconds, phase="queue_wait")
            phases.observe(profile.graph_seconds, phase="graph")
            phases.observe(profile.selection_seconds, phase="selection")
            phases.observe(profile.index_seconds, phase="index")
            builds.inc(strategy=meta.strategy)
        reg.counter(
            "flix_builds_total", "Whole-collection builds, by executor kind."
        ).inc(executor=report.executor)
        reg.gauge(
            "flix_residual_links",
            "Residual links of the most recent build.",
        ).set(report.residual_link_count)
        reg.gauge(
            "flix_index_bytes",
            "Total index + residual-link bytes of the most recent build.",
        ).set(report.total_index_bytes)

    # ------------------------------------------------------------------
    # executor selection and dispatch
    # ------------------------------------------------------------------
    def _resolve_executor(self, jobs: int, task_count: int) -> str:
        """Pick the executor kind for this build.

        ``process`` needs the whole hand-off — config, selector, backend
        factory — to round-trip through pickle; anything unpicklable (a
        lambda factory, a closure-based selector) degrades to ``thread``,
        which shares the objects directly.

        ``auto`` also respects the CPU allowance: when the OS grants this
        process a single CPU (cgroup limits, taskset), a worker pool adds
        pickle/IPC cost with zero parallel capacity, so the build stays
        serial.  An explicit ``process``/``thread`` request is always
        honored — that is what the determinism tests pin.
        """
        requested = getattr(self._config, "build_executor", "auto")
        if jobs <= 1 or task_count <= 1 or requested == "serial":
            return "serial"
        if requested == "thread":
            return "thread"
        if requested == "auto" and _available_cpus() <= 1:
            return "serial"
        try:
            pickle.dumps((self._config, self._selector, self._backend_factory))
        except Exception:
            return "thread"
        return "process"

    def _dispatch(
        self,
        tasks: List[_BuildTask],
        jobs: int,
        executor_kind: str,
    ) -> Tuple[List[_BuildResult], str]:
        """Run all tasks, returning results in task order.

        Falls back process -> thread -> serial on pool failures so a build
        never dies just because the environment cannot fork.
        """
        if executor_kind == "process":
            try:
                return self._run_process_pool(tasks, jobs), "process"
            except Exception:
                executor_kind = "thread"
        if executor_kind == "thread":
            try:
                return self._run_thread_pool(tasks, jobs), "thread"
            except Exception:
                executor_kind = "serial"
        return self._run_serial(tasks), "serial"

    def _run_serial(self, tasks: List[_BuildTask]) -> List[_BuildResult]:
        obs = self._obs if self._obs.enabled else None
        results = []
        for task in tasks:
            stamped = _restamp(task)
            results.append(
                _execute_task(
                    stamped, self._selector, self._backend_factory, "main",
                    obs, resilience=self._resilience,
                )
            )
        return results

    def _run_thread_pool(
        self, tasks: List[_BuildTask], jobs: int
    ) -> List[_BuildResult]:
        from concurrent.futures import ThreadPoolExecutor
        import threading

        selector = self._selector
        factory = self._backend_factory
        obs = self._obs if self._obs.enabled else None
        resilience = self._resilience

        def run_one(task: _BuildTask) -> _BuildResult:
            worker = f"thread-{threading.current_thread().name}"
            return _execute_task(
                task, selector, factory, worker, obs, resilience=resilience
            )

        with ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="flix-ib"
        ) as pool:
            futures = [pool.submit(run_one, _restamp(task)) for task in tasks]
            return [future.result() for future in futures]

    def _run_process_pool(
        self, tasks: List[_BuildTask], jobs: int
    ) -> List[_BuildResult]:
        import multiprocessing

        # fork shares the parent's imported modules for free; fall back to
        # the platform default (spawn on macOS/Windows) where unavailable.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        payload = pickle.dumps(
            (self._selector, self._backend_factory, self._resilience)
        )
        # More workers than granted CPUs only oversubscribes the scheduler;
        # chunking follows the worker count that will actually run.
        workers = max(1, min(jobs, _available_cpus()))
        chunks = _chunk_tasks(tasks, workers)
        # The pool outlives this build (worker startup amortized across
        # builds); it is retired on hand-off change, breakage, or atexit.
        pool = _shared_process_pool(payload, workers, context)
        futures = [
            pool.submit(_run_chunk_in_process, [_restamp(t) for t in chunk])
            for chunk in chunks
        ]
        results: List[_BuildResult] = []
        broken = False
        for chunk, future in zip(chunks, futures):
            try:
                results.extend(future.result())
            except Exception as exc:
                broken = True
                if self._resilience is None:
                    shutdown_build_pool(wait=False)
                    raise
                # A crashed worker (OOM-killed, segfaulted C extension,
                # broken pool) takes its whole chunk down; rebuild that
                # chunk in the parent process instead of failing the
                # build.  A BrokenProcessPool poisons the remaining
                # futures too — each lands here and is rebuilt in turn.
                rebuilt = self._run_serial(chunk)
                for result in rebuilt:
                    result.notes = result.notes + (
                        f"meta {result.meta_id}: rebuilt in-parent after "
                        f"worker chunk failure "
                        f"({type(exc).__name__}: {exc})",
                    )
                results.extend(rebuilt)
        if broken:
            # don't hand a possibly-poisoned pool to the next build
            shutdown_build_pool(wait=False)
        return results

    def _check_disjoint_cover(self, specs: List[MetaDocumentSpec]) -> None:
        """Meta documents must form a disjoint cover of the collection."""
        seen: Set[NodeId] = set()
        for position, spec in enumerate(specs):
            if spec.meta_id != position:
                raise ValueError(
                    f"spec at position {position} carries meta_id {spec.meta_id}; "
                    "meta ids must be dense and ordered"
                )
            overlap = spec.nodes & seen
            if overlap:
                raise ValueError(
                    f"meta document {spec.meta_id} overlaps earlier ones "
                    f"on {len(overlap)} nodes"
                )
            seen.update(spec.nodes)
        expected = set(self._collection.node_ids())
        if seen != expected:
            missing = len(expected - seen)
            raise ValueError(f"meta documents miss {missing} collection nodes")


def _available_cpus() -> int:
    """CPUs the OS actually grants this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _restamp(task: _BuildTask) -> _BuildTask:
    """Refresh ``submitted_at`` to the actual dispatch moment."""
    from dataclasses import replace

    return replace(task, submitted_at=time.perf_counter())


def _chunk_tasks(
    tasks: Sequence[_BuildTask], jobs: int
) -> List[List[_BuildTask]]:
    """Contiguous, order-preserving chunks sized for pool throughput.

    Four chunks per worker balances IPC overhead against load skew: one
    oversized meta document stalls at most a quarter of a worker's share.
    """
    chunk_size = max(1, -(-len(tasks) // (jobs * 4)))
    return [
        list(tasks[i : i + chunk_size])
        for i in range(0, len(tasks), chunk_size)
    ]
