"""Saving and loading a built FliX index (restart without rebuild).

Layout on disk::

    <directory>/
      manifest.json        configuration + meta-document registry
      framework.sqlite     the residual-link table
      meta_0000.sqlite     index tables of meta document 0
      meta_0000.pack       FLXPACK blob of meta document 0 (packed saves)
      meta_0001.sqlite     ...

Saves of a packed index (``FlixConfig.packed`` / ``Flix.pack()`` — see
``docs/DATA_LAYOUT.md``) additionally write one ``meta_NNNN.pack`` FLXPACK
blob per packed meta document.  Loading such a save ``mmap``-attaches the
blobs instead of deserializing the SQLite tables — a cold attach parses
one 64-byte header and checksums the payload, nothing more — while the
sibling ``.sqlite`` file stays on disk as the table source of truth
(materialized lazily only if something asks for tables).

Every index strategy persists itself through the storage layer already;
saving copies those tables into one SQLite file per meta document (whatever
backend the index was built on), and loading reconstructs each index via
its strategy's ``load`` classmethod.  The XML collection itself is *not*
part of the index (use :func:`repro.collection.io.save_collection` for the
documents); load verifies the collection matches via a fingerprint.

Supported strategies: every ISS-selectable one (ppo, hopi, apex, kindex,
fbindex, transitive_closure).  DataGuide and Fabric persist their tables
too, but their specialized lookup structures are rebuilt cheaper from the
documents, so they are not reconstructed here and are rejected explicitly.

Crash safety
------------

Saving over an existing save never mutates the files the current
manifest references.  :func:`save_flix` stages every new file under a
``.tmp`` sibling name (durable via fsync), atomically replaces the
manifest — the commit point — and only then renames the staged files
over the final names and deletes stale ones.  A crash before the
manifest replace leaves the old save intact; a crash after it is rolled
forward at the next load/verify/repair, which completes any pending
renames whose staged content matches the new manifest's fingerprints
(see ``docs/DURABILITY.md``).

Integrity and repair
--------------------

The manifest records a content fingerprint (SHA-256 over table schemas and
rows for SQLite files; SHA-256 over the raw bytes for ``.pack`` blobs)
for every file it references.  :func:`load_flix` re-computes
them by default and refuses to load a damaged save with an
:class:`IntegrityError` that names the broken files.  :func:`repair_flix`
(CLI: ``repro repair``) then re-derives the meta-document specs from the
collection — the MDB is deterministic — and rebuilds *only* the damaged
files, leaving intact ones untouched, so a repaired save is
fingerprint-identical to the original.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.collection.collection import XmlCollection
from repro.core.config import CacheConfig, FlixConfig, ResilienceConfig
from repro.core.framework import Flix
from repro.core.ib import (
    _LINKS_SCHEMA,
    BuildReport,
    IndexBuilder,
    MetaDocumentReport,
)
from repro.core.meta_document import MetaDocument, MetaDocumentSpec
from repro.indexes.apex import ApexIndex
from repro.indexes.hopi import HopiIndex
from repro.indexes.kindex import ForwardBackwardIndex, KBisimulationIndex
from repro.indexes.ppo import PpoIndex
from repro.indexes.registry import IndexBuildRequest, execute_build_request
from repro.indexes.transitive import TransitiveClosureIndex
from repro.storage.atomic import (
    atomic_write_bytes,
    atomic_write_text,
    fsync_directory,
)
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite_backend import SqliteBackend
from repro.storage.table import StorageBackend

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1

#: sibling suffix under which a save stages its files before the
#: manifest commit point (see :func:`save_flix`'s write protocol)
TMP_SUFFIX = ".tmp"


class PersistenceError(RuntimeError):
    """Raised on unsupported strategies or manifest/collection mismatches."""


class IntegrityError(PersistenceError):
    """A saved index failed checksum verification.

    ``damaged`` lists the offending file names (missing, unreadable, or
    fingerprint-mismatched); :func:`repair_flix` rebuilds exactly those.
    """

    def __init__(self, directory: Path, damaged: List[str]) -> None:
        self.damaged = list(damaged)
        super().__init__(
            f"saved index under {directory} failed integrity verification: "
            + ", ".join(self.damaged)
            + " — run `repro repair` (or repair_flix) to rebuild the "
            "damaged files"
        )


def _copy_tables(source: StorageBackend, target: StorageBackend) -> None:
    for name in source.table_names():
        table = source.table(name)
        clone = target.create_table(table.schema)
        clone.insert_many(table.scan())


def _fingerprint(collection: XmlCollection) -> Dict[str, int]:
    return {
        "documents": collection.document_count,
        "elements": collection.node_count,
        "links": collection.link_edge_count,
    }


def save_flix(flix: Flix, directory) -> Path:
    """Persist ``flix`` under ``directory``; returns the manifest path."""
    loaders = _loaders()
    for meta in flix.meta_documents:
        if meta.index is None:
            raise PersistenceError(
                f"meta document {meta.meta_id} has no index (every build "
                "attempt failed and it is answered by the query-time BFS "
                "fallback); rebuild it before saving"
            )
        if meta.strategy not in loaders:
            raise PersistenceError(
                f"meta document {meta.meta_id} uses strategy "
                f"{meta.strategy!r}, which has no loader; rebuild it instead"
            )
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)

    from repro.indexes.packed import is_packed, pack_index

    # Phase 1 — stage: build every file the new manifest will reference
    # under a ``.tmp`` sibling name.  The files the *current* manifest
    # references are never touched here, so a crash anywhere in this
    # phase leaves the previous save fully loadable (the strays are
    # cleaned by the next save or load).
    integrity: Dict[str, str] = {}
    staged: List[str] = []  # final names whose .tmp is ready to swap in
    for meta in flix.meta_documents:
        filename = f"meta_{meta.meta_id:04d}.sqlite"
        tmp = root / (filename + TMP_SUFFIX)
        tmp.unlink(missing_ok=True)
        target = SqliteBackend(str(tmp))
        _copy_tables(meta.index.backend, target)
        integrity[filename] = target.fingerprint()
        target.close()
        _fsync_file(tmp)
        staged.append(filename)
        if is_packed(meta.index):
            pack_name = f"meta_{meta.meta_id:04d}.pack"
            blob_bytes = pack_index(meta.index)
            _write_staged_bytes(root / (pack_name + TMP_SUFFIX), blob_bytes)
            integrity[pack_name] = _raw_fingerprint(blob_bytes)
            staged.append(pack_name)
    framework_tmp = root / ("framework.sqlite" + TMP_SUFFIX)
    framework_tmp.unlink(missing_ok=True)
    framework_target = SqliteBackend(str(framework_tmp))
    if flix._builder is not None:
        _copy_tables(flix._builder.framework_backend, framework_target)
    else:
        # monolithic builds carry no residual links; write an empty table
        framework_target.create_table(_LINKS_SCHEMA)
    integrity["framework.sqlite"] = framework_target.fingerprint()
    framework_target.close()
    _fsync_file(framework_tmp)
    staged.append("framework.sqlite")
    fsync_directory(root)

    resilience = flix.config.resilience
    manifest = {
        "format_version": FORMAT_VERSION,
        "collection": _fingerprint(flix.collection),
        "config": {
            "name": flix.config.name,
            "mdb_strategy": flix.config.mdb_strategy,
            "allowed_strategies": list(flix.config.allowed_strategies),
            "partition_size": flix.config.partition_size,
            "single_tree": flix.config.single_tree,
            "hopi_pairs_per_node_budget": flix.config.hopi_pairs_per_node_budget,
            "expect_long_paths": flix.config.expect_long_paths,
            "jobs": flix.config.jobs,
            "build_executor": flix.config.build_executor,
            "observability": flix.config.observability,
            "packed": flix.config.packed,
            "resilience": resilience.to_dict() if resilience else None,
            "cache": (
                flix.config.cache.to_dict() if flix.config.cache else None
            ),
            "planner": (
                flix.config.planner.to_dict() if flix.config.planner else None
            ),
        },
        "integrity": {
            "algorithm": "sha256-table-content",
            "files": integrity,
        },
        "meta_documents": [
            {
                "meta_id": meta.meta_id,
                "strategy": meta.strategy,
                "packed": is_packed(meta.index),
                "incremental": meta.meta_id
                in flix.layout.incremental_meta_ids,
            }
            for meta in flix.meta_documents
        ],
        # the maintenance state (docs/MAINTENANCE.md): sparse/tombstoned
        # ids and the generation counter round-trip, so a reloaded index
        # fingerprints identically and keeps compacting/growing correctly
        "layout": {
            "generation": flix.layout.generation,
            "tombstones": sorted(flix.layout.tombstones),
            "next_meta_id": flix.layout.next_meta_id,
        },
    }
    # Phase 2 — commit: the manifest replace (temp file + os.replace +
    # directory fsync) is the save's commit point.  Before it, the old
    # manifest and every file it references are untouched; after it, the
    # new manifest's content is fully staged on disk (as ``.tmp``
    # siblings, durable since phase 1).  A crash on either side of this
    # line therefore leaves a loadable save (docs/DURABILITY.md).
    manifest_path = root / MANIFEST_NAME
    atomic_write_text(manifest_path, json.dumps(manifest, indent=2))
    # Phase 3 — publish: roll the staged files over the final names.  A
    # crash mid-way is rolled forward at the next load: every reader
    # settles committed ``.tmp`` siblings first (_settle_interrupted_save
    # matches them against the manifest fingerprints).
    for filename in staged:
        os.replace(root / (filename + TMP_SUFFIX), root / filename)
    fsync_directory(root)
    # Phase 4 — clean: drop files referenced by neither manifest — meta
    # documents removed/compacted/unpacked since the previous save, and
    # any orphaned stage files a crashed save left behind.
    for pattern in ("meta_*.sqlite", "meta_*.pack", "*" + TMP_SUFFIX):
        for stale in root.glob(pattern):
            if stale.name not in integrity:
                stale.unlink()
    _save_planner_statistics(flix, root)
    return manifest_path


def _save_planner_statistics(flix: Flix, root: Path) -> None:
    """Persist the probe planner's statistics sidecar (advisory).

    ``planner_stats.json`` is deliberately *outside* the manifest's
    integrity map: repair cannot rebuild it (the Cohen estimates are
    randomized only over the layout, but the sidecar is a cache, not
    index content), and a damaged or stale sidecar must degrade to
    re-collection at first use, never fail a load.  Written only when a
    statistics-using planner is configured; a save from an unconfigured
    instance removes any stale sidecar.
    """
    from repro.core.planner import STATISTICS_FILENAME

    path = root / STATISTICS_FILENAME
    planner_config = getattr(flix.config, "planner", None)
    if planner_config is None or not planner_config.statistics:
        path.unlink(missing_ok=True)
        return
    try:
        stats = flix.planner_statistics()
        atomic_write_text(path, stats.to_json())
    except Exception:
        # advisory: a failed sidecar write must not fail the save
        path.unlink(missing_ok=True)


def _fsync_file(path: Path) -> None:
    """Force a staged file's content to disk before the manifest commit
    makes the save depend on it."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_staged_bytes(path: Path, data: bytes) -> None:
    """Write a stage (``.tmp``) file in place, durable but *not* renamed
    — the rename happens after the manifest commit (phase 3)."""
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())


def _settle_interrupted_save(root: Path, manifest: dict) -> None:
    """Roll forward a save that crashed between its manifest commit and
    the per-file renames.

    For every file the manifest fingerprints, a ``.tmp`` sibling whose
    content matches the recorded fingerprint is the committed version
    that never got renamed — complete the rename.  A ``.tmp`` whose
    final name already matches is a leftover from an older, completed
    save — drop it.  Anything else is left alone for integrity
    verification to report.  Idempotent, and best-effort on read-only
    directories (the mismatch then surfaces as damage instead).
    """
    recorded = manifest.get("integrity", {}).get("files", {})
    settled = False
    for filename, fingerprint in recorded.items():
        tmp = root / (filename + TMP_SUFFIX)
        if not tmp.is_file():
            continue
        try:
            if _file_fingerprint(root / filename) == fingerprint:
                tmp.unlink()
            elif _file_fingerprint(tmp) == fingerprint:
                os.replace(tmp, root / filename)
                settled = True
        except OSError:
            continue
    if settled:
        fsync_directory(root)


# ----------------------------------------------------------------------
# integrity verification and repair
# ----------------------------------------------------------------------
def _raw_fingerprint(data: bytes) -> str:
    """The integrity fingerprint of a ``.pack`` blob: its raw bytes hashed
    (the blob *is* its serialized form, unlike a SQLite file whose bytes
    vary with page layout)."""
    import hashlib

    return hashlib.sha256(data).hexdigest()


def _file_fingerprint(path: Path) -> Optional[str]:
    """Content fingerprint of one saved file; ``None`` when the file is
    missing or too broken to read (both count as damaged).

    SQLite files hash their table content; ``.pack`` blobs hash their raw
    bytes (additionally requiring that the blob's own header checksum
    verifies, so a pack file that matches the manifest always attaches).
    """
    if not path.is_file():
        return None
    if path.suffix == ".pack":
        from repro.indexes.packed import PackedBlob

        try:
            blob = PackedBlob.attach(path)
        except Exception:
            return None
        try:
            return blob.raw_fingerprint()
        finally:
            blob.close()
    backend = None
    try:
        backend = SqliteBackend.attach(str(path))
        return backend.fingerprint()
    except Exception:
        return None
    finally:
        if backend is not None:
            try:
                backend.close()
            except Exception:
                pass


def _damaged_files(root: Path, manifest: dict) -> List[str]:
    """File names whose current content does not match the manifest.

    Saves from before the integrity section existed verify vacuously.
    """
    recorded = manifest.get("integrity", {}).get("files", {})
    return [
        filename
        for filename in sorted(recorded)
        if _file_fingerprint(root / filename) != recorded[filename]
    ]


def _read_manifest(root: Path, collection: XmlCollection) -> dict:
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.is_file():
        raise PersistenceError(f"no {MANIFEST_NAME} under {root}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("format_version") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported format version {manifest.get('format_version')!r}"
        )
    if manifest["collection"] != _fingerprint(collection):
        raise PersistenceError(
            "collection fingerprint mismatch: the index was saved for "
            f"{manifest['collection']}, got {_fingerprint(collection)}"
        )
    # every reader path (load/verify/repair) settles an interrupted
    # save's committed-but-unrenamed stage files before looking at them
    _settle_interrupted_save(root, manifest)
    return manifest


def verify_flix(collection: XmlCollection, directory) -> List[str]:
    """Check a saved index; returns the damaged file names (empty = intact)."""
    root = Path(directory)
    return _damaged_files(root, _read_manifest(root, collection))


def repair_flix(collection: XmlCollection, directory) -> List[str]:
    """Rebuild the damaged files of a saved index in place.

    Re-derives the meta-document specs from the (unchanged) collection —
    the Meta Document Builder is deterministic, so spec ``i`` is the meta
    document ``meta_iiii.sqlite`` was built from — and re-runs the
    manifest-recorded strategy for each damaged file only.  The residual
    link table (``framework.sqlite``) is likewise reconstructible as the
    collection edges internal to no meta document.  Intact files are not
    touched, so the repaired save is fingerprint-identical to the
    original.  Requires a readable manifest (a destroyed manifest means a
    full rebuild).  Returns the repaired file names.

    Saves of an index mutated after the build (``add_document`` /
    ``remove_document`` / ``compact`` — see ``docs/MAINTENANCE.md``)
    can only be repaired for the meta documents the deterministic MDB
    re-derivation still produces; a damaged incrementally-added or
    compacted meta file raises instead (reload the intact save, or
    rebuild).
    """
    root = Path(directory)
    manifest = _read_manifest(root, collection)
    damaged = _damaged_files(root, manifest)
    if not damaged:
        return []

    config = _config_from_manifest(manifest["config"])
    from repro.core.mdb import MetaDocumentBuilder

    specs = MetaDocumentBuilder(collection, config).build_specs()
    spec_of: Dict[int, MetaDocumentSpec] = {spec.meta_id: spec for spec in specs}
    strategy_of = {
        entry["meta_id"]: entry["strategy"]
        for entry in manifest["meta_documents"]
    }

    recorded = manifest["integrity"]["files"]
    for filename in damaged:
        path = root / filename
        if path.exists():
            path.unlink()
        if filename == "framework.sqlite":
            _rebuild_framework_file(path, collection, specs)
        else:
            stem, _, kind = filename.rpartition(".")
            meta_id = int(stem[len("meta_") :])
            spec = spec_of.get(meta_id)
            strategy = strategy_of.get(meta_id)
            if spec is None or strategy is None:
                raise PersistenceError(
                    f"cannot repair {filename}: the manifest or the "
                    "re-derived specs know no meta document "
                    f"{meta_id}; rebuild the index instead"
                )
            if kind == "pack":
                _rebuild_pack_file(path, spec, strategy, collection)
            else:
                _rebuild_meta_file(path, spec, strategy, collection)
        rebuilt = _file_fingerprint(path)
        if rebuilt is None:
            raise PersistenceError(f"repair of {filename} produced no data")
        if rebuilt != recorded[filename]:
            # A strategy whose output depends on anything beyond the spec
            # would land here; today's loaders are all deterministic.
            raise PersistenceError(
                f"repaired {filename} does not match its recorded "
                "fingerprint; the collection or configuration has drifted "
                "since the save"
            )

    manifest_path = root / MANIFEST_NAME
    atomic_write_text(manifest_path, json.dumps(manifest, indent=2))
    return damaged


def _build_meta_index(
    spec: MetaDocumentSpec, strategy: str, collection: XmlCollection
):
    """Deterministically re-run one meta document's index build."""
    graph = spec.build_graph()
    tags = {node: collection.tag(node) for node in spec.nodes}
    return execute_build_request(
        IndexBuildRequest(strategy=strategy, tags=tags),
        MemoryBackend,
        graph=graph,
    )


def _rebuild_meta_file(
    path: Path, spec: MetaDocumentSpec, strategy: str, collection: XmlCollection
) -> None:
    """Re-run one meta document's index build and persist it at ``path``."""
    index = _build_meta_index(spec, strategy, collection)
    target = SqliteBackend(str(path))
    _copy_tables(index.backend, target)
    target.close()


def _rebuild_pack_file(
    path: Path, spec: MetaDocumentSpec, strategy: str, collection: XmlCollection
) -> None:
    """Re-compile one meta document's FLXPACK blob from a fresh build.

    Packing is deterministic (sorted columns, sorted JSON directory), so
    the rebuilt blob is byte-identical to the original save's."""
    from repro.indexes.packed import pack_index

    index = _build_meta_index(spec, strategy, collection)
    data = pack_index(index)
    if data is None:
        raise PersistenceError(
            f"cannot repair {path.name}: strategy {strategy!r} has no "
            "packed form"
        )
    atomic_write_bytes(path, data)


def _rebuild_framework_file(
    path: Path, collection: XmlCollection, specs: List[MetaDocumentSpec]
) -> None:
    """Reconstruct the residual-link table exactly as the IB wrote it:
    every collection edge internal to no meta document, sorted."""
    meta_of: Dict[int, int] = {}
    internal = set()
    for spec in specs:
        internal.update(spec.internal_edges)
        for node in spec.nodes:
            meta_of[node] = spec.meta_id
    residual = sorted(
        edge for edge in collection.graph.edges() if edge not in internal
    )
    target = SqliteBackend(str(path))
    table = target.create_table(_LINKS_SCHEMA)
    for u, v in residual:
        table.insert((u, v, meta_of[u], meta_of[v]))
    target.close()


def load_flix(collection: XmlCollection, directory, verify: bool = True) -> Flix:
    """Reconstruct a saved index against the (unchanged) collection.

    ``verify`` (default) re-fingerprints every referenced SQLite file
    against the manifest's integrity section and raises
    :class:`IntegrityError` naming the damaged ones — pass ``False`` to
    skip the check (e.g. right after a successful :func:`repair_flix`,
    or for saves predating the integrity section, which verify vacuously
    anyway).
    """
    root = Path(directory)
    manifest = _read_manifest(root, collection)
    if verify:
        damaged = _damaged_files(root, manifest)
        if damaged:
            raise IntegrityError(root, damaged)

    from repro.core.config import apply_planner_env

    config = apply_planner_env(_config_from_manifest(manifest["config"]))

    tags = {node: collection.tag(node) for node in collection.node_ids()}
    loaders = _loaders()
    meta_of: Dict[int, int] = {}
    report = BuildReport(config_name=config.name)
    entries = sorted(manifest["meta_documents"], key=lambda e: e["meta_id"])
    live_ids = [e["meta_id"] for e in entries]
    if len(set(live_ids)) != len(live_ids) or any(i < 0 for i in live_ids):
        raise PersistenceError(
            "manifest meta ids must be distinct and non-negative"
        )
    # Maintenance state; absent in saves predating docs/MAINTENANCE.md,
    # which are always dense with no tombstones.
    layout_data = manifest.get("layout", {})
    tombstones = frozenset(layout_data.get("tombstones", ()))
    generation = layout_data.get("generation", 0)
    slot_count = layout_data.get(
        "next_meta_id", (max(live_ids) + 1) if live_ids else 0
    )
    if tombstones & set(live_ids):
        raise PersistenceError(
            "manifest lists meta ids both live and tombstoned"
        )
    if any(i >= slot_count for i in live_ids) or any(
        i >= slot_count or i < 0 for i in tombstones
    ):
        raise PersistenceError("manifest meta ids exceed the layout size")
    incremental = frozenset(
        entry["meta_id"]
        for entry in entries
        if entry.get("incremental", False)
    )
    recorded_files = manifest.get("integrity", {}).get("files", {})
    slots: List[Optional[MetaDocument]] = [None] * slot_count
    for entry in entries:
        meta_id = entry["meta_id"]
        strategy = entry["strategy"]
        if strategy not in loaders:
            raise PersistenceError(f"no loader for strategy {strategy!r}")
        sqlite_path = root / f"meta_{meta_id:04d}.sqlite"
        if entry.get("packed", False):
            # mmap the FLXPACK blob: cold attach parses a 64-byte header
            # and checksums the payload — no table deserialization.  The
            # sibling .sqlite stays the table source of truth,
            # materialized lazily; the manifest-recorded table
            # fingerprint keeps index_fingerprint() answerable without
            # opening it.
            from repro.indexes.packed import attach_packed_file

            index = attach_packed_file(
                root / f"meta_{meta_id:04d}.pack",
                source_factory=(
                    lambda p=sqlite_path: SqliteBackend.attach(str(p))
                ),
                fingerprint=recorded_files.get(sqlite_path.name),
            )
        else:
            backend = SqliteBackend.attach(str(sqlite_path))
            index = loaders[strategy](backend, tags)
        meta = MetaDocument(
            meta_id=meta_id,
            nodes=index._node_set(),
            index=index,
            strategy=strategy,
        )
        slots[meta_id] = meta
        for node in meta.nodes:
            meta_of[node] = meta_id
        report.meta_documents.append(
            MetaDocumentReport(
                meta_id=meta_id,
                node_count=len(meta.nodes),
                internal_edge_count=-1,  # not recorded in the manifest
                strategy=strategy,
                rationale="loaded from disk",
                index_bytes=index.size_bytes(),
                build_seconds=0.0,
            )
        )

    # residual links.  The snapshot's framework.sqlite is read once and
    # copied into memory: a loaded instance must never hold a *write*
    # handle on a snapshot file, or incremental verbs (and WAL recovery
    # replay, docs/DURABILITY.md) would dirty it in place and break the
    # manifest checksums the next load verifies.  save_flix rewrites
    # framework.sqlite from this live copy at the next checkpoint.
    builder = IndexBuilder(collection, config, SqliteBackend)
    snapshot_links = SqliteBackend.attach(str(root / "framework.sqlite"))
    builder.framework_backend = MemoryBackend()
    _copy_tables(snapshot_links, builder.framework_backend)
    snapshot_links.close()
    residual = 0
    for u, v, _mu, _mv in builder.framework_backend.table(
        "flix_residual_links"
    ).scan():
        slots[meta_of[u]].outgoing_links.setdefault(u, []).append(v)
        slots[meta_of[v]].incoming_links.setdefault(v, []).append(u)
        residual += 1
    for meta in slots:
        if meta is not None:
            meta.finalize_links()
    report.residual_link_count = residual
    report.residual_link_bytes = builder.framework_backend.table(
        "flix_residual_links"
    ).size_bytes()

    flix = Flix(collection, config, slots, meta_of, report)
    flix._builder = builder
    flix._backend_factory = SqliteBackend
    flix._raw_backend_factory = SqliteBackend
    if tombstones or generation or incremental:
        from repro.core.layout import IndexLayout

        restored = IndexLayout(
            slots=tuple(slots),
            meta_of=dict(meta_of),
            pee=None,
            generation=generation,
            tombstones=tombstones,
            incremental_meta_ids=incremental,
        )
        flix._layout = restored.with_pee(
            flix._build_evaluator(restored.slots, restored.meta_of, generation)
        )
    _load_planner_statistics(flix, root)
    return flix


def _load_planner_statistics(flix: Flix, root: Path) -> None:
    """Prime the planner-statistics memo from the saved sidecar.

    Best-effort: a missing, unparsable, wrong-version, or stale
    (generation-mismatched) sidecar is simply ignored and the statistics
    are re-collected lazily at first use."""
    from repro.core.planner import STATISTICS_FILENAME, LayoutStatistics

    path = root / STATISTICS_FILENAME
    if not path.is_file():
        return
    try:
        stats = LayoutStatistics.from_json(path.read_text(encoding="utf-8"))
    except Exception:
        return
    if stats.generation == flix.layout_generation:
        flix._planner_stats = (stats.generation, stats)


def _config_from_manifest(config_data: dict) -> FlixConfig:
    from repro.core.config import PlannerConfig

    resilience_data = config_data.get("resilience")
    return FlixConfig(
        name=config_data["name"],
        mdb_strategy=config_data["mdb_strategy"],
        allowed_strategies=tuple(config_data["allowed_strategies"]),
        partition_size=config_data["partition_size"],
        single_tree=config_data["single_tree"],
        hopi_pairs_per_node_budget=config_data["hopi_pairs_per_node_budget"],
        expect_long_paths=config_data["expect_long_paths"],
        jobs=config_data.get("jobs", 1),
        build_executor=config_data.get("build_executor", "auto"),
        observability=config_data.get("observability", True),
        packed=config_data.get("packed", False),
        resilience=(
            ResilienceConfig.from_dict(resilience_data)
            if resilience_data
            else None
        ),
        cache=(
            CacheConfig.from_dict(config_data["cache"])
            if config_data.get("cache")
            else None
        ),
        planner=(
            PlannerConfig.from_dict(config_data["planner"])
            if config_data.get("planner")
            else None
        ),
    )


def _loaders() -> Dict[str, Callable]:
    return {
        "ppo": PpoIndex.load,
        "hopi": HopiIndex.load,
        "transitive_closure": TransitiveClosureIndex.load,
        "apex": lambda backend, tags: ApexIndex.load(backend, "apex"),
        "kindex": lambda backend, tags: KBisimulationIndex.load(backend, "kindex"),
        "fbindex": lambda backend, tags: ForwardBackwardIndex.load(
            backend, "fbindex"
        ),
    }
