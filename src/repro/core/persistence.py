"""Saving and loading a built FliX index (restart without rebuild).

Layout on disk::

    <directory>/
      manifest.json        configuration + meta-document registry
      framework.sqlite     the residual-link table
      meta_0000.sqlite     index tables of meta document 0
      meta_0001.sqlite     ...

Every index strategy persists itself through the storage layer already;
saving copies those tables into one SQLite file per meta document (whatever
backend the index was built on), and loading reconstructs each index via
its strategy's ``load`` classmethod.  The XML collection itself is *not*
part of the index (use :func:`repro.collection.io.save_collection` for the
documents); load verifies the collection matches via a fingerprint.

Supported strategies: every ISS-selectable one (ppo, hopi, apex, kindex,
fbindex, transitive_closure).  DataGuide and Fabric persist their tables
too, but their specialized lookup structures are rebuilt cheaper from the
documents, so they are not reconstructed here and are rejected explicitly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List

from repro.collection.collection import XmlCollection
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.core.ib import BuildReport, IndexBuilder, MetaDocumentReport
from repro.core.meta_document import MetaDocument
from repro.indexes.apex import ApexIndex
from repro.indexes.hopi import HopiIndex
from repro.indexes.kindex import ForwardBackwardIndex, KBisimulationIndex
from repro.indexes.ppo import PpoIndex
from repro.indexes.transitive import TransitiveClosureIndex
from repro.storage.sqlite_backend import SqliteBackend
from repro.storage.table import StorageBackend

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1


class PersistenceError(RuntimeError):
    """Raised on unsupported strategies or manifest/collection mismatches."""


def _copy_tables(source: StorageBackend, target: StorageBackend) -> None:
    for name in source.table_names():
        table = source.table(name)
        clone = target.create_table(table.schema)
        clone.insert_many(table.scan())


def _fingerprint(collection: XmlCollection) -> Dict[str, int]:
    return {
        "documents": collection.document_count,
        "elements": collection.node_count,
        "links": collection.link_edge_count,
    }


def save_flix(flix: Flix, directory) -> Path:
    """Persist ``flix`` under ``directory``; returns the manifest path."""
    loaders = _loaders()
    for meta in flix.meta_documents:
        if meta.strategy not in loaders:
            raise PersistenceError(
                f"meta document {meta.meta_id} uses strategy "
                f"{meta.strategy!r}, which has no loader; rebuild it instead"
            )
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)

    for meta in flix.meta_documents:
        target = SqliteBackend(str(root / f"meta_{meta.meta_id:04d}.sqlite"))
        _copy_tables(meta.index.backend, target)
        target.close()
    framework_target = SqliteBackend(str(root / "framework.sqlite"))
    if flix._builder is not None:
        _copy_tables(flix._builder.framework_backend, framework_target)
    else:
        # monolithic builds carry no residual links; write an empty table
        from repro.core.ib import _LINKS_SCHEMA

        framework_target.create_table(_LINKS_SCHEMA)
    framework_target.close()

    manifest = {
        "format_version": FORMAT_VERSION,
        "collection": _fingerprint(flix.collection),
        "config": {
            "name": flix.config.name,
            "mdb_strategy": flix.config.mdb_strategy,
            "allowed_strategies": list(flix.config.allowed_strategies),
            "partition_size": flix.config.partition_size,
            "single_tree": flix.config.single_tree,
            "hopi_pairs_per_node_budget": flix.config.hopi_pairs_per_node_budget,
            "expect_long_paths": flix.config.expect_long_paths,
            "jobs": flix.config.jobs,
            "build_executor": flix.config.build_executor,
            "observability": flix.config.observability,
        },
        "meta_documents": [
            {"meta_id": meta.meta_id, "strategy": meta.strategy}
            for meta in flix.meta_documents
        ],
    }
    manifest_path = root / MANIFEST_NAME
    manifest_path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
    return manifest_path


def load_flix(collection: XmlCollection, directory) -> Flix:
    """Reconstruct a saved index against the (unchanged) collection."""
    root = Path(directory)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.is_file():
        raise PersistenceError(f"no {MANIFEST_NAME} under {root}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("format_version") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported format version {manifest.get('format_version')!r}"
        )
    if manifest["collection"] != _fingerprint(collection):
        raise PersistenceError(
            "collection fingerprint mismatch: the index was saved for "
            f"{manifest['collection']}, got {_fingerprint(collection)}"
        )

    config_data = manifest["config"]
    config = FlixConfig(
        name=config_data["name"],
        mdb_strategy=config_data["mdb_strategy"],
        allowed_strategies=tuple(config_data["allowed_strategies"]),
        partition_size=config_data["partition_size"],
        single_tree=config_data["single_tree"],
        hopi_pairs_per_node_budget=config_data["hopi_pairs_per_node_budget"],
        expect_long_paths=config_data["expect_long_paths"],
        jobs=config_data.get("jobs", 1),
        build_executor=config_data.get("build_executor", "auto"),
        observability=config_data.get("observability", True),
    )

    tags = {node: collection.tag(node) for node in collection.node_ids()}
    loaders = _loaders()
    meta_documents: List[MetaDocument] = []
    meta_of: Dict[int, int] = {}
    report = BuildReport(config_name=config.name)
    entries = sorted(manifest["meta_documents"], key=lambda e: e["meta_id"])
    if [e["meta_id"] for e in entries] != list(range(len(entries))):
        raise PersistenceError("manifest meta ids must be dense and ordered")
    for entry in entries:
        meta_id = entry["meta_id"]
        strategy = entry["strategy"]
        if strategy not in loaders:
            raise PersistenceError(f"no loader for strategy {strategy!r}")
        backend = SqliteBackend.attach(str(root / f"meta_{meta_id:04d}.sqlite"))
        index = loaders[strategy](backend, tags)
        meta = MetaDocument(
            meta_id=meta_id,
            nodes=index._node_set(),
            index=index,
            strategy=strategy,
        )
        meta_documents.append(meta)
        for node in meta.nodes:
            meta_of[node] = meta_id
        report.meta_documents.append(
            MetaDocumentReport(
                meta_id=meta_id,
                node_count=len(meta.nodes),
                internal_edge_count=-1,  # not recorded in the manifest
                strategy=strategy,
                rationale="loaded from disk",
                index_bytes=index.size_bytes(),
                build_seconds=0.0,
            )
        )

    # residual links
    builder = IndexBuilder(collection, config, SqliteBackend)
    builder.framework_backend = SqliteBackend.attach(
        str(root / "framework.sqlite")
    )
    residual = 0
    for u, v, _mu, _mv in builder.framework_backend.table(
        "flix_residual_links"
    ).scan():
        meta_documents[meta_of[u]].outgoing_links.setdefault(u, []).append(v)
        meta_documents[meta_of[v]].incoming_links.setdefault(v, []).append(u)
        residual += 1
    for meta in meta_documents:
        meta.finalize_links()
    report.residual_link_count = residual
    report.residual_link_bytes = builder.framework_backend.table(
        "flix_residual_links"
    ).size_bytes()

    flix = Flix(collection, config, meta_documents, meta_of, report)
    flix._builder = builder
    flix._backend_factory = SqliteBackend
    return flix


def _loaders() -> Dict[str, Callable]:
    return {
        "ppo": PpoIndex.load,
        "hopi": HopiIndex.load,
        "transitive_closure": TransitiveClosureIndex.load,
        "apex": lambda backend, tags: ApexIndex.load(backend, "apex"),
        "kindex": lambda backend, tags: KBisimulationIndex.load(backend, "kindex"),
        "fbindex": lambda backend, tags: ForwardBackwardIndex.load(
            backend, "fbindex"
        ),
    }
