"""Automatic homogeneous-subcollection detection (section 7).

"We plan to investigate more sophisticated algorithms for building meta
documents, including automatic methods that analyze the document
collection, identify homogeneous subcollections, and choose the best
indexing strategy for each subcollection."

This module implements that pipeline:

1. every document is described by a structural feature vector — its
   normalized tag histogram plus link-behaviour features (has intra links,
   is a deep-link target, outgoing link rate);
2. a deterministic leader-clustering pass groups documents whose feature
   vectors are cosine-similar into *subcollections*;
3. each subcollection gets the configuration
   :meth:`repro.core.config.FlixConfig.recommend` derives from its own
   statistics, and the Meta Document Builder runs per subcollection;
4. the merged specs are indexed as usual, yielding one
   :class:`~repro.core.framework.Flix` whose parts are each laid out by the
   configuration best suited to their shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.collection.collection import XmlCollection
from repro.collection.stats import CollectionStats, collect_statistics
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.core.ib import IndexBuilder
from repro.core.mdb import MetaDocumentBuilder
from repro.storage.memory import MemoryBackend
from repro.storage.table import StorageBackend


@dataclass
class Subcollection:
    """A structurally homogeneous group of documents."""

    documents: List[str]
    stats: CollectionStats
    config: FlixConfig

    @property
    def document_count(self) -> int:
        return len(self.documents)

    def summary(self) -> str:
        return (
            f"{self.document_count} documents -> {self.config.name} "
            f"({self.stats.link_edge_count} links, "
            f"{self.stats.element_count} elements)"
        )


# ----------------------------------------------------------------------
# feature extraction and clustering
# ----------------------------------------------------------------------
def _document_features(collection: XmlCollection) -> Dict[str, Dict[str, float]]:
    """Sparse feature vector per document: tag shares + link behaviour."""
    outgoing: Dict[str, int] = {}
    intra: Dict[str, int] = {}
    deep_target: Dict[str, int] = {}
    for u, v in collection.link_edges:
        doc_u = collection.info(u).document
        doc_v = collection.info(v).document
        outgoing[doc_u] = outgoing.get(doc_u, 0) + 1
        if doc_u == doc_v:
            intra[doc_u] = intra.get(doc_u, 0) + 1
        elif v != collection.document_root(doc_v):
            deep_target[doc_v] = deep_target.get(doc_v, 0) + 1

    features: Dict[str, Dict[str, float]] = {}
    for name in collection.documents:
        nodes = collection.document_nodes(name)
        vector: Dict[str, float] = {}
        for node in nodes:
            tag_key = "tag:" + collection.tag(node)
            vector[tag_key] = vector.get(tag_key, 0.0) + 1.0
        size = float(len(nodes))
        for key in list(vector):
            vector[key] /= size
        # link-behaviour features, weighted so they matter next to tags
        vector["link:out"] = min(1.0, outgoing.get(name, 0) / size * 4.0)
        vector["link:intra"] = 1.0 if intra.get(name) else 0.0
        vector["link:deep_target"] = 1.0 if deep_target.get(name) else 0.0
        features[name] = vector
    return features


def _cosine(a: Dict[str, float], b: Dict[str, float]) -> float:
    if len(a) > len(b):
        a, b = b, a
    dot = sum(value * b.get(key, 0.0) for key, value in a.items())
    norm_a = math.sqrt(sum(value * value for value in a.values()))
    norm_b = math.sqrt(sum(value * value for value in b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def identify_subcollections(
    collection: XmlCollection,
    similarity_threshold: float = 0.75,
    partition_size: int = 5000,
) -> List[Subcollection]:
    """Cluster the documents into homogeneous subcollections.

    Deterministic leader clustering: documents are visited in name order;
    each joins the first existing cluster whose leader vector it is at
    least ``similarity_threshold``-cosine-similar to, else founds a new
    cluster.  Each cluster then gets its own recommended configuration.
    """
    if not 0.0 < similarity_threshold <= 1.0:
        raise ValueError("similarity_threshold must be in (0, 1]")
    features = _document_features(collection)
    leaders: List[Tuple[str, Dict[str, float]]] = []
    members: Dict[str, List[str]] = {}
    for name in sorted(collection.documents):
        vector = features[name]
        placed = False
        for leader_name, leader_vector in leaders:
            if _cosine(vector, leader_vector) >= similarity_threshold:
                members[leader_name].append(name)
                placed = True
                break
        if not placed:
            leaders.append((name, vector))
            members[name] = [name]

    subcollections: List[Subcollection] = []
    for leader_name, _vector in leaders:
        documents = members[leader_name]
        nodes: Set[int] = set()
        for name in documents:
            nodes.update(collection.document_nodes(name))
        stats = collect_statistics(collection, nodes)
        config = FlixConfig.recommend(
            link_density=stats.link_density,
            intra_document_links=stats.intra_document_links,
            mean_document_size=stats.mean_document_size,
            partition_size=partition_size,
            intra_link_fraction=stats.intra_link_fraction,
        )
        subcollections.append(Subcollection(documents, stats, config))
    return subcollections


# ----------------------------------------------------------------------
# building FliX over subcollections
# ----------------------------------------------------------------------
def build_auto_partitioned(
    collection: XmlCollection,
    similarity_threshold: float = 0.75,
    partition_size: int = 5000,
    backend_factory: Callable[[], StorageBackend] = MemoryBackend,
) -> Tuple[Flix, List[Subcollection]]:
    """The full section 7 pipeline: cluster, configure, build.

    Returns the built index plus the subcollection report.  The resulting
    ``Flix`` carries a synthetic "auto" configuration whose allowed
    strategies are the union of the per-subcollection ones (needed by the
    ISS when ``add_document`` grows the index later).
    """
    subcollections = identify_subcollections(
        collection, similarity_threshold, partition_size
    )
    specs = []
    for subcollection in subcollections:
        builder = MetaDocumentBuilder(collection, subcollection.config)
        specs.extend(
            builder.build_specs(
                documents=set(subcollection.documents), first_id=len(specs)
            )
        )
    allowed: Tuple[str, ...] = tuple(
        sorted({s for sub in subcollections for s in sub.config.allowed_strategies})
    )
    merged_config = FlixConfig(
        name="auto_subcollections",
        mdb_strategy="naive",  # nominal; the specs were built above
        allowed_strategies=allowed,
        partition_size=partition_size,
    )
    builder = IndexBuilder(collection, merged_config, backend_factory)
    meta_documents, meta_of, report = builder.build(specs)
    flix = Flix(collection, merged_config, meta_documents, meta_of, report)
    flix._builder = builder
    flix._backend_factory = backend_factory
    return flix, subcollections
