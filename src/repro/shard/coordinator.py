"""The coordinator front door: route, delegate, merge, cache, degrade.

A :class:`ShardCoordinator` owns the :class:`~repro.shard.plan.ShardMap`
and one :class:`ShardClient` (a small connection pool) per shard worker.
Every :class:`~repro.core.api.QueryRequest` takes one of two paths:

**Delegation** (the default for single-shard work): the whole request is
shipped to the shard owning its source element and answered there with
``Flix.query`` — byte-identical to local evaluation because each worker
mmap-attaches the complete packed index (ownership steers routing and
page-cache locality; see ``docs/SHARDING.md``).  Collection-graph kinds
(``children``, ``connections``, ``cost``) and any request whose
cross-shard closure is a single shard always delegate.

**Distributed evaluation** (``cross_shard="distributed"``): requests
whose residual-link closure spans several shards run the PEE's priority-
queue loop *here*, shipping each per-entry expansion to the owning shard
(:class:`~repro.shard.distributed.DistributedEvaluator`).  This is the
faithful cluster-scale protocol — no worker needs more than its own
shard's pages — and still byte-identical to serial evaluation, because
the merge *is* the serial algorithm.

Degradation ladder (completeness flags of PR 3 reused verbatim):

1. a delegated request whose owner is down fails over to the next
   healthy shard — the answer stays ``complete`` (workers are replicas
   of the full index), only ``flix_shard_failovers_total`` moves;
2. a distributed expansion whose owning shard is down (all replicas
   exhausted) loses that subtree — the stream continues on surviving
   shards and the response is flagged ``truncated``;
3. no healthy shard at all → an empty ``degraded`` response instead of
   an exception.

Results are cached in a coordinator-level
:class:`~repro.serve.cache.ShardedLRUCache` under the same policy as
``Flix.query``: only complete, unbudgeted, unlimited (or scalar) answers
are stored; limited requests slice the cached superset.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.api import QueryRequest, QueryResponse
from repro.core.config import CacheConfig
from repro.core.pee import QueryBudget, QueryStats
from repro.indexes.base import NodeId
from repro.obs import Observability
from repro.obs.export import render
from repro.serve.cache import ShardedLRUCache
from repro.shard.distributed import DistributedEvaluator, ExpansionLost
from repro.shard.plan import ShardMap, load_shard_map
from repro.shard.protocol import (
    RemoteShardError,
    ShardUnavailable,
    read_frame,
    write_frame,
)

#: exception types a worker may legitimately raise at the caller; they are
#: re-raised client-side as the same type (the rest become RemoteShardError)
_PASSTHROUGH_ERRORS = {"KeyError": KeyError, "ValueError": ValueError}


class ShardClient:
    """Framed-protocol client for one shard worker, with a socket pool.

    Thread-safe: concurrent calls check sockets out of the pool (opening
    new ones on demand) and return them afterwards, so N coordinator
    threads drive N concurrent conversations with the worker.
    """

    def __init__(
        self,
        shard_id: int,
        host: str,
        port: int,
        connect_timeout: float = 5.0,
    ) -> None:
        self.shard_id = shard_id
        self.host = host
        self.port = port
        self._connect_timeout = connect_timeout
        self._pool: List[socket.socket] = []
        self._lock = threading.Lock()
        self._closed = False

    def call(self, verb: str, payload: dict) -> Tuple[str, dict]:
        """One request/reply round trip; raises :class:`ShardUnavailable`
        on transport failure and re-raises remote ``KeyError`` /
        ``ValueError`` as such."""
        sock = self._checkout()
        try:
            write_frame(sock, (verb, payload))
            reply_verb, reply_payload = read_frame(sock)
        except (ConnectionError, OSError) as exc:
            try:
                sock.close()
            except OSError:
                pass
            raise ShardUnavailable(self.shard_id, str(exc)) from exc
        self._checkin(sock)
        if reply_verb == "error":
            exc_type = reply_payload.get("type", "RuntimeError")
            message = reply_payload.get("message", "")
            if exc_type in _PASSTHROUGH_ERRORS:
                # KeyError repr-quotes its message; strip the quoting the
                # worker's str() added so the text matches local raises
                raise _PASSTHROUGH_ERRORS[exc_type](message.strip("'\""))
            raise RemoteShardError(exc_type, message)
        return reply_verb, reply_payload

    def _checkout(self) -> socket.socket:
        with self._lock:
            if self._closed:
                raise ShardUnavailable(self.shard_id, "client closed")
            if self._pool:
                return self._pool.pop()
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self._connect_timeout
            )
            sock.settimeout(None)
            return sock
        except OSError as exc:
            raise ShardUnavailable(self.shard_id, str(exc)) from exc

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            if self._closed:
                sock.close()
            else:
                self._pool.append(sock)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for sock in pool:
            try:
                sock.close()
            except OSError:
                pass


class ShardCoordinator:
    """Fan requests across shard workers; merge; cache; degrade."""

    def __init__(
        self,
        shard_map: ShardMap,
        clients: Sequence[ShardClient],
        cache: Optional[CacheConfig] = None,
        default_budget: Optional[QueryBudget] = None,
        cross_shard: str = "delegate",
        observability: Optional[Observability] = None,
        role: str = "primary",
        replication=None,
        planner=None,
    ) -> None:
        if len(clients) != shard_map.shards:
            raise ValueError(
                f"shard map expects {shard_map.shards} workers, "
                f"got {len(clients)} clients"
            )
        if cross_shard not in ("delegate", "distributed"):
            raise ValueError(
                "cross_shard must be 'delegate' or 'distributed'"
            )
        if role not in ("primary", "follower"):
            raise ValueError(f"role must be primary or follower, got {role!r}")
        #: what this deployment is: a primary takes maintenance verbs, a
        #: follower serves reads while tailing a primary's WAL
        self.role = role
        #: optional replication state provider (anything exposing
        #: ``replication_lag`` and ``generation``, e.g. a
        #: :class:`~repro.wal.follower.FollowerFlix`) surfaced in health()
        self._replication = replication
        self._map = shard_map
        self._clients = list(clients)
        self._cache: Optional[ShardedLRUCache] = (
            cache.build() if cache is not None else None
        )
        self._default_budget = default_budget
        self._cross_shard = cross_shard
        self._obs = observability if observability is not None else Observability()
        self._healthy = [True] * shard_map.shards
        self._health_lock = threading.Lock()
        self._round_robin = itertools.count()
        # ``planner`` is the same ProbePlanner the workers' serial
        # evaluators run (repro.core.planner) — the distributed loop then
        # prunes identically, keeping sharded answers byte-identical to
        # serial ones with the planner on or off.  ``connect`` derives it
        # from the saved deployment's manifest.
        self._distributed = DistributedEvaluator(
            shard_map, self._expand_rpc, self._probe_rpc, planner=planner
        )
        registry = self._obs.registry
        self._m_requests = registry.counter(
            "flix_shard_requests_total",
            "Requests the coordinator completed, by shard, mode "
            "(delegate/distributed), and completeness.",
        )
        self._m_expand_rpcs = registry.counter(
            "flix_shard_expand_rpcs_total",
            "Per-entry expansion RPCs issued by distributed evaluation.",
        )
        self._m_failovers = registry.counter(
            "flix_shard_failovers_total",
            "Requests re-routed off an unreachable owner shard.",
        )
        self._m_degraded = registry.counter(
            "flix_shard_degraded_total",
            "Responses that came back empty-degraded (no healthy shard).",
        )
        self._m_cache_hits = registry.counter(
            "flix_shard_cache_hits_total",
            "Coordinator result-cache hits, by query kind.",
        )
        self._m_cache_misses = registry.counter(
            "flix_shard_cache_misses_total",
            "Coordinator result-cache misses, by query kind.",
        )
        self._g_healthy = registry.gauge(
            "flix_shard_workers_healthy",
            "Shard workers currently believed reachable.",
        )
        self._g_healthy.set(shard_map.shards)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def connect(
        cls,
        index_dir,
        endpoints: Sequence[Tuple[str, int]],
        **kwargs,
    ) -> "ShardCoordinator":
        """Coordinator over already-running workers at ``endpoints``
        (ordered by shard id), using the shard map saved in ``index_dir``.

        The probe planner the deployment's saved configuration implies
        (manifest ``config.planner``, overridable via ``FLIX_PLANNER``
        exactly as in ``Flix.load``) is attached to the distributed loop
        unless an explicit ``planner=`` is passed."""
        shard_map = load_shard_map(index_dir)
        clients = [
            ShardClient(shard_id, host, port)
            for shard_id, (host, port) in enumerate(endpoints)
        ]
        if "planner" not in kwargs:
            kwargs["planner"] = _planner_for_deployment(index_dir)
        return cls(shard_map, clients, **kwargs)

    # ------------------------------------------------------------------
    # the query surface (mirrors Flix.query semantics)
    # ------------------------------------------------------------------
    def query(
        self,
        request: QueryRequest,
        budget: Optional[QueryBudget] = None,
    ) -> QueryResponse:
        """Evaluate one request across the shard fleet.

        Same contract as ``Flix.query``: the response carries the query's
        private stats and completeness; ``budget`` (or ``request.budget``,
        or the coordinator's default) bounds the work; cache policy is
        identical (complete, unbudgeted, unlimited-or-scalar answers only).
        """
        started = time.perf_counter()
        effective_budget = budget if budget is not None else request.budget
        if effective_budget is None:
            effective_budget = self._default_budget
        key = request.cache_key() if self._cache is not None else None
        captured_generation = 0
        if key is not None:
            captured_generation = self._cache.generation
            boxed = self._cache.get(key)
            if boxed is not None:
                self._m_cache_hits.inc(kind=request.kind)
                return self._replay(request, boxed[0], started)
            self._m_cache_misses.inc(kind=request.kind)
        payload, response, mode, shard = self._evaluate(
            request, effective_budget, started
        )
        if request.explain and response.plan is None:
            # delegated answers carry the worker's plan already; the
            # distributed path evaluates here and has no local layout, so
            # ask a worker for the (identical) static plan
            response.plan = self.explain(request)
        self._m_requests.inc(
            shard=str(shard), mode=mode, status=response.stats.completeness
        )
        if (
            key is not None
            and effective_budget is None
            and response.stats.is_complete
            and (request.is_scalar or request.limit is None)
        ):
            self._cache.put(
                key, (payload, response.stats),
                generation=captured_generation,
            )
        return response

    def _replay(
        self, request: QueryRequest, entry, started: float
    ) -> QueryResponse:
        payload, stats = entry
        if request.is_scalar:
            return QueryResponse(
                request, [], payload, stats, True,
                time.perf_counter() - started,
                layout_generation=self._map.generation,
            )
        results = list(payload)
        if request.limit is not None:
            results = results[: request.limit]
        return QueryResponse(
            request, results, None, stats, True,
            time.perf_counter() - started,
            layout_generation=self._map.generation,
        )

    def explain(self, request: QueryRequest):
        """The static :class:`~repro.core.planner.QueryPlan` for
        ``request`` — ``Flix.explain`` with the same failover discipline
        as delegation (every worker holds the whole index, so any healthy
        shard's plan is authoritative).  ``None`` when no shard answers.
        """
        for shard_id in self._failover_order(self._route(request)):
            try:
                _, reply = self._clients[shard_id].call(
                    "explain", {"request": request}
                )
            except ShardUnavailable:
                self._mark_health(shard_id, False)
                continue
            self._mark_health(shard_id, True)
            return reply["plan"]
        return None

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _evaluate(
        self,
        request: QueryRequest,
        budget: Optional[QueryBudget],
        started: float,
    ):
        """Returns ``(cacheable_payload, response, mode, shard_label)``."""
        if self._cross_shard == "distributed":
            shards_needed = self._participating_shards(request)
            if shards_needed is not None and len(shards_needed) > 1:
                payload, response = self._evaluate_distributed(
                    request, budget, started
                )
                return payload, response, "distributed", "*"
        shard = self._route(request)
        response = self._delegate(shard, request, budget, started)
        payload = response.value if request.is_scalar else response.results
        return payload, response, "delegate", shard

    def _participating_shards(
        self, request: QueryRequest
    ) -> Optional[set]:
        """The cross-shard closure a request can touch; ``None`` means the
        kind always delegates (collection-graph kinds)."""
        kind = request.kind
        if kind in ("children", "connections", "cost"):
            return None
        if kind == "descendants" and request.source_tag is not None:
            # type queries seed every tagged element; with >1 shard the
            # seeds (and their closures) can span the whole fleet
            return set(range(self._map.shards))
        if kind in ("descendants", "path"):
            return self._map.reachable_shards(
                self._map.shard_of_node(request.source), forward=True
            )
        if kind == "ancestors":
            return self._map.reachable_shards(
                self._map.shard_of_node(request.source), forward=False
            )
        if kind == "test":
            shards = self._map.reachable_shards(
                self._map.shard_of_node(request.source), forward=True
            )
            if request.bidirectional:
                shards = shards | self._map.reachable_shards(
                    self._map.shard_of_node(request.target), forward=False
                )
            return shards
        return None

    def _route(self, request: QueryRequest) -> int:
        """The owner shard a delegated request is sent to first."""
        if request.source is not None:
            try:
                return self._map.shard_of_node(request.source)
            except KeyError:
                # let the worker raise the canonical per-kind error for an
                # unknown source; route round-robin meanwhile
                pass
        return next(self._round_robin) % self._map.shards

    def _failover_order(self, owner: int) -> Iterator[int]:
        """Owner first, then the other shards, healthy ones before
        previously-failed ones (which get a reconnection attempt last)."""
        ring = [
            (owner + offset) % self._map.shards
            for offset in range(self._map.shards)
        ]
        with self._health_lock:
            healthy = list(self._healthy)
        yield from (sid for sid in ring if healthy[sid])
        yield from (sid for sid in ring if not healthy[sid])

    def _delegate(
        self,
        owner: int,
        request: QueryRequest,
        budget: Optional[QueryBudget],
        started: float,
    ) -> QueryResponse:
        for shard_id in self._failover_order(owner):
            try:
                _, reply = self._clients[shard_id].call(
                    "query", {"request": request, "budget": budget}
                )
            except ShardUnavailable:
                self._mark_health(shard_id, False)
                continue
            self._mark_health(shard_id, True)
            if shard_id != owner:
                self._m_failovers.inc(shard=str(owner))
            return reply["response"]
        return self._degraded_response(request, started)

    def _degraded_response(
        self, request: QueryRequest, started: float
    ) -> QueryResponse:
        """No healthy shard: an empty answer flagged ``degraded`` (the
        serving layer's give-something-back contract, never an exception)."""
        self._m_degraded.inc()
        stats = QueryStats()
        stats.mark_degraded()
        return QueryResponse(
            request, [], None, stats, False,
            time.perf_counter() - started,
            layout_generation=self._map.generation,
        )

    # ------------------------------------------------------------------
    # distributed evaluation (multi-shard closures)
    # ------------------------------------------------------------------
    def _evaluate_distributed(
        self,
        request: QueryRequest,
        budget: Optional[QueryBudget],
        started: float,
    ) -> Tuple[object, QueryResponse]:
        kind = request.kind
        stats = QueryStats()
        value = None
        results: List = []
        if kind == "test":
            if request.bidirectional:
                value = self._distributed.connection_test_bidirectional(
                    request.source, request.target, request.max_distance,
                    stats, budget=budget,
                )
            else:
                value = self._distributed.connection_test(
                    request.source, request.target, request.max_distance,
                    stats, budget=budget,
                )
        elif kind == "path":
            results, stats = self._distributed_path(request, budget)
        else:
            if request.source_tag is not None:
                seeds = self._type_seeds(request.source_tag)
                skip: Tuple[NodeId, ...] = ()
            else:
                seeds = [request.source]
                skip = () if request.include_self else (request.source,)
            stream = self._distributed.search(
                seeds, request.tag, request.max_distance,
                kind == "descendants", skip, stats,
                exact_order=request.exact_order, budget=budget,
            )
            iterator: Iterator = stream
            if request.limit is not None:
                iterator = itertools.islice(iterator, request.limit)
            results = list(iterator)
            stream.close()
        elapsed = time.perf_counter() - started
        if request.is_scalar:
            response = QueryResponse(
                request, [], value, stats, False, elapsed,
                layout_generation=self._map.generation,
            )
            return value, response
        response = QueryResponse(
            request, results, None, stats, False, elapsed,
            layout_generation=self._map.generation,
        )
        return results, response

    def _distributed_path(
        self, request: QueryRequest, budget: Optional[QueryBudget]
    ) -> Tuple[List[Tuple[NodeId, int]], QueryStats]:
        """Mirror of ``Flix._evaluate_path`` over distributed searches."""
        aggregate = QueryStats()
        frontier: Dict[NodeId, int] = {request.source: 0}
        for tag in request.path:
            next_frontier: Dict[NodeId, int] = {}
            for node, distance in sorted(
                frontier.items(), key=lambda kv: kv[1]
            ):
                sub_stats = QueryStats()
                for result in self._distributed.search(
                    [node], tag, request.max_distance, True, (node,),
                    sub_stats, budget=budget,
                ):
                    total = distance + result.distance
                    current = next_frontier.get(result.node)
                    if current is None or total < current:
                        next_frontier[result.node] = total
                aggregate.merge(sub_stats)
            if not next_frontier:
                return [], aggregate
            frontier = next_frontier
        pairs = sorted(frontier.items(), key=lambda kv: (kv[1], kv[0]))
        return pairs, aggregate

    def _type_seeds(self, source_tag: str) -> List[NodeId]:
        for shard_id in self._failover_order(0):
            try:
                _, reply = self._clients[shard_id].call(
                    "type_seeds", {"source_tag": source_tag}
                )
            except ShardUnavailable:
                self._mark_health(shard_id, False)
                continue
            self._mark_health(shard_id, True)
            return reply["seeds"]
        return []

    def _expand_rpc(self, meta_id: int, payload: dict):
        owner = self._map.shard_of_meta[meta_id]
        for shard_id in self._failover_order(owner):
            try:
                _, reply = self._clients[shard_id].call("expand", payload)
            except ShardUnavailable:
                self._mark_health(shard_id, False)
                continue
            self._mark_health(shard_id, True)
            self._m_expand_rpcs.inc(shard=str(shard_id))
            return reply["outcome"], reply["stats"]
        raise ExpansionLost(owner)

    def _probe_rpc(self, meta_id: int, payload: dict):
        owner = self._map.shard_of_meta[meta_id]
        for shard_id in self._failover_order(owner):
            try:
                _, reply = self._clients[shard_id].call(
                    "connection_probe", payload
                )
            except ShardUnavailable:
                self._mark_health(shard_id, False)
                continue
            self._mark_health(shard_id, True)
            self._m_expand_rpcs.inc(shard=str(shard_id))
            return reply["outcome"], reply["stats"]
        raise ExpansionLost(owner)

    # ------------------------------------------------------------------
    # health / metrics / lifecycle
    # ------------------------------------------------------------------
    def _mark_health(self, shard_id: int, healthy: bool) -> None:
        with self._health_lock:
            if self._healthy[shard_id] == healthy:
                return
            self._healthy[shard_id] = healthy
            count = sum(self._healthy)
        self._g_healthy.set(count)

    def health(self) -> Dict:
        """Ping every shard; returns per-shard status and refreshes the
        health map (a recovered worker goes back into rotation)."""
        shards = []
        for shard_id, client in enumerate(self._clients):
            try:
                _, pong = client.call("ping", {})
                self._mark_health(shard_id, True)
                shards.append(
                    {
                        "shard": shard_id,
                        "healthy": True,
                        "generation": pong["generation"],
                        "owned_metas": pong["owned_metas"],
                        "pid": pong["pid"],
                        "role": pong.get("role", "primary"),
                    }
                )
            except (ShardUnavailable, RemoteShardError) as exc:
                self._mark_health(shard_id, False)
                shards.append(
                    {"shard": shard_id, "healthy": False, "error": str(exc)}
                )
        healthy = sum(1 for s in shards if s["healthy"])
        report = {
            "shards": shards,
            "healthy": healthy,
            "total": len(shards),
            "generation": self._map.generation,
            "cross_shard": self._cross_shard,
            "role": self.role,
        }
        if self._replication is not None:
            report["replication_lag"] = self._replication.replication_lag
            report["replication_generation"] = self._replication.generation
        return report

    def cache_stats(self):
        """Coordinator cache counters (None when caching is off)."""
        return self._cache.stats() if self._cache is not None else None

    def invalidate_cache(self) -> None:
        if self._cache is not None:
            self._cache.invalidate_all()

    def metrics_text(self, format: str = "json") -> str:
        """Export the coordinator's ``flix_shard_*`` metrics."""
        return render(self._obs.registry, format)

    def shutdown_workers(self) -> None:
        """Ask every reachable worker to exit (best effort)."""
        for client in self._clients:
            try:
                client.call("shutdown", {})
            except (ShardUnavailable, RemoteShardError):
                pass

    def close(self) -> None:
        for client in self._clients:
            client.close()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _planner_for_deployment(index_dir):
    """The :class:`~repro.core.planner.ProbePlanner` a saved deployment's
    manifest configuration implies, honouring the ``FLIX_PLANNER``
    environment override exactly as ``Flix.load`` does.  ``None`` when no
    planner is configured (the classic fixed discipline), or when the
    manifest is missing/unreadable (advisory — a coordinator must come up
    regardless).

    The coordinator holds no index layout, so the planner runs without
    statistics: frontier pruning (the default mode) needs none, and
    cost-order ranking simply stays off here — either way the result
    stream is byte-identical to the workers' serial evaluation.
    """
    import json as _json
    import os as _os
    from pathlib import Path as _Path

    from repro.core.config import PlannerConfig
    from repro.core.planner import ProbePlanner

    override = _os.environ.get("FLIX_PLANNER", "")
    if override == "0":
        return None
    data = None
    try:
        manifest = _json.loads(
            (_Path(index_dir) / "manifest.json").read_text(encoding="utf-8")
        )
        data = manifest.get("config", {}).get("planner")
    except Exception:
        data = None
    if data is None and override == "":
        return None
    config = PlannerConfig.from_dict(data) if data else PlannerConfig()
    return ProbePlanner(config)


__all__ = ["ShardClient", "ShardCoordinator"]
