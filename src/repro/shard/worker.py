"""The per-shard worker: one process, one mmap-attached ``Flix``.

A worker cold-attaches the saved index (``Flix.load`` — with the packed
layout this is the O(1) mmap attach of ``docs/DATA_LAYOUT.md``; the
``.pack`` segments are mapped read-only, so N workers on one host share
a single page-cache copy), reads the :class:`~repro.shard.plan.ShardMap`
beside it, and serves framed requests (:mod:`repro.shard.protocol`) on a
loopback TCP socket.

Verbs served:

``query``
    Full delegation: evaluate one :class:`~repro.core.api.QueryRequest`
    with ``Flix.query`` and return the :class:`QueryResponse` verbatim.
    Every worker holds the whole (lazily-faulted) index, so a delegated
    answer is byte-identical to single-process evaluation by definition;
    *ownership* steers routing and page-cache locality, not correctness.
``expand`` / ``connection_probe``
    The distributed-evaluation seam: run exactly one
    :meth:`~repro.core.pee.PathExpressionEvaluator.expand_entry` (or
    ``connection_probe``) against this worker's index and return the
    outcome plus the counter deltas, leaving the priority queue at the
    coordinator.
``explain``
    The EXPLAIN surface: return ``Flix.explain``'s static
    :class:`~repro.core.planner.QueryPlan` for one request without
    evaluating it (any worker's plan is authoritative — each holds the
    whole index).
``type_seeds``
    Seed list for an ``A//B`` type query, computed the same way
    ``Flix._raw_stream`` computes it.
``wal_pull``
    Follower replication (``docs/DURABILITY.md``): serve the records of
    the ``wal.log`` beside the index newer than the caller's cursor
    generation, so a :class:`~repro.wal.follower.RemoteWalSource` can
    tail this deployment across hosts.  Replies are paged (at most
    ``max_records`` ≤ :data:`WAL_PULL_MAX_RECORDS` records per frame,
    ``truncated`` flagging a remainder), so one poll against a long
    backlog never serializes the whole log into a single frame.
``ping`` / ``metrics`` / ``shutdown``
    Liveness + role + layout generation, Prometheus/JSON metric export,
    and graceful stop.

Run one from the command line (the coordinator's spawner does exactly
this)::

    python -m repro.shard.worker --collection DIR --index DIR --shard K

The process binds ``--port`` (0 = ephemeral), prints a single
``FLIX-SHARD-READY shard=<k> port=<p> generation=<g>`` line to stdout,
and serves until a ``shutdown`` frame or SIGTERM.  SIGTERM drains
gracefully: stop accepting connections, let in-flight requests finish
and their replies flush, fsync the WAL tail if one is attached, exit 0.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

from repro.collection.io import load_collection
from repro.core.framework import Flix
from repro.core.pee import QueryStats
from repro.obs import Observability
from repro.shard.plan import ShardMap, load_shard_map
from repro.shard.protocol import read_frame, write_frame

#: worker-side injected evaluator latency (seconds) — the sharded bench
#: sets this so every worker pays the same storage stall the serial
#: baseline pays (see docs/SHARDING.md, "Bench methodology")
LATENCY_ENV = "FLIX_SHARD_LATENCY_MS"

READY_PREFIX = "FLIX-SHARD-READY"

#: hard cap on records per ``wal_pull`` reply frame — followers page
#: through longer backlogs via the reply's ``truncated`` flag
WAL_PULL_MAX_RECORDS = 256


class ShardWorker:
    """Serve one shard's slice of the query load over framed TCP."""

    def __init__(
        self,
        flix: Flix,
        shard_map: ShardMap,
        shard_id: int,
        observability: Optional[Observability] = None,
        wal_path=None,
        role: str = "primary",
    ) -> None:
        if not 0 <= shard_id < shard_map.shards:
            raise ValueError(
                f"shard id {shard_id} outside 0..{shard_map.shards - 1}"
            )
        if role not in ("primary", "follower"):
            raise ValueError(f"role must be primary or follower, got {role!r}")
        self.flix = flix
        self.shard_map = shard_map
        self.shard_id = shard_id
        #: where ``wal_pull`` reads from (``attach`` points this at the
        #: ``wal.log`` beside the index; a missing file serves as empty)
        self.wal_path = wal_path
        self.role = role
        self._obs = observability if observability is not None else Observability()
        self._requests = self._obs.registry.counter(
            "flix_shard_worker_requests_total",
            "Frames handled by this shard worker, by verb and status.",
        )
        self._listener: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._threads: list = []
        # in-flight dispatch accounting for the SIGTERM drain
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._idle = threading.Condition(self._inflight_lock)
        self._draining = False

    # ------------------------------------------------------------------
    # construction from a saved deployment
    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls,
        collection_dir,
        index_dir,
        shard_id: int,
        latency_seconds: float = 0.0,
        verify: bool = True,
        role: str = "primary",
    ) -> "ShardWorker":
        """Cold-attach a saved collection + index + shard map.

        ``latency_seconds`` wraps the evaluator in the benchmark's
        GIL-releasing stall proxy (modeling a remote/disk index lookup);
        0 disables it.  The ``wal.log`` beside the index (if any) is
        served through ``wal_pull`` so followers can tail this worker.
        """
        from repro.wal.recovery import wal_path_for

        collection = load_collection(collection_dir)
        flix = Flix.load(collection, index_dir, verify=verify)
        shard_map = load_shard_map(index_dir)
        if (
            shard_map.index_fingerprint
            and shard_map.index_fingerprint != flix.index_fingerprint()
        ):
            raise ValueError(
                "shard map was planned against a different index "
                "(fingerprint mismatch); re-run the planner"
            )
        if latency_seconds > 0:
            from repro.bench.serving import LatencyEvaluator

            flix.pee = LatencyEvaluator(flix.pee, latency_seconds)
        return cls(
            flix, shard_map, shard_id,
            wal_path=wal_path_for(index_dir), role=role,
        )

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and serve in background threads; returns ``(host, port)``."""
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        bound_host, bound_port = self._listener.getsockname()[:2]
        accept_thread = threading.Thread(
            target=self._accept_loop, name=f"shard-{self.shard_id}-accept",
            daemon=True,
        )
        accept_thread.start()
        self._threads.append(accept_thread)
        return bound_host, bound_port

    def wait(self) -> None:
        """Block until a ``shutdown`` frame (or :meth:`close`) stops us."""
        self._stop.wait()

    def close(self) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful stop (the SIGTERM path): stop accepting connections,
        wait for in-flight dispatches to finish (their replies still go
        out), fsync the WAL tail, then release :meth:`wait`.

        Idle connections parked in ``read_frame`` are simply dropped at
        process exit — only requests already being evaluated are owed a
        reply.
        """
        with self._inflight_lock:
            self._draining = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(remaining)
        wal = getattr(self.flix, "wal", None)
        if wal is not None:
            wal.sync()
        self.close()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            conn.settimeout(None)
            while not self._stop.is_set():
                try:
                    verb, payload = read_frame(conn)
                except (ConnectionError, OSError):
                    return  # peer hung up
                with self._inflight_lock:
                    if self._draining:
                        # a request racing the drain gets an explicit
                        # refusal, not a dropped connection
                        try:
                            write_frame(
                                conn,
                                ("error", {
                                    "type": "ShardUnavailable",
                                    "message": "worker is draining",
                                }),
                            )
                        except (ConnectionError, OSError):
                            pass
                        return
                    self._inflight += 1
                try:
                    try:
                        reply = self._dispatch(verb, payload)
                        self._requests.inc(verb=verb, status="ok")
                    except Exception as exc:  # keep the worker alive
                        self._requests.inc(verb=verb, status="error")
                        reply = (
                            "error",
                            {"type": type(exc).__name__, "message": str(exc)},
                        )
                    try:
                        write_frame(conn, reply)
                    except (ConnectionError, OSError):
                        return
                finally:
                    # the reply (if any) is on the wire before the drain
                    # is allowed to observe this request as finished
                    with self._idle:
                        self._inflight -= 1
                        self._idle.notify_all()
                if verb == "shutdown":
                    self.close()
                    return

    # ------------------------------------------------------------------
    # verb handlers
    # ------------------------------------------------------------------
    def _dispatch(self, verb: str, payload: dict):
        if verb == "query":
            response = self.flix.query(
                payload["request"], budget=payload.get("budget")
            )
            return "response", {"response": response}
        if verb == "expand":
            stats = QueryStats()
            outcome = self.flix.pee.expand_entry(
                payload["meta_id"], payload["entry"], payload["priority"],
                payload["tag"], payload["forward"], payload["skip"],
                payload["max_distance"], payload["previous"], stats,
            )
            return "expanded", {"outcome": outcome, "stats": stats}
        if verb == "connection_probe":
            stats = QueryStats()
            outcome = self.flix.pee.connection_probe(
                payload["meta_id"], payload["entry"], payload["priority"],
                payload["target"], payload["target_meta"],
                payload["max_distance"], payload["previous"], stats,
            )
            return "probed", {"outcome": outcome, "stats": stats}
        if verb == "explain":
            # the EXPLAIN surface: every worker holds the whole index, so
            # any shard's static plan is authoritative for the deployment
            return "plan", {"plan": self.flix.explain(payload["request"])}
        if verb == "type_seeds":
            layout = self.flix.layout
            seeds = [
                node
                for node in self.flix.collection.nodes_with_tag(
                    payload["source_tag"]
                )
                if node in layout.meta_of
            ]
            return "seeds", {"seeds": seeds}
        if verb == "wal_pull":
            from repro.wal.log import read_wal

            if self.wal_path is None:
                raise ValueError("this worker serves no write-ahead log")
            after = int(payload.get("after_generation", -1))
            # page size bounds the reply frame: a single add_batch
            # record can be huge, so never serialize the whole backlog
            # into one frame — the follower iterates on ``truncated``
            limit = int(payload.get("max_records", WAL_PULL_MAX_RECORDS))
            limit = max(1, min(limit, WAL_PULL_MAX_RECORDS))
            records, _discarded = read_wal(self.wal_path)
            base = records[0].generation if records else after
            tail = records[-1].generation if records else after
            fresh = [r for r in records if r.generation > after]
            page, truncated = fresh[:limit], len(fresh) > limit
            return "wal_records", {
                "records": [
                    {
                        "verb": r.verb,
                        "generation": r.generation,
                        "payload": r.payload,
                    }
                    for r in page
                ],
                "base_generation": base,
                "tail_generation": tail,
                "truncated": truncated,
            }
        if verb == "ping":
            return "pong", {
                "shard": self.shard_id,
                "generation": self.flix.layout_generation,
                "owned_metas": len(self.shard_map.owned_metas(self.shard_id)),
                "pid": os.getpid(),
                "role": self.role,
            }
        if verb == "metrics":
            from repro.obs.export import render

            fmt = payload.get("format", "json")
            return "metrics_text", {"text": render(self._obs.registry, fmt)}
        if verb == "shutdown":
            return "bye", {}
        raise ValueError(f"unknown verb {verb!r}")


# ----------------------------------------------------------------------
# subprocess management (used by the coordinator CLI, bench, and tests)
# ----------------------------------------------------------------------
@dataclass
class WorkerProcess:
    """A spawned worker subprocess and where to reach it."""

    process: subprocess.Popen
    shard_id: int
    host: str
    port: int

    def close(self, timeout: float = 5.0) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=timeout)
        if self.process.stdout is not None:
            self.process.stdout.close()


def spawn_worker(
    collection_dir,
    index_dir,
    shard_id: int,
    latency_seconds: float = 0.0,
    host: str = "127.0.0.1",
    startup_timeout: float = 60.0,
) -> WorkerProcess:
    """Start ``python -m repro.shard.worker`` and wait for its READY line."""
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing
        else package_root + os.pathsep + existing
    )
    if latency_seconds > 0:
        env[LATENCY_ENV] = str(latency_seconds * 1000.0)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.shard.worker",
            "--collection", str(collection_dir),
            "--index", str(index_dir),
            "--shard", str(shard_id),
            "--host", host,
            "--port", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    deadline = time.monotonic() + startup_timeout
    lines = []
    while True:
        if time.monotonic() > deadline:
            process.kill()
            raise TimeoutError(
                f"shard {shard_id} worker did not become ready; output so "
                f"far: {''.join(lines)[-2000:]}"
            )
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(
                f"shard {shard_id} worker exited during startup "
                f"(rc={process.poll()}): {''.join(lines)[-2000:]}"
            )
        lines.append(line)
        if line.startswith(READY_PREFIX):
            fields = dict(
                part.split("=", 1) for part in line.split()[1:]
            )
            return WorkerProcess(
                process=process,
                shard_id=int(fields["shard"]),
                host=host,
                port=int(fields["port"]),
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.shard.worker",
        description="serve one shard of a saved FliX deployment",
    )
    parser.add_argument("--collection", required=True)
    parser.add_argument("--index", required=True)
    parser.add_argument("--shard", type=int, required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--latency-ms", type=float,
        default=float(os.environ.get(LATENCY_ENV, "0") or 0),
        help="injected evaluator stall per search call (bench use)",
    )
    parser.add_argument(
        "--role", choices=("primary", "follower"), default="primary",
        help="what this worker reports itself as on ping/health",
    )
    args = parser.parse_args(argv)
    worker = ShardWorker.attach(
        args.collection, args.index, args.shard,
        latency_seconds=args.latency_ms / 1000.0,
        role=args.role,
    )

    def _drain(signum, frame):  # pragma: no cover - signal delivery timing
        # run the drain off the signal frame so a handler firing inside
        # wait() cannot deadlock on the in-flight condition
        threading.Thread(
            target=worker.drain, name="sigterm-drain", daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _drain)
    host, port = worker.start(args.host, args.port)
    print(
        f"{READY_PREFIX} shard={args.shard} port={port} "
        f"generation={worker.flix.layout_generation}",
        flush=True,
    )
    worker.wait()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())


__all__ = [
    "LATENCY_ENV",
    "READY_PREFIX",
    "ShardWorker",
    "WorkerProcess",
    "main",
    "spawn_worker",
]
