"""Coordinator-side distributed evaluation: the PEE loop over RPCs.

:class:`DistributedEvaluator` mirrors
:meth:`repro.core.pee.PathExpressionEvaluator._search_inner` *exactly* —
same priority queue, same pop order, same duplicate-elimination state,
same budget checks — but ships each per-entry expansion to the shard
worker owning that entry's meta document
(:meth:`~repro.core.pee.PathExpressionEvaluator.expand_entry` is a pure
function of the shipped arguments).  Because the control loop and all
its state live here and only the side-effect-free expansions run
remotely, the merged stream is **byte-identical** to serial evaluation:
the same results in the same order with the same stats — this *is* the
PEE's priority-queue merge applied to the shards' distance-ordered
expansion streams.

Failure model: when every replica of an expansion's owning shard is
unreachable, the expansion — and the whole subtree it would have
discovered — is lost.  The search continues on the surviving shards and
the response is flagged ``truncated`` (the same completeness flag a
budget stop raises): everything returned is correct, but the stream
stopped short of the full answer.
"""

from __future__ import annotations

import heapq
import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.pee import QueryBudget, QueryResult, QueryStats
from repro.indexes.base import NodeId
from repro.shard.plan import ShardMap


class ExpansionLost(RuntimeError):
    """Every replica of an expansion's owning shard is down."""

    def __init__(self, shard_id: int) -> None:
        super().__init__(f"no live replica can expand shard {shard_id}")
        self.shard_id = shard_id


#: remote ``expand_entry``: ``(meta_id, payload) -> (outcome, stats_delta)``
ExpandRpc = Callable[[int, Dict], Tuple[Optional[tuple], QueryStats]]
#: remote ``connection_probe`` with the same shape
ProbeRpc = Callable[[int, Dict], Tuple[Optional[tuple], QueryStats]]


class DistributedEvaluator:
    """Figure 4's loop with remote expansions (see module docstring)."""

    def __init__(
        self,
        shard_map: ShardMap,
        expand_rpc: ExpandRpc,
        probe_rpc: ProbeRpc,
        planner=None,
    ) -> None:
        self._map = shard_map
        self._expand_rpc = expand_rpc
        self._probe_rpc = probe_rpc
        # the same ProbePlanner (repro.core.planner) the serial evaluator
        # uses — identical frontier rules keep distributed evaluation
        # byte-identical to serial with the planner on or off
        self._planner = planner

    # ------------------------------------------------------------------
    # descendants / ancestors / type queries
    # ------------------------------------------------------------------
    def search(
        self,
        seeds: Sequence[NodeId],
        tag: Optional[str],
        max_distance: Optional[int],
        forward: bool,
        skip_nodes: Tuple[NodeId, ...],
        stats: QueryStats,
        exact_order: bool = False,
        budget: Optional[QueryBudget] = None,
        tag_rankable: bool = True,
    ) -> Iterator[QueryResult]:
        """The distributed ``_search_inner`` (same locals, same order).

        ``tag_rankable=False`` marks an internal sub-search (the serial
        evaluator's ``axis=None``) whose cost-order reordering must stay
        off even with a reordering planner configured."""
        planner = self._planner
        frontier = planner.frontier() if planner is not None else None
        rank_map = None
        if (
            planner is not None
            and planner.reorders
            and tag_rankable
            and max_distance is None
            and budget is None
            and not exact_order
        ):
            # same gating as the serial evaluator: cost order only where
            # the result *set* is provably preserved
            rank_map = planner.rank_map(tag, forward)
        entries: Dict[int, List[NodeId]] = {}
        # (priority, counter, node), or (priority, rank, counter, node)
        # under cost order — the loop reads item[0] and item[-1] only
        heap: List[tuple] = []
        default_rank = len(rank_map) if rank_map is not None else 0
        for order, seed in enumerate(seeds):
            meta_id = self._map.meta_of(seed)  # KeyError as serial
            if frontier is not None and not frontier.admit_push(seed, 0):
                continue
            if rank_map is None:
                heapq.heappush(heap, (0, order, seed))
            else:
                heapq.heappush(
                    heap,
                    (0, rank_map.get(meta_id, default_rank), order, seed),
                )
        counter = len(seeds)
        skip = tuple(skip_nodes)
        buffer: List[Tuple[int, int, QueryResult]] = []
        deadline = None
        if budget is not None and budget.deadline_seconds is not None:
            deadline = time.monotonic() + budget.deadline_seconds

        while heap:
            if budget is not None and _budget_exhausted(budget, deadline, stats):
                stats.mark_truncated()
                break
            item = heapq.heappop(heap)
            priority, entry = item[0], item[-1]
            stats.queue_pops += 1
            if exact_order:
                while buffer and buffer[0][0] < priority:
                    yield heapq.heappop(buffer)[2]
            if max_distance is not None and priority > max_distance:
                break
            if frontier is not None and not frontier.admit_pop(entry):
                # provably covered by an earlier pop (see the serial loop)
                stats.entries_dropped += 1
                stats.planner_pruned_pops += 1
                continue
            meta_id = self._map.meta_of(entry)
            previous = entries.setdefault(meta_id, [])
            try:
                outcome, delta = self._expand_rpc(
                    meta_id,
                    {
                        "meta_id": meta_id,
                        "entry": entry,
                        "priority": priority,
                        "tag": tag,
                        "forward": forward,
                        "skip": skip,
                        "max_distance": max_distance,
                        "previous": list(previous),
                    },
                )
            except ExpansionLost:
                # the subtree behind this entry is unreachable: keep going
                # on the surviving shards, flag the stream truncated
                stats.mark_truncated()
                continue
            stats.absorb_expansion(delta)
            if outcome is None:
                stats.entries_dropped += 1
                continue
            stats.meta_document_visits += 1
            emit, link_pushes = outcome

            for result in emit:
                stats.results_returned += 1
                if exact_order:
                    counter += 1
                    heapq.heappush(buffer, (result.distance, counter, result))
                else:
                    yield result

            previous.append(entry)
            for local_distance, neighbour in link_pushes:
                push_priority = priority + local_distance + 1
                if frontier is not None and not frontier.admit_push(
                    neighbour, push_priority
                ):
                    stats.planner_pruned_pushes += 1
                    continue
                stats.link_traversals += 1
                counter += 1
                if rank_map is None:
                    heapq.heappush(heap, (push_priority, counter, neighbour))
                else:
                    heapq.heappush(
                        heap,
                        (
                            push_priority,
                            rank_map.get(
                                self._map.meta_of(neighbour), default_rank
                            ),
                            counter,
                            neighbour,
                        ),
                    )

        while buffer:
            yield heapq.heappop(buffer)[2]

    # ------------------------------------------------------------------
    # connection tests
    # ------------------------------------------------------------------
    def connection_test(
        self,
        source: NodeId,
        target: NodeId,
        max_distance: Optional[int],
        stats: QueryStats,
        budget: Optional[QueryBudget] = None,
    ) -> Optional[int]:
        """The distributed ``_connection_test`` (same traversal order)."""
        entries: Dict[int, List[NodeId]] = {}
        heap: List[Tuple[int, int, NodeId]] = [(0, 0, source)]
        counter = 1
        self._map.meta_of(source)
        frontier = (
            self._planner.frontier() if self._planner is not None else None
        )
        if frontier is not None:
            frontier.admit_push(source, 0)
        target_meta = self._map.meta_of(target)
        deadline = None
        if budget is not None and budget.deadline_seconds is not None:
            deadline = time.monotonic() + budget.deadline_seconds

        while heap:
            if budget is not None and _budget_exhausted(budget, deadline, stats):
                stats.mark_truncated()
                return None
            priority, _, entry = heapq.heappop(heap)
            stats.queue_pops += 1
            if max_distance is not None and priority > max_distance:
                return None
            if frontier is not None and not frontier.admit_pop(entry):
                stats.entries_dropped += 1
                stats.planner_pruned_pops += 1
                continue
            meta_id = self._map.meta_of(entry)
            previous = entries.setdefault(meta_id, [])
            try:
                outcome, delta = self._probe_rpc(
                    meta_id,
                    {
                        "meta_id": meta_id,
                        "entry": entry,
                        "priority": priority,
                        "target": target,
                        "target_meta": target_meta,
                        "max_distance": max_distance,
                        "previous": list(previous),
                    },
                )
            except ExpansionLost:
                stats.mark_truncated()
                continue
            stats.absorb_expansion(delta)
            if outcome is None:
                stats.entries_dropped += 1
                continue
            stats.meta_document_visits += 1
            found, link_pushes = outcome
            if found is not None:
                stats.results_returned = 1
                return found
            previous.append(entry)
            for local_distance, out_target in link_pushes:
                push_priority = priority + local_distance + 1
                if frontier is not None and not frontier.admit_push(
                    out_target, push_priority
                ):
                    stats.planner_pruned_pushes += 1
                    continue
                stats.link_traversals += 1
                counter += 1
                heapq.heappush(
                    heap, (push_priority, counter, out_target)
                )
        return None

    def connection_test_bidirectional(
        self,
        source: NodeId,
        target: NodeId,
        max_distance: Optional[int],
        stats: QueryStats,
        budget: Optional[QueryBudget] = None,
    ) -> Optional[int]:
        """Alternating forward/backward search, as the serial §5.2
        optimization — both sub-searches share this query's stats."""
        forward = self.search(
            [source], None, max_distance, True, (), stats, budget=budget,
            tag_rankable=False,
        )
        backward = self.search(
            [target], None, max_distance, False, (), stats, budget=budget,
            tag_rankable=False,
        )
        try:
            seen_forward: Dict[NodeId, int] = {}
            seen_backward: Dict[NodeId, int] = {}
            streams = [(forward, seen_forward, seen_backward),
                       (backward, seen_backward, seen_forward)]
            active = [True, True]
            best: Optional[int] = None
            while any(active):
                for side, (stream, mine, theirs) in enumerate(streams):
                    if not active[side]:
                        continue
                    try:
                        result = next(stream)
                    except StopIteration:
                        active[side] = False
                        continue
                    node, distance = result.node, result.distance
                    if node not in mine or distance < mine[node]:
                        mine[node] = distance
                    if node in theirs:
                        candidate = distance + theirs[node]
                        if max_distance is None or candidate <= max_distance:
                            if best is None or candidate < best:
                                best = candidate
                                return best
            return best
        finally:
            forward.close()
            backward.close()


def _budget_exhausted(
    budget: QueryBudget, deadline: Optional[float], stats: QueryStats
) -> bool:
    """Same predicate as the serial evaluator's budget check."""
    if (
        budget.max_queue_pops is not None
        and stats.queue_pops >= budget.max_queue_pops
    ):
        return True
    if (
        budget.max_link_hops is not None
        and stats.link_traversals >= budget.max_link_hops
    ):
        return True
    return deadline is not None and time.monotonic() >= deadline


__all__ = ["DistributedEvaluator", "ExpansionLost"]
