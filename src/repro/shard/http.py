"""Stdlib HTTP front door over a :class:`~repro.shard.coordinator.ShardCoordinator`.

``repro serve`` starts one of these.  Four routes, all JSON unless
noted:

``POST /query``
    Body: a JSON :class:`~repro.core.api.QueryRequest` (see
    :func:`request_from_json` for the accepted fields).  Response: the
    materialized :class:`~repro.core.api.QueryResponse` rendered by
    :func:`response_to_json` — results, scalar value, completeness,
    stats, cache/layout provenance.  400 for malformed bodies, 404 for
    unknown nodes.  Pass ``"explain": true`` to additionally get the
    executed plan stamped under ``"plan"``.
``POST /explain``
    Same request body as ``/query`` but nothing is evaluated: the
    routed shard plans the probe order and the response is the
    :class:`~repro.core.planner.QueryPlan` rendered by its ``to_dict``
    (see ``docs/PLANNING.md``).  503 when no healthy shard can plan.
``GET /health``
    Per-shard liveness (the coordinator pings every worker), overall
    healthy/total counts, and the planned generation.  Status 200 while
    at least one shard answers, 503 when none do.
``GET /metrics``
    The coordinator's ``flix_shard_*`` registry in Prometheus text
    format (``?format=json`` for the JSON rendering).

The server is ``ThreadingHTTPServer`` — one thread per in-flight
request, matching the coordinator's thread-safe client pools.  It is a
*front door*, not a hardened proxy: deploy it behind whatever real
ingress the environment provides.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import urlparse, parse_qs

from repro.core.api import QueryRequest, QueryResponse
from repro.core.connections import ConnectionModel
from repro.core.pee import QueryBudget, QueryResult
from repro.shard.coordinator import ShardCoordinator


def request_from_json(payload: Dict) -> QueryRequest:
    """Build a :class:`QueryRequest` from its JSON rendering.

    Accepted keys mirror the dataclass fields: ``kind`` (required),
    ``source``, ``target``, ``tag``, ``source_tag``, ``path`` (list of
    step tags), ``max_distance``, ``max_cost``, ``limit``,
    ``include_self``, ``exact_order``, ``bidirectional``, ``model`` (a
    dict of :class:`~repro.core.connections.ConnectionModel` fields) and
    ``budget`` (a dict of :class:`~repro.core.pee.QueryBudget` fields).
    Validation errors raise ``ValueError`` (rendered as HTTP 400).
    """
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    if "kind" not in payload:
        raise ValueError("request needs a 'kind' field")
    known = {
        "kind", "source", "target", "tag", "source_tag", "path",
        "max_distance", "max_cost", "model", "limit", "include_self",
        "exact_order", "bidirectional", "budget", "explain",
    }
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown request fields: {sorted(unknown)}")
    fields = dict(payload)
    fields["path"] = tuple(fields.get("path") or ())
    model = fields.get("model")
    if model is not None:
        try:
            fields["model"] = ConnectionModel(**model)
        except TypeError as exc:
            raise ValueError(f"bad connection model: {exc}") from exc
    budget = fields.get("budget")
    if budget is not None:
        try:
            fields["budget"] = QueryBudget(**budget)
        except TypeError as exc:
            raise ValueError(f"bad budget: {exc}") from exc
    for key in ("source", "target"):
        value = fields.get(key)
        if value is not None and (
            isinstance(value, bool) or not isinstance(value, int)
        ):
            raise ValueError(f"{key!r} must be an integer node id")
    try:
        return QueryRequest(**fields)
    except TypeError as exc:
        raise ValueError(str(exc)) from exc


def response_to_json(response: QueryResponse) -> Dict:
    """Render a :class:`QueryResponse` as a JSON-ready dict."""
    results = []
    for row in response.results:
        if isinstance(row, QueryResult):
            results.append(
                {"node": row.node, "distance": row.distance,
                 "meta_id": row.meta_id}
            )
        else:  # (node, distance) path pairs / (node, cost) connections
            results.append(list(row))
    stats = response.stats
    plan = getattr(response, "plan", None)
    return {
        "kind": response.request.kind,
        "results": results,
        "value": response.value,
        "completeness": stats.completeness,
        "from_cache": response.from_cache,
        "elapsed_seconds": response.elapsed_seconds,
        "layout_generation": response.layout_generation,
        "stats": {
            "meta_document_visits": stats.meta_document_visits,
            "link_traversals": stats.link_traversals,
            "entries_dropped": stats.entries_dropped,
            "results_returned": stats.results_returned,
            "results_suppressed": stats.results_suppressed,
            "covered_probes": stats.covered_probes,
            "queue_pops": stats.queue_pops,
            "planner_pruned_pops": stats.planner_pruned_pops,
            "planner_pruned_pushes": stats.planner_pruned_pushes,
            "fallback_meta_documents": stats.fallback_meta_documents,
        },
        "plan": plan.to_dict() if plan is not None else None,
    }


class _FrontDoorHandler(BaseHTTPRequestHandler):
    server_version = "FlixFrontDoor/1.0"
    protocol_version = "HTTP/1.1"

    # the FrontDoor instance is attached to the server object
    @property
    def _door(self) -> "FrontDoor":
        return self.server.front_door  # type: ignore[attr-defined]

    def log_message(self, *args) -> None:  # quiet by default
        pass

    def _send_json(self, status: int, payload: Dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        with self._door._track():
            self._handle_get()

    def _handle_get(self) -> None:
        parsed = urlparse(self.path)
        if parsed.path == "/health":
            health = self._door.coordinator.health()
            status = 200 if health["healthy"] > 0 else 503
            self._send_json(status, health)
            return
        if parsed.path == "/metrics":
            fmt = parse_qs(parsed.query).get("format", ["prom"])[0]
            text = self._door.coordinator.metrics_text(fmt)
            content_type = (
                "application/json" if fmt == "json"
                else "text/plain; version=0.0.4"
            )
            self._send_text(200, text, content_type)
            return
        self._send_json(404, {"error": f"no route {parsed.path}"})

    def do_POST(self) -> None:
        with self._door._track():
            self._handle_post()

    def _handle_post(self) -> None:
        parsed = urlparse(self.path)
        if parsed.path not in ("/query", "/explain"):
            self._send_json(404, {"error": f"no route {parsed.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length)
            payload = json.loads(raw) if raw else {}
            request = request_from_json(payload)
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        if parsed.path == "/explain":
            try:
                plan = self._door.coordinator.explain(request)
            except KeyError as exc:
                self._send_json(404, {"error": str(exc).strip("'\"")})
                return
            if plan is None:
                self._send_json(503, {"error": "no healthy shard to plan on"})
                return
            self._send_json(200, plan.to_dict())
            return
        try:
            response = self._door.coordinator.query(request)
        except KeyError as exc:
            self._send_json(404, {"error": str(exc).strip("'\"")})
            return
        self._send_json(200, response_to_json(response))


class FrontDoor:
    """The HTTP surface of a sharded deployment (see module docstring)."""

    def __init__(
        self,
        coordinator: ShardCoordinator,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.coordinator = coordinator
        self._server = ThreadingHTTPServer((host, port), _FrontDoorHandler)
        self._server.front_door = self  # type: ignore[attr-defined]
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        # in-flight request accounting for the SIGTERM drain (handler
        # threads are daemons, so server_close() does not join them)
        self._inflight = 0
        self._idle = threading.Condition()

    @contextlib.contextmanager
    def _track(self):
        with self._idle:
            self._inflight += 1
        try:
            yield
        finally:
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address[:2]

    def start(self) -> Tuple[str, int]:
        """Serve in a background thread; returns the bound address."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="flix-front-door",
            daemon=True,
        )
        self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` CLI path)."""
        self._server.serve_forever()

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful SIGTERM path: stop accepting, finish in-flight
        requests, release ``serve_forever``.

        ``shutdown()`` stops the accept loop while requests already
        being handled keep running; we then wait for the in-flight
        count to reach zero (every such request gets its response out)
        before closing the listener.  Idle keep-alive connections are
        simply dropped.  Must not be called from a handler thread or
        the ``serve_forever`` thread itself — the CLI's SIGTERM handler
        runs it on a fresh thread.
        """
        if self._closed:
            return
        self._server.shutdown()
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(remaining)
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "FrontDoor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "FrontDoor",
    "request_from_json",
    "response_to_json",
]
