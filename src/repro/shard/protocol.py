"""Length-prefixed frame protocol between coordinator and shard workers.

Every message — in either direction — is one *frame*:

    +----------------+---------------------------+
    | 4 bytes        | ``length`` bytes          |
    | big-endian u32 | pickled (verb, payload)   |
    +----------------+---------------------------+

``verb`` is a short string naming the operation ("query", "expand",
"connection_probe", "type_seeds", "wal_pull", "ping", "metrics",
"shutdown") or the reply ("response", "expanded", "probed", "seeds",
"wal_records", "pong", "metrics_text", "bye", "error"); ``payload`` is a
plain dict of picklable values —
:class:`~repro.core.api.QueryRequest`, :class:`~repro.core.pee.QueryResult`,
:class:`~repro.core.pee.QueryStats` and friends are all frozen/plain
dataclasses that pickle cleanly.

Pickle is safe here because both ends of every connection are processes of
the same deployment on the same host (the worker binds loopback by
default); the protocol is *not* meant for untrusted peers.  The length
prefix is bounded by :data:`MAX_FRAME_BYTES` so a corrupt or hostile
header fails fast instead of allocating gigabytes.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Tuple

#: frames above this size indicate corruption (or a result set that should
#: have been limited); 256 MiB is far above any legitimate reply
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed frame (bad length, truncated body, unpicklable)."""


class ShardUnavailable(RuntimeError):
    """The shard endpoint cannot be reached or died mid-conversation."""

    def __init__(self, shard_id: int, reason: str) -> None:
        super().__init__(f"shard {shard_id} unavailable: {reason}")
        self.shard_id = shard_id
        self.reason = reason


class RemoteShardError(RuntimeError):
    """The worker reached the handler but it raised; carries the remote
    exception type name and message (the worker stays up)."""

    def __init__(self, exc_type: str, message: str) -> None:
        super().__init__(f"{exc_type}: {message}")
        self.exc_type = exc_type


def encode_frame(message: Tuple[str, Any]) -> bytes:
    """One wire-ready frame for ``(verb, payload)``."""
    body = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _LENGTH.pack(len(body)) + body


def write_frame(sock: socket.socket, message: Tuple[str, Any]) -> None:
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise on EOF mid-frame."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"connection closed {count - remaining}/{count} bytes into a frame"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Tuple[str, Any]:
    """The next ``(verb, payload)`` frame from ``sock``.

    Raises :class:`ConnectionError` on clean EOF *before* a frame starts
    (callers treat that as the peer hanging up) and
    :class:`ProtocolError` on malformed data.
    """
    header = sock.recv(_LENGTH.size)
    if not header:
        raise ConnectionError("connection closed between frames")
    while len(header) < _LENGTH.size:
        more = sock.recv(_LENGTH.size - len(header))
        if not more:
            raise ConnectionError("connection closed inside a frame header")
        header += more
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame header announces {length} bytes (> MAX_FRAME_BYTES); "
            "stream is corrupt"
        )
    body = _recv_exact(sock, length)
    try:
        message = pickle.loads(body)
    except Exception as exc:  # pickle raises many types on bad input
        raise ProtocolError(f"unpicklable frame body: {exc}") from exc
    if (
        not isinstance(message, tuple)
        or len(message) != 2
        or not isinstance(message[0], str)
    ):
        raise ProtocolError(f"frame is not a (verb, payload) pair: {message!r}")
    return message


__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "RemoteShardError",
    "ShardUnavailable",
    "encode_frame",
    "read_frame",
    "write_frame",
]
