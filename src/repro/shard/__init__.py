"""Sharded multi-process serving: the FliX cut applied at cluster scale.

A single ``Flix`` splits the collection into meta documents and follows
residual links between them at query time.  This package applies the
same partitioning one level up (``docs/SHARDING.md``):

* :class:`ShardPlanner` assigns meta documents to N shards over the
  meta-level residual-link graph and records the links that now cross
  shards in a persisted :class:`ShardMap` (``shard_map.json``);
* :class:`ShardWorker` is the per-shard process — it mmap-attaches the
  saved packed index (O(1) cold start, page cache shared between
  workers) and serves framed requests over loopback TCP
  (:mod:`repro.shard.protocol`);
* :class:`ShardCoordinator` routes each request to its owning shard,
  runs the PEE's priority-queue merge over per-entry expansion RPCs for
  multi-shard closures (:class:`DistributedEvaluator`), caches results
  in a :class:`~repro.serve.cache.ShardedLRUCache`, and degrades
  (failover → ``truncated`` → ``degraded``) instead of failing;
* :class:`FrontDoor` exposes ``/query``, ``/health``, and ``/metrics``
  over stdlib HTTP (the ``repro serve`` CLI).
"""

from repro.shard.coordinator import ShardClient, ShardCoordinator
from repro.shard.distributed import DistributedEvaluator, ExpansionLost
from repro.shard.http import FrontDoor, request_from_json, response_to_json
from repro.shard.plan import (
    SHARD_MAP_NAME,
    ShardMap,
    ShardPlanError,
    ShardPlanner,
    load_shard_map,
    write_shard_map,
)
from repro.shard.protocol import (
    ProtocolError,
    RemoteShardError,
    ShardUnavailable,
)
from repro.shard.worker import ShardWorker, WorkerProcess, spawn_worker

__all__ = [
    "SHARD_MAP_NAME",
    "DistributedEvaluator",
    "ExpansionLost",
    "FrontDoor",
    "ProtocolError",
    "RemoteShardError",
    "ShardClient",
    "ShardCoordinator",
    "ShardMap",
    "ShardPlanError",
    "ShardPlanner",
    "ShardUnavailable",
    "ShardWorker",
    "WorkerProcess",
    "load_shard_map",
    "request_from_json",
    "response_to_json",
    "spawn_worker",
    "write_shard_map",
]
