"""Shard planning: partition the meta-document set across N workers.

The plan lifts the paper's meta-document idea one level up.  Within a
single ``Flix``, the collection is split into meta documents and the
edges between them become *residual links* that the PEE follows at query
time.  A sharded deployment applies the same cut again: the meta
documents themselves are partitioned into N *shards* (via
:func:`repro.graph.partition.partition_graph` over the meta-level
residual-link graph, so few links cross shards), and the residual links
whose endpoint meta documents land in different shards become
**cross-shard residual links** — recorded in the :class:`ShardMap` so the
coordinator knows which shards a search can spill into.

The map is written as ``shard_map.json`` beside the saved index (see
:func:`write_shard_map` / :func:`load_shard_map`) and is everything the
coordinator needs to route: node → meta (as compressed id runs), meta →
shard, the cross-links, and the layout generation / fingerprint it was
planned against.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from repro.graph.digraph import Digraph
from repro.graph.partition import partition_graph
from repro.indexes.base import NodeId

#: file name of the persisted shard map, beside ``manifest.json``
SHARD_MAP_NAME = "shard_map.json"

_FORMAT_VERSION = 1


class ShardPlanError(ValueError):
    """An unusable plan or a corrupt/incompatible shard map file."""


@dataclass(frozen=True)
class ShardMap:
    """The routing truth of one sharded deployment (immutable).

    ``meta_runs`` compresses the node → meta-document mapping into
    ``(first_node, last_node, meta_id)`` runs over the dense node-id
    space — node ids are assigned contiguously per document and meta
    documents group whole documents, so the runs stay tiny even for
    large collections.
    """

    shards: int
    shard_of_meta: Dict[int, int]
    meta_runs: Tuple[Tuple[int, int, int], ...]
    #: ``(source_node, target_node, source_shard, target_shard)`` for every
    #: residual link whose endpoints live in different shards
    cross_links: Tuple[Tuple[int, int, int, int], ...]
    #: layout generation the plan was computed against
    generation: int = 0
    #: ``Flix.index_fingerprint()`` of the planned index (sanity check
    #: against the workers' loaded state)
    index_fingerprint: str = ""

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ShardPlanError("a shard map needs at least one shard")
        for meta_id, shard in self.shard_of_meta.items():
            if not 0 <= shard < self.shards:
                raise ShardPlanError(
                    f"meta {meta_id} assigned to shard {shard} "
                    f"outside 0..{self.shards - 1}"
                )
        object.__setattr__(
            self, "_run_starts", [run[0] for run in self.meta_runs]
        )

    # ------------------------------------------------------------------
    # routing lookups
    # ------------------------------------------------------------------
    def meta_of(self, node: NodeId) -> int:
        """The meta document owning ``node`` (KeyError for unknown ids)."""
        position = bisect_right(self._run_starts, node) - 1
        if position >= 0:
            start, end, meta_id = self.meta_runs[position]
            if start <= node <= end:
                return meta_id
        raise KeyError(f"node {node} is not part of the collection")

    def shard_of_node(self, node: NodeId) -> int:
        return self.shard_of_meta[self.meta_of(node)]

    def owned_metas(self, shard: int) -> List[int]:
        """Meta ids owned by ``shard``, sorted."""
        return sorted(
            meta_id
            for meta_id, owner in self.shard_of_meta.items()
            if owner == shard
        )

    def shard_adjacency(self, forward: bool = True) -> Dict[int, Set[int]]:
        """Shard-level edges induced by the cross-shard residual links."""
        adjacency: Dict[int, Set[int]] = {s: set() for s in range(self.shards)}
        for _, _, source_shard, target_shard in self.cross_links:
            if forward:
                adjacency[source_shard].add(target_shard)
            else:
                adjacency[target_shard].add(source_shard)
        return adjacency

    def reachable_shards(self, start: int, forward: bool = True) -> Set[int]:
        """Shards a search seeded in ``start`` can spill into (closure over
        cross-shard residual links, including ``start`` itself)."""
        adjacency = self.shard_adjacency(forward)
        seen = {start}
        frontier = [start]
        while frontier:
            shard = frontier.pop()
            for neighbour in adjacency[shard]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return seen

    @property
    def cut_size(self) -> int:
        return len(self.cross_links)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_json(self) -> Dict:
        return {
            "format_version": _FORMAT_VERSION,
            "shards": self.shards,
            "shard_of_meta": {
                str(meta_id): shard
                for meta_id, shard in sorted(self.shard_of_meta.items())
            },
            "meta_runs": [list(run) for run in self.meta_runs],
            "cross_links": [list(link) for link in self.cross_links],
            "generation": self.generation,
            "index_fingerprint": self.index_fingerprint,
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "ShardMap":
        try:
            version = payload["format_version"]
            if version != _FORMAT_VERSION:
                raise ShardPlanError(
                    f"unsupported shard map format_version {version}"
                )
            return cls(
                shards=int(payload["shards"]),
                shard_of_meta={
                    int(meta_id): int(shard)
                    for meta_id, shard in payload["shard_of_meta"].items()
                },
                meta_runs=tuple(
                    (int(a), int(b), int(m)) for a, b, m in payload["meta_runs"]
                ),
                cross_links=tuple(
                    (int(u), int(v), int(s), int(t))
                    for u, v, s, t in payload["cross_links"]
                ),
                generation=int(payload.get("generation", 0)),
                index_fingerprint=str(payload.get("index_fingerprint", "")),
            )
        except ShardPlanError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ShardPlanError(f"corrupt shard map payload: {exc}") from exc

    def describe(self) -> str:
        """A human-readable plan summary (``repro shard-plan`` output)."""
        lines = [
            f"shard map: {self.shards} shards, "
            f"{len(self.shard_of_meta)} meta documents, "
            f"{self.cut_size} cross-shard residual links "
            f"(generation {self.generation})"
        ]
        node_weight = {s: 0 for s in range(self.shards)}
        for start, end, meta_id in self.meta_runs:
            node_weight[self.shard_of_meta[meta_id]] += end - start + 1
        for shard in range(self.shards):
            metas = self.owned_metas(shard)
            reach = sorted(self.reachable_shards(shard))
            lines.append(
                f"  shard {shard}: {len(metas)} metas, "
                f"{node_weight[shard]} nodes, forward closure {reach}"
            )
        return "\n".join(lines)


def write_shard_map(shard_map: ShardMap, directory) -> Path:
    """Persist ``shard_map`` as ``shard_map.json`` under ``directory``."""
    path = Path(directory) / SHARD_MAP_NAME
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(shard_map.to_json(), indent=2, sort_keys=True))
    return path


def load_shard_map(directory) -> ShardMap:
    """Load the shard map persisted beside a saved index."""
    path = Path(directory) / SHARD_MAP_NAME
    if not path.exists():
        raise ShardPlanError(f"no {SHARD_MAP_NAME} in {directory}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ShardPlanError(f"{path} is not valid JSON: {exc}") from exc
    return ShardMap.from_json(payload)


class ShardPlanner:
    """Assign meta documents to N shards with few cross-shard links.

    The planner builds the meta-level residual-link graph (one node per
    live meta document, one edge per linked meta pair), partitions it
    with the same size-bounded min-cut heuristic HOPI's builder uses, and
    bin-packs the resulting blocks onto exactly ``shards`` shards,
    balancing collection-node weight (largest block first onto the
    lightest shard).  Fewer meta documents than shards is legal: the
    surplus shards own nothing and serve purely as delegation/failover
    capacity.
    """

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ShardPlanError("shards must be >= 1")
        self.shards = shards

    def plan(self, flix) -> ShardMap:
        """Plan the given (built) ``Flix`` instance's current layout."""
        layout = flix.layout
        metas = layout.live_metas()
        if not metas:
            raise ShardPlanError("cannot shard an empty layout")
        meta_of = layout.meta_of

        meta_graph = Digraph()
        for meta in metas:
            meta_graph.add_node(meta.meta_id)
        for meta in metas:
            for _, targets in meta.outgoing_links.items():
                for target in targets:
                    target_meta = meta_of.get(target)
                    if target_meta is not None and target_meta != meta.meta_id:
                        meta_graph.add_edge(meta.meta_id, target_meta)

        block_size = max(1, math.ceil(len(metas) / self.shards))
        partitioning = partition_graph(meta_graph, block_size)

        weight = {meta.meta_id: len(meta.nodes) for meta in metas}
        shard_of_meta = self._pack_blocks(partitioning.blocks, weight)

        cross_links: List[Tuple[int, int, int, int]] = []
        for meta in metas:
            source_shard = shard_of_meta[meta.meta_id]
            for source_node, targets in sorted(meta.outgoing_links.items()):
                for target_node in sorted(targets):
                    target_meta = meta_of.get(target_node)
                    if target_meta is None:
                        continue  # dangling link target (removed document)
                    target_shard = shard_of_meta[target_meta]
                    if target_shard != source_shard:
                        cross_links.append(
                            (source_node, target_node, source_shard,
                             target_shard)
                        )

        return ShardMap(
            shards=self.shards,
            shard_of_meta=shard_of_meta,
            meta_runs=_compress_runs(meta_of),
            cross_links=tuple(sorted(cross_links)),
            generation=flix.layout_generation,
            index_fingerprint=flix.index_fingerprint(),
        )

    def _pack_blocks(
        self,
        blocks: Sequence[Set[int]],
        weight: Dict[int, int],
    ) -> Dict[int, int]:
        """Largest-block-first onto the lightest shard (greedy balance)."""
        loads = [0] * self.shards
        shard_of_meta: Dict[int, int] = {}
        ordered = sorted(
            blocks,
            key=lambda block: (-sum(weight[m] for m in block), min(block)),
        )
        for block in ordered:
            shard = min(range(self.shards), key=lambda s: (loads[s], s))
            for meta_id in sorted(block):
                shard_of_meta[meta_id] = shard
            loads[shard] += sum(weight[m] for m in block)
        return shard_of_meta


def _compress_runs(meta_of: Dict[NodeId, int]) -> Tuple[Tuple[int, int, int], ...]:
    """Compress node → meta into sorted ``(first, last, meta_id)`` runs."""
    runs: List[Tuple[int, int, int]] = []
    for node in sorted(meta_of):
        meta_id = meta_of[node]
        if runs and runs[-1][1] == node - 1 and runs[-1][2] == meta_id:
            runs[-1] = (runs[-1][0], node, meta_id)
        else:
            runs.append((node, node, meta_id))
    return tuple(runs)


__all__ = [
    "SHARD_MAP_NAME",
    "ShardMap",
    "ShardPlanError",
    "ShardPlanner",
    "load_shard_map",
    "write_shard_map",
]
