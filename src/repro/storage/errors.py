"""Typed storage errors: the stable contract the resilience layer retries on.

The paper targets web-scale collections whose storage is inherently
unreliable; surviving that needs a *classification* of failures, not just an
exception.  Every backend maps its native errors into this hierarchy so the
retry layer (:mod:`repro.storage.resilient`) can decide mechanically:

* :class:`TransientStorageError` — worth retrying (lock contention, injected
  flakiness, I/O hiccups).  Retry with backoff; repeated transients trip the
  per-table circuit breaker.
* :class:`PermanentStorageError` — retrying cannot help (schema violations,
  misuse, missing tables).  Propagated immediately.
* :class:`CorruptionError` — the stored bytes are damaged (malformed
  database image, checksum mismatch).  Propagated immediately; the repair
  path (:func:`repro.core.persistence.repair_flix`) is the cure.
* :class:`CircuitOpenError` — raised *by the resilience layer itself* when a
  table's breaker is open: calls fail fast instead of hammering a backend
  that has been failing persistently.  Query-side callers treat it like any
  other :class:`StorageError` and degrade.

Raw backend exceptions (``sqlite3.OperationalError``, ...) must not leak to
callers of the storage API; the SQLite backend converts them at every
public entry point.
"""

from __future__ import annotations


class StorageError(RuntimeError):
    """Base class of every storage-layer failure."""


class TransientStorageError(StorageError):
    """A failure that may succeed on retry (contention, flaky I/O)."""


class PermanentStorageError(StorageError):
    """A failure retrying cannot fix (misuse, constraint violations)."""


class CorruptionError(StorageError):
    """The stored data itself is damaged (malformed image, bad checksum)."""


class CircuitOpenError(StorageError):
    """Fail-fast signal: the table's circuit breaker is open.

    Carries ``table`` (the protected table's name) and ``retry_after``
    (seconds until the breaker next admits a probe call).
    """

    def __init__(self, table: str, retry_after: float) -> None:
        super().__init__(
            f"circuit breaker for table {table!r} is open; "
            f"next probe in {retry_after:.3f}s"
        )
        self.table = table
        self.retry_after = retry_after


#: sqlite3.OperationalError messages that indicate a retryable condition
_TRANSIENT_SQLITE_MARKERS = (
    "locked",
    "busy",
    "disk i/o error",
    "unable to open",
    "interrupted",
)


def classify_sqlite_error(exc: BaseException) -> StorageError:
    """Map a ``sqlite3`` exception onto the typed hierarchy.

    ``OperationalError`` splits on its message: lock/busy/I-O conditions are
    transient, everything else (missing table, syntax) is permanent.
    ``DatabaseError`` outside that — notably ``"database disk image is
    malformed"`` — is corruption.  Anything else is permanent.
    """
    import sqlite3

    message = str(exc)
    lowered = message.lower()
    if isinstance(exc, sqlite3.OperationalError):
        if any(marker in lowered for marker in _TRANSIENT_SQLITE_MARKERS):
            return TransientStorageError(message)
        return PermanentStorageError(message)
    if isinstance(exc, (sqlite3.IntegrityError, sqlite3.ProgrammingError)):
        return PermanentStorageError(message)
    if isinstance(exc, sqlite3.DatabaseError):
        return CorruptionError(message)
    return PermanentStorageError(message)
