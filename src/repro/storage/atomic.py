"""Crash-safe file replacement: temp file + ``os.replace`` + dir fsync.

A bare ``write_text`` is a torn-write hazard: a crash (or injected
fault) midway leaves a half-written file under the final name, and a
reader cannot tell "short" from "valid but small".  Every durable
artifact in this repository — the persistence manifest, rebuilt pack
blobs, WAL truncations — goes through these helpers instead:

1. write the full content to a ``.tmp-*`` sibling in the same directory
   (same filesystem, so the rename below is atomic);
2. flush + ``fsync`` the temp file, so its *content* is durable before
   its *name* is;
3. ``os.replace`` it over the final name — atomic on POSIX and Windows;
4. ``fsync`` the containing directory, so the rename itself survives a
   power cut (without it the old directory entry can come back).

Readers therefore always see either the complete old content or the
complete new content, never a prefix.  See ``docs/DURABILITY.md``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

PathLike = Union[str, Path]


def fsync_directory(directory: PathLike) -> None:
    """Flush a directory's entry table (rename/create durability).

    Best-effort: some platforms/filesystems refuse ``open`` on a
    directory (Windows) or ``fsync`` on the handle; the replace itself
    is still atomic there, only power-cut durability of the *rename* is
    weaker — nothing to do about that portably.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (see module docstring)."""
    target = Path(path)
    tmp = target.with_name(f".tmp-{target.name}.{os.getpid()}")
    fd = os.open(str(tmp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(str(tmp), str(target))
    except BaseException:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        raise
    fsync_directory(target.parent)


def atomic_write_text(
    path: PathLike, text: str, encoding: str = "utf-8"
) -> None:
    """Atomically replace ``path`` with ``text`` (see module docstring)."""
    atomic_write_bytes(path, text.encode(encoding))


__all__ = ["atomic_write_bytes", "atomic_write_text", "fsync_directory"]
