"""Retrying, circuit-breaking wrapper around any storage backend.

``ResilientBackend`` decorates a :class:`repro.storage.table.StorageBackend`
so that transient failures (classified by the backend as
:class:`repro.storage.errors.TransientStorageError`) are retried with
exponential backoff plus deterministic jitter, and persistently failing
tables trip a per-table circuit breaker that fails fast
(:class:`repro.storage.errors.CircuitOpenError`) instead of hammering a
broken backend.  Permanent errors and corruption pass through untouched —
retrying cannot fix either.

The wrapper is transparent to the rest of the system: schemas, row
contents, iteration order, fingerprints and observer wiring are the
inner backend's, so an index built through a ``ResilientBackend`` is
byte-identical to one built directly on the wrapped backend.

Observability: when built with an enabled :class:`repro.obs.Observability`
bundle, the wrapper emits

* ``flix_storage_retries_total{table=...}`` — one increment per retried
  attempt (not per call);
* ``flix_storage_giveups_total{table=...}`` — calls that exhausted their
  retry budget;
* ``flix_circuit_state{table=...}`` — 0 closed, 1 half-open, 2 open.

Retry safety: write retries rely on the inner backend making failed writes
atomic (the SQLite backend wraps multi-row inserts in one transaction; the
fault injector raises before delegating), so a retried ``insert_many``
never double-applies a prefix.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional

from repro.storage.errors import (
    CircuitOpenError,
    StorageError,
    TransientStorageError,
)
from repro.storage.table import Row, StorageBackend, Table, TableSchema

#: circuit-breaker states, also the ``flix_circuit_state`` gauge values
CIRCUIT_CLOSED = 0
CIRCUIT_HALF_OPEN = 1
CIRCUIT_OPEN = 2


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    Attempt ``k`` (0-based) sleeps ``base_delay * 2**k``, capped at
    ``max_delay``, then multiplied by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]`` by a seeded PRNG — deterministic, so a
    fault-injected run is exactly reproducible.
    """

    max_attempts: int = 4
    base_delay: float = 0.002
    max_delay: float = 0.25
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Sleep before retry number ``attempt`` (0-based)."""
        raw = min(self.base_delay * (2.0 ** attempt), self.max_delay)
        if self.jitter == 0.0:
            return raw
        return raw * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)


@dataclass(frozen=True)
class BreakerPolicy:
    """When to open a table's circuit and when to probe it again.

    ``failure_threshold`` consecutive given-up calls open the circuit;
    after ``reset_timeout`` seconds one probe call is admitted
    (half-open): success closes the circuit, failure re-opens it for
    another timeout.
    """

    failure_threshold: int = 5
    reset_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout < 0:
            raise ValueError("reset_timeout must be non-negative")


class CircuitBreaker:
    """Consecutive-failure breaker guarding one table."""

    __slots__ = ("policy", "_state", "_failures", "_opened_at", "_clock")

    def __init__(
        self,
        policy: BreakerPolicy,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy
        self._state = CIRCUIT_CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._clock = clock

    @property
    def state(self) -> int:
        return self._state

    def admit(self, table: str) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        if self._state == CIRCUIT_CLOSED:
            return
        elapsed = self._clock() - self._opened_at
        if self._state == CIRCUIT_OPEN:
            if elapsed < self.policy.reset_timeout:
                raise CircuitOpenError(
                    table, self.policy.reset_timeout - elapsed
                )
            self._state = CIRCUIT_HALF_OPEN  # admit one probe call

    def record_success(self) -> None:
        self._failures = 0
        self._state = CIRCUIT_CLOSED

    def record_failure(self) -> None:
        self._failures += 1
        if (
            self._state == CIRCUIT_HALF_OPEN
            or self._failures >= self.policy.failure_threshold
        ):
            self._state = CIRCUIT_OPEN
            self._opened_at = self._clock()


class ResilientTable(Table):
    """Table decorator: every delegated call runs under retry + breaker."""

    def __init__(self, inner: Table, backend: "ResilientBackend") -> None:
        super().__init__(inner.schema)
        self._inner = inner
        self._owner = backend
        self._breaker = CircuitBreaker(backend.breaker_policy, backend._clock)

    # -- instrumentation plumbing --------------------------------------
    def attach_observer(self, observer) -> None:
        """Observer traffic counts belong to the inner table."""
        self._inner.attach_observer(observer)

    @property
    def breaker_state(self) -> int:
        return self._breaker.state

    # -- the guard ------------------------------------------------------
    def _call(self, operation: Callable[[], Any]) -> Any:
        owner = self._owner
        name = self.schema.name
        self._breaker.admit(name)
        policy = owner.retry_policy
        attempt = 0
        while True:
            try:
                result = operation()
            except TransientStorageError:
                if attempt + 1 >= policy.max_attempts:
                    self._breaker.record_failure()
                    owner._record_giveup(name, self._breaker.state)
                    raise
                owner._record_retry(name)
                owner._sleep(policy.delay(attempt, owner._rng))
                attempt += 1
            except StorageError:
                # permanent / corruption: not the breaker's business —
                # retrying or isolating the table cannot fix caller misuse
                raise
            else:
                was = self._breaker.state
                self._breaker.record_success()
                if was != CIRCUIT_CLOSED:  # emit only on state transitions
                    owner._record_state(name, self._breaker.state)
                return result

    # -- Table interface -----------------------------------------------
    def insert(self, row: Row) -> None:
        self._call(lambda: self._inner.insert(row))

    def insert_many(self, rows) -> None:
        materialized = list(rows)  # replayable across retries
        self._call(lambda: self._inner.insert_many(materialized))

    def scan(self) -> Iterator[Row]:
        # materialize inside the guard: a lazily-failing inner iterator
        # would otherwise raise outside the retry loop
        return iter(self._call(lambda: list(self._inner.scan())))

    def scan_eq(self, column: str, value: Any) -> Iterator[Row]:
        return iter(self._call(lambda: list(self._inner.scan_eq(column, value))))

    def row_count(self) -> int:
        return self._call(self._inner.row_count)

    def size_bytes(self) -> int:
        return self._call(self._inner.size_bytes)

    def fingerprint(self) -> str:
        return self._call(self._inner.fingerprint)


class ResilientBackend(StorageBackend):
    """Backend decorator applying :class:`ResilientTable` to every table."""

    def __init__(
        self,
        inner: StorageBackend,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
        obs=None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._inner = inner
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker_policy = breaker_policy or BreakerPolicy()
        self._rng = random.Random(self.retry_policy.seed)
        self._sleep = sleep
        self._clock = clock
        self._wrapped: dict = {}
        self._retries = 0
        self._obs = None
        self._metrics = None
        self.set_observability(obs)

    # -- observability ---------------------------------------------------
    def set_observability(self, obs) -> None:
        """Bind (or clear) the metrics bundle retries are reported to."""
        self._obs = obs if obs is not None and obs.enabled else None
        self._metrics = None

    def _instruments(self):
        if self._metrics is None and self._obs is not None:
            reg = self._obs.registry
            self._metrics = (
                reg.counter(
                    "flix_storage_retries_total",
                    "Retried storage calls after a transient failure.",
                ),
                reg.counter(
                    "flix_storage_giveups_total",
                    "Storage calls that exhausted their retry budget.",
                ),
                reg.gauge(
                    "flix_circuit_state",
                    "Per-table circuit state: 0 closed, 1 half-open, 2 open.",
                ),
            )
        return self._metrics

    def _record_retry(self, table: str) -> None:
        self._retries += 1
        inst = self._instruments()
        if inst is not None:
            inst[0].inc(table=table)

    def _record_giveup(self, table: str, state: int) -> None:
        inst = self._instruments()
        if inst is not None:
            inst[1].inc(table=table)
            inst[2].set(state, table=table)

    def _record_state(self, table: str, state: int) -> None:
        inst = self._instruments()
        if inst is not None:
            inst[2].set(state, table=table)

    @property
    def total_retries(self) -> int:
        """Retried attempts since construction (works with obs off)."""
        return self._retries

    @property
    def inner(self) -> StorageBackend:
        return self._inner

    # -- StorageBackend interface ----------------------------------------
    def attach_observer(self, observer) -> None:
        self._observer = observer
        self._inner.attach_observer(observer)

    def _wrap(self, table: Table) -> ResilientTable:
        wrapped = self._wrapped.get(table.schema.name)
        if wrapped is None or wrapped._inner is not table:
            wrapped = ResilientTable(table, self)
            self._wrapped[table.schema.name] = wrapped
        return wrapped

    def create_table(self, schema: TableSchema) -> Table:
        return self._wrap(self._inner.create_table(schema))

    def table(self, name: str) -> Table:
        return self._wrap(self._inner.table(name))

    def drop_table(self, name: str) -> None:
        self._wrapped.pop(name, None)
        self._inner.drop_table(name)

    def table_names(self) -> List[str]:
        return self._inner.table_names()

    def breaker_states(self) -> dict:
        """Current per-table circuit states (tables touched so far)."""
        return {
            name: table.breaker_state
            for name, table in sorted(self._wrapped.items())
        }

    # -- pass-through accounting -----------------------------------------
    def total_bytes(self) -> int:
        return self._inner.total_bytes()

    def fingerprint(self) -> str:
        """The inner backend's content hash, each table read under retry."""
        import hashlib

        digest = hashlib.sha256()
        for name in self.table_names():
            digest.update(name.encode("utf-8"))
            digest.update(self.table(name).fingerprint().encode("utf-8"))
        return digest.hexdigest()

    # -- pickling (process-pool builds ship the factory's product) -------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # metrics registries hold locks and belong to the parent process
        state["_obs"] = None
        state["_metrics"] = None
        state["_sleep"] = None
        state["_clock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._sleep = time.sleep
        self._clock = time.monotonic


class ResilientFactory:
    """Picklable ``backend_factory`` decorator: every product is resilient.

    A class (not a closure) so process-pool builds can ship it to workers;
    worker-side products start with observability unbound (each worker
    process owns no registry) — the parent re-binds metrics on the merged
    backends after the build.
    """

    def __init__(
        self,
        inner_factory: Callable[[], StorageBackend],
        retry_policy: Optional[RetryPolicy] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
    ) -> None:
        self.inner_factory = inner_factory
        self.retry_policy = retry_policy
        self.breaker_policy = breaker_policy

    def __call__(self) -> ResilientBackend:
        return ResilientBackend(
            self.inner_factory(),
            retry_policy=self.retry_policy,
            breaker_policy=self.breaker_policy,
        )
