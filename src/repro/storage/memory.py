"""In-memory storage backend with exact byte accounting."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List

from repro.storage.sizing import row_bytes
from repro.storage.table import Row, StorageBackend, Table, TableSchema


class MemoryTable(Table):
    """Rows in a Python list; hash access paths for indexed columns."""

    def __init__(self, schema: TableSchema) -> None:
        super().__init__(schema)
        self._rows: List[Row] = []
        self._bytes = 0
        self._indexes: Dict[str, Dict[Any, List[int]]] = {
            name: {} for name in schema.indexed
        }

    def insert(self, row: Row) -> None:
        row = tuple(row)
        self.schema.check_row(row)
        position = len(self._rows)
        self._rows.append(row)
        self._bytes += row_bytes(row)
        for name, access_path in self._indexes.items():
            value = row[self.schema.column_index(name)]
            access_path.setdefault(value, []).append(position)
        if self._observer is not None:
            self._observer.write(self.schema.name)

    def scan(self) -> Iterator[Row]:
        if self._observer is not None:
            self._observer.read(self.schema.name)
        return iter(self._rows)

    def scan_eq(self, column: str, value: Any) -> Iterator[Row]:
        observer = self._observer
        if observer is not None:
            observer.read(self.schema.name)
        access_path = self._indexes.get(column)
        if access_path is not None:
            if observer is not None:
                observer.hit(self.schema.name)
            for position in access_path.get(value, ()):
                yield self._rows[position]
            return
        # Fall back to a full scan for non-indexed columns.
        index = self.schema.column_index(column)
        for row in self._rows:
            if row[index] == value:
                yield row

    def row_count(self) -> int:
        return len(self._rows)

    def size_bytes(self) -> int:
        return self._bytes

    # ------------------------------------------------------------------
    # pickling (the parallel Index Builder ships built tables between
    # processes): the hash access paths are derived data, so drop them
    # from the payload and rebuild on arrival — for indexed tables this
    # roughly halves the IPC volume.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_indexes"] = tuple(self._indexes)  # keep only the names
        state["_observer"] = None  # instruments hold locks; re-attach on arrival
        return state

    def __setstate__(self, state: dict) -> None:
        indexed = state.pop("_indexes")
        self.__dict__.update(state)
        self._indexes = {name: {} for name in indexed}
        for position, row in enumerate(self._rows):
            for name, access_path in self._indexes.items():
                value = row[self.schema.column_index(name)]
                access_path.setdefault(value, []).append(position)


class MemoryBackend(StorageBackend):
    """Default backend: fast, deterministic, byte-accounted."""

    def __init__(self) -> None:
        self._tables: Dict[str, MemoryTable] = {}

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise ValueError(f"table {schema.name!r} already exists")
        table = MemoryTable(schema)
        if self._observer is not None:
            table.attach_observer(self._observer)
        self._tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        return self._tables[name]

    def drop_table(self, name: str) -> None:
        del self._tables[name]

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_observer"] = None  # instruments hold locks; re-attach on arrival
        return state
