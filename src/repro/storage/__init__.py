"""Database-style storage layer for index structures.

The paper's prototype stores every index in database tables (Oracle 9.2) and
Table 1 reports the database storage the indexes need.  We reproduce that
with a small table abstraction and two backends:

* :class:`repro.storage.memory.MemoryBackend` — rows in RAM with
  byte-accurate size accounting (ints 8 bytes, floats 8 bytes, strings UTF-8
  length + 4-byte length prefix), used by default and by every benchmark;
* :class:`repro.storage.sqlite_backend.SqliteBackend` — a real on-disk (or
  in-memory) SQLite database, demonstrating that all indexes serialize
  cleanly through SQL tables.

All index structures persist themselves through this layer, so Table 1's
relative sizes are apples-to-apples across strategies.
"""

from repro.storage.table import Column, Table, TableSchema, StorageBackend
from repro.storage.errors import (
    CircuitOpenError,
    CorruptionError,
    PermanentStorageError,
    StorageError,
    TransientStorageError,
)
from repro.storage.memory import MemoryBackend
from repro.storage.resilient import (
    BreakerPolicy,
    CircuitBreaker,
    ResilientBackend,
    ResilientFactory,
    ResilientTable,
    RetryPolicy,
)
from repro.storage.sqlite_backend import SqliteBackend
from repro.storage.sizing import format_bytes, row_bytes

__all__ = [
    "Column",
    "Table",
    "TableSchema",
    "StorageBackend",
    "MemoryBackend",
    "SqliteBackend",
    "StorageError",
    "TransientStorageError",
    "PermanentStorageError",
    "CorruptionError",
    "CircuitOpenError",
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "ResilientBackend",
    "ResilientFactory",
    "ResilientTable",
    "row_bytes",
    "format_bytes",
]
