"""Byte-size accounting shared by the storage backends.

The encoding model is the one a straightforward relational row store uses:
8 bytes per integer, 8 per float, UTF-8 bytes plus a 4-byte length prefix
per string.  Using one fixed model across all index structures is what makes
Table 1's *relative* sizes meaningful.
"""

from __future__ import annotations

from typing import Any, Sequence

INT_BYTES = 8
FLOAT_BYTES = 8
STR_LENGTH_PREFIX_BYTES = 4


def value_bytes(value: Any) -> int:
    """Encoded size of one primitive value."""
    if isinstance(value, bool):  # bool is an int subclass; treat as int
        return INT_BYTES
    if isinstance(value, int):
        return INT_BYTES
    if isinstance(value, float):
        return FLOAT_BYTES
    if isinstance(value, str):
        return STR_LENGTH_PREFIX_BYTES + len(value.encode("utf-8"))
    raise TypeError(f"unsupported storage value {value!r}")


def row_bytes(row: Sequence[Any]) -> int:
    """Encoded size of one row."""
    return sum(value_bytes(value) for value in row)


def format_bytes(size: int) -> str:
    """Human-readable size, e.g. ``'27.3 MB'`` (for bench reports)."""
    units = ["B", "KB", "MB", "GB", "TB"]
    value = float(size)
    for unit in units:
        if value < 1024.0 or unit == units[-1]:
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
