"""Abstract table interface shared by the storage backends."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Sequence, Tuple

Row = Tuple[Any, ...]

_VALID_KINDS = ("int", "float", "str")


@dataclass(frozen=True)
class Column:
    """One table column: a name and a primitive kind."""

    name: str
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"unknown column kind {self.kind!r}")
        if not self.name.isidentifier():
            raise ValueError(f"column name {self.name!r} is not an identifier")


@dataclass(frozen=True)
class TableSchema:
    """A table definition: name, columns, and indexed columns.

    ``indexed`` lists column names that point-lookup queries
    (:meth:`Table.scan_eq`) will filter on; backends build access paths for
    them (hash maps in memory, B-tree indexes in SQLite).
    """

    name: str
    columns: Tuple[Column, ...]
    indexed: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"table name {self.name!r} is not an identifier")
        if not self.columns:
            raise ValueError("a table needs at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError("duplicate column names")
        for idx in self.indexed:
            if idx not in names:
                raise ValueError(f"indexed column {idx!r} not in schema")

    def column_index(self, name: str) -> int:
        for i, column in enumerate(self.columns):
            if column.name == name:
                return i
        raise KeyError(name)

    def check_row(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} values, schema {self.name!r} "
                f"has {len(self.columns)} columns"
            )
        for value, column in zip(row, self.columns):
            if column.kind == "int" and not isinstance(value, int):
                raise TypeError(f"column {column.name!r} expects int, got {value!r}")
            if column.kind == "float" and not isinstance(value, (int, float)):
                raise TypeError(f"column {column.name!r} expects float, got {value!r}")
            if column.kind == "str" and not isinstance(value, str):
                raise TypeError(f"column {column.name!r} expects str, got {value!r}")


class Table(abc.ABC):
    """Insert/scan interface every backend provides.

    Tables optionally report their traffic to an attached observer (a
    ``repro.obs.StorageInstruments``): one ``write`` per inserted row, one
    ``read`` per ``scan``/``scan_eq`` call, one ``hit`` when a point
    lookup was answered through an access path.  No observer (the
    default) means no instrumentation branch is taken.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._observer = None

    def attach_observer(self, observer) -> None:
        """Report reads/writes/hits to ``observer`` (``None`` detaches)."""
        self._observer = observer

    @abc.abstractmethod
    def insert(self, row: Row) -> None:
        """Append one row (validated against the schema)."""

    def insert_many(self, rows: Iterable[Row]) -> None:
        for row in rows:
            self.insert(row)

    @abc.abstractmethod
    def scan(self) -> Iterator[Row]:
        """All rows, in insertion order."""

    @abc.abstractmethod
    def scan_eq(self, column: str, value: Any) -> Iterator[Row]:
        """All rows whose ``column`` equals ``value``."""

    @abc.abstractmethod
    def row_count(self) -> int:
        """Number of stored rows."""

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Storage the table occupies, in bytes."""

    def fingerprint(self) -> str:
        """Content hash over schema and rows (insertion order included).

        Two tables fingerprint equal iff they hold the same rows in the
        same order under the same schema — the check the parallel Index
        Builder's determinism guarantee is asserted with.
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(repr(self.schema).encode("utf-8"))
        for row in self.scan():
            digest.update(repr(row).encode("utf-8"))
        return digest.hexdigest()


class StorageBackend(abc.ABC):
    """A namespace of tables with aggregate size accounting."""

    #: storage instruments shared by this backend's tables (None = off)
    _observer = None

    def attach_observer(self, observer) -> None:
        """Attach storage instruments to every current and future table."""
        self._observer = observer
        for name in self.table_names():
            self.table(name).attach_observer(observer)

    @abc.abstractmethod
    def create_table(self, schema: TableSchema) -> Table:
        """Create (and return) a new, empty table."""

    @abc.abstractmethod
    def table(self, name: str) -> Table:
        """An existing table; raises ``KeyError`` if absent."""

    @abc.abstractmethod
    def drop_table(self, name: str) -> None:
        """Remove a table and reclaim its storage."""

    @abc.abstractmethod
    def table_names(self) -> List[str]:
        """All table names, sorted."""

    def total_bytes(self) -> int:
        """Aggregate storage of all tables — the Table 1 measurement."""
        return sum(self.table(name).size_bytes() for name in self.table_names())

    def fingerprint(self) -> str:
        """Content hash over every table (names, schemas, rows, order)."""
        import hashlib

        digest = hashlib.sha256()
        for name in self.table_names():
            digest.update(name.encode("utf-8"))
            digest.update(self.table(name).fingerprint().encode("utf-8"))
        return digest.hexdigest()
