"""SQLite storage backend.

Demonstrates that every index structure in the project serializes through a
real SQL database, like the paper's Oracle-backed prototype.  Size is
measured from SQLite's own page accounting (``page_count * page_size``),
so it includes B-tree overhead — which is also how the paper's Table 1
numbers include database overhead.
"""

from __future__ import annotations

import contextlib
import sqlite3
from typing import Any, Dict, Iterator, List

from repro.storage.errors import classify_sqlite_error
from repro.storage.table import Row, StorageBackend, Table, TableSchema

_SQL_TYPES = {"int": "INTEGER", "float": "REAL", "str": "TEXT"}


@contextlib.contextmanager
def _mapped():
    """Convert raw sqlite3 exceptions into the typed StorageError hierarchy.

    Every public entry point runs under this guard so callers — above all
    the retry layer in :mod:`repro.storage.resilient` — see a stable
    contract (:class:`repro.storage.errors.TransientStorageError` for
    lock/busy/I-O conditions, :class:`~repro.storage.errors.CorruptionError`
    for malformed images, permanent otherwise) instead of backend-specific
    exception types.
    """
    try:
        yield
    except sqlite3.Error as exc:
        raise classify_sqlite_error(exc) from exc


class SqliteTable(Table):
    def __init__(
        self,
        schema: TableSchema,
        connection: sqlite3.Connection,
        create: bool = True,
    ) -> None:
        super().__init__(schema)
        self._conn = connection
        if create:
            columns = ", ".join(
                f"{column.name} {_SQL_TYPES[column.kind]}"
                for column in schema.columns
            )
            # table + access-path creation is one multi-statement write:
            # either the table exists with all its indexes or not at all
            with _mapped():
                self._conn.execute("BEGIN")
                try:
                    self._conn.execute(
                        f"CREATE TABLE {schema.name} ({columns})"
                    )
                    for indexed in schema.indexed:
                        self._conn.execute(
                            f"CREATE INDEX idx_{schema.name}_{indexed} "
                            f"ON {schema.name} ({indexed})"
                        )
                    self._conn.execute("COMMIT")
                except BaseException:
                    self._conn.execute("ROLLBACK")
                    raise
        placeholders = ", ".join("?" for _ in schema.columns)
        self._insert_sql = f"INSERT INTO {schema.name} VALUES ({placeholders})"

    def insert(self, row: Row) -> None:
        row = tuple(row)
        self.schema.check_row(row)
        with _mapped():
            self._conn.execute(self._insert_sql, row)
        if self._observer is not None:
            self._observer.write(self.schema.name)

    def insert_many(self, rows) -> None:
        validated = []
        for row in rows:
            row = tuple(row)
            self.schema.check_row(row)
            validated.append(row)
        # one explicit transaction keeps bulk loads fast under autocommit
        # and makes the multi-row write atomic: a failure rolls everything
        # back, so a retry never double-inserts a prefix
        with _mapped():
            self._conn.execute("BEGIN")
            try:
                self._conn.executemany(self._insert_sql, validated)
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        if self._observer is not None and validated:
            self._observer.write(self.schema.name, len(validated))

    def scan(self) -> Iterator[Row]:
        if self._observer is not None:
            self._observer.read(self.schema.name)
        with _mapped():
            cursor = self._conn.execute(
                f"SELECT * FROM {self.schema.name} ORDER BY rowid"
            )
            return iter(cursor.fetchall())

    def scan_eq(self, column: str, value: Any) -> Iterator[Row]:
        self.schema.column_index(column)  # validate the name
        if self._observer is not None:
            self._observer.read(self.schema.name)
            if column in self.schema.indexed:
                self._observer.hit(self.schema.name)
        with _mapped():
            cursor = self._conn.execute(
                f"SELECT * FROM {self.schema.name} "
                f"WHERE {column} = ? ORDER BY rowid",
                (value,),
            )
            return iter(cursor.fetchall())

    def row_count(self) -> int:
        with _mapped():
            cursor = self._conn.execute(
                f"SELECT COUNT(*) FROM {self.schema.name}"
            )
            return int(cursor.fetchone()[0])

    def size_bytes(self) -> int:
        # dbstat is not always compiled in; apportion whole-file pages by the
        # table's share of rows instead, which is accurate enough for the
        # relative comparisons Table 1 makes.
        with _mapped():
            cursor = self._conn.execute("PRAGMA page_count")
            pages = int(cursor.fetchone()[0])
            cursor = self._conn.execute("PRAGMA page_size")
            page_size = int(cursor.fetchone()[0])
            total = pages * page_size
            total_rows = 0
            my_rows = self.row_count()
            for (name,) in self._conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            ):
                count = self._conn.execute(
                    f"SELECT COUNT(*) FROM {name}"
                ).fetchone()[0]
                total_rows += int(count)
        if total_rows == 0:
            return 0
        return int(total * (my_rows / total_rows))


class SqliteBackend(StorageBackend):
    """One SQLite database holding all tables of an index build.

    ``path=':memory:'`` (the default) keeps everything in RAM; pass a file
    path for a persistent database.
    """

    def __init__(self, path: str = ":memory:") -> None:
        # autocommit: every statement is durable immediately, so a process
        # restart (or a second connection) sees a complete index
        with _mapped():
            self._conn = sqlite3.connect(path, isolation_level=None)
        self._tables: Dict[str, SqliteTable] = {}

    @classmethod
    def attach(cls, path: str) -> "SqliteBackend":
        """Reopen an existing database and reconstruct its table handles.

        Schemas are recovered from SQLite's catalog, which is what lets a
        persisted index be :meth:`~repro.indexes.base.PathIndex`-``load``-ed
        after a restart instead of rebuilt.
        """
        from repro.storage.table import Column

        backend = cls.__new__(cls)
        with _mapped():
            backend._conn = sqlite3.connect(path, isolation_level=None)
            backend._tables = {}
            kind_of = {"INTEGER": "int", "REAL": "float", "TEXT": "str"}
            names = [
                row[0]
                for row in backend._conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table' "
                    "AND name NOT LIKE 'sqlite_%' ORDER BY name"
                )
            ]
            for name in names:
                columns = tuple(
                    Column(row[1], kind_of[row[2].upper()])
                    for row in backend._conn.execute(
                        f"PRAGMA table_info({name})"
                    )
                )
                # recover the indexed columns from the access paths
                # create_table made, so the reconstructed schema (and any
                # fingerprint over its repr) matches the original exactly
                prefix = f"idx_{name}_"
                indexed = tuple(
                    row[0][len(prefix) :]
                    for row in backend._conn.execute(
                        "SELECT name FROM sqlite_master WHERE type = 'index' "
                        "AND tbl_name = ? AND name LIKE ? ORDER BY rowid",
                        (name, prefix + "%"),
                    )
                )
                schema = TableSchema(name=name, columns=columns, indexed=indexed)
                backend._tables[name] = SqliteTable(
                    schema, backend._conn, create=False
                )
        return backend

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise ValueError(f"table {schema.name!r} already exists")
        table = SqliteTable(schema, self._conn)
        if self._observer is not None:
            table.attach_observer(self._observer)
        self._tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        return self._tables[name]

    def drop_table(self, name: str) -> None:
        table = self._tables.pop(name)
        with _mapped():
            self._conn.execute(f"DROP TABLE {table.schema.name}")

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def close(self) -> None:
        self._conn.close()
