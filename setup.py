"""Setup shim for environments whose pip/setuptools lack PEP 660 support.

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
