#!/usr/bin/env python
"""Fail if the documentation names symbols that do not exist.

Two checks, run from the repository root (``python tools/check_docs.py``;
CI runs it on one Python version):

1. every name in ``repro.obs.__all__`` must resolve to an attribute of
   the package (the observability surface is documented by name in
   docs/OBSERVABILITY.md and docs/API.md, so a rename that forgets the
   export list must break the build);
2. every backticked dotted reference matching ``repro(.module)+`` in
   the checked documentation files (``CHECKED_DOCS``) must
   import/resolve — call parentheses and argument lists are ignored,
   only the dotted path is checked.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: documentation files whose ``repro.*`` references must resolve
CHECKED_DOCS = (
    REPO_ROOT / "docs" / "API.md",
    REPO_ROOT / "docs" / "ARCHITECTURE.md",
    REPO_ROOT / "docs" / "DATA_LAYOUT.md",
    REPO_ROOT / "docs" / "MAINTENANCE.md",
    REPO_ROOT / "docs" / "RESILIENCE.md",
    REPO_ROOT / "docs" / "SERVING.md",
)

#: a backticked reference starting with ``repro.``: keep the leading
#: dotted-identifier run, drop any call syntax or trailing prose
REFERENCE = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)")


def resolve(path: str) -> bool:
    """Can ``path`` be reached by importing modules and getattr-ing?"""
    parts = path.split(".")
    # find the longest importable module prefix
    obj = None
    for cut in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:cut]))
        except ImportError:
            continue
        break
    if obj is None:
        return False
    for attr in parts[cut:]:
        try:
            obj = getattr(obj, attr)
        except AttributeError:
            return False
    return True


def check_obs_exports() -> list[str]:
    import repro.obs as obs

    errors = []
    for name in obs.__all__:
        if not hasattr(obs, name):
            errors.append(f"repro.obs.__all__ names missing symbol {name!r}")
    return errors


def check_doc_references() -> list[str]:
    errors = []
    for doc in CHECKED_DOCS:
        label = doc.relative_to(REPO_ROOT)
        text = doc.read_text(encoding="utf-8")
        for path in sorted(set(REFERENCE.findall(text))):
            if not resolve(path):
                errors.append(f"{label} references unresolvable {path!r}")
    return errors


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    errors = check_obs_exports() + check_doc_references()
    for error in errors:
        print(f"ERROR: {error}", file=sys.stderr)
    if not errors:
        checked = ", ".join(
            str(doc.relative_to(REPO_ROOT)) for doc in CHECKED_DOCS
        )
        print(f"check_docs: repro.obs exports and {checked} references OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
