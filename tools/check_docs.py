#!/usr/bin/env python
"""Fail if the documentation names symbols that do not exist.

Four checks, run from the repository root (``python tools/check_docs.py``;
CI runs it on one Python version):

1. every name in ``repro.obs.__all__`` must resolve to an attribute of
   the package (the observability surface is documented by name in
   docs/OBSERVABILITY.md and docs/API.md, so a rename that forgets the
   export list must break the build);
2. every backticked dotted reference matching ``repro(.module)+`` in
   the checked documentation files (``CHECKED_DOCS``) must
   import/resolve — call parentheses and argument lists are ignored,
   only the dotted path is checked;
3. every ``docs/*.md`` file must be registered in ``CHECKED_DOCS`` — a
   doc added without registering it here is a doc whose references
   nobody verifies;
4. any line mentioning a deprecated symbol (``DEPRECATED_SYMBOLS``, or
   a ``Flix.``-qualified legacy query method from
   ``DEPRECATED_FLIX_METHODS``) must say so: mention ``enable_cache``
   or ``Flix.find_descendants`` without the word "deprecated" on the
   same line and the check fails, so stale how-tos cannot resurface
   retired APIs as the recommended path.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

#: documentation files whose ``repro.*`` references must resolve — every
#: file under docs/ must appear here (check 3 enforces it)
CHECKED_DOCS = (
    DOCS_DIR / "API.md",
    DOCS_DIR / "ARCHITECTURE.md",
    DOCS_DIR / "DATA_LAYOUT.md",
    DOCS_DIR / "DURABILITY.md",
    DOCS_DIR / "MAINTENANCE.md",
    DOCS_DIR / "OBSERVABILITY.md",
    DOCS_DIR / "PAPER_MAP.md",
    DOCS_DIR / "PLANNING.md",
    DOCS_DIR / "RESILIENCE.md",
    DOCS_DIR / "SERVING.md",
    DOCS_DIR / "SHARDING.md",
)

#: symbols kept only as deprecation shims: a doc line naming one must
#: carry the word "deprecated" (any case/inflection) on the same line
DEPRECATED_SYMBOLS = ("enable_cache", "disable_cache")

#: the legacy per-kind ``Flix`` query methods, now shims over
#: ``query``/``query_stream``.  Matched only when ``Flix.``-qualified:
#: the same names stay live elsewhere (``QueryRequest.find_path`` is the
#: modern constructor, ``PathExpressionEvaluator.find_descendants`` is
#: the engine), and a trailing word boundary keeps live derivatives like
#: ``find_descendants_streamed`` from tripping the check.
DEPRECATED_FLIX_METHODS = (
    "find_descendants",
    "find_ancestors",
    "find_children",
    "evaluate_type_query",
    "find_path",
    "find_connections",
    "connection_cost",
    "connection_test",
)

_DEPRECATED_PATTERNS = tuple(
    (symbol, re.compile(rf"\b{re.escape(symbol)}\b"))
    for symbol in DEPRECATED_SYMBOLS
) + tuple(
    (f"Flix.{symbol}", re.compile(rf"\b[Ff]lix\.{re.escape(symbol)}\b"))
    for symbol in DEPRECATED_FLIX_METHODS
)

_DEPRECATION_MARK = re.compile(r"deprecat", re.IGNORECASE)

#: a backticked reference starting with ``repro.``: keep the leading
#: dotted-identifier run, drop any call syntax or trailing prose
REFERENCE = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)")


def _label(doc: Path) -> str:
    try:
        return str(doc.relative_to(REPO_ROOT))
    except ValueError:  # a doc outside the repo (tests)
        return str(doc)


def resolve(path: str) -> bool:
    """Can ``path`` be reached by importing modules and getattr-ing?"""
    parts = path.split(".")
    # find the longest importable module prefix
    obj = None
    for cut in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:cut]))
        except ImportError:
            continue
        break
    if obj is None:
        return False
    for attr in parts[cut:]:
        try:
            obj = getattr(obj, attr)
        except AttributeError:
            return False
    return True


def check_obs_exports() -> list[str]:
    import repro.obs as obs

    errors = []
    for name in obs.__all__:
        if not hasattr(obs, name):
            errors.append(f"repro.obs.__all__ names missing symbol {name!r}")
    return errors


def check_doc_references() -> list[str]:
    errors = []
    for doc in CHECKED_DOCS:
        label = _label(doc)
        if not doc.is_file():
            errors.append(f"{label} is registered in CHECKED_DOCS but missing")
            continue
        text = doc.read_text(encoding="utf-8")
        for path in sorted(set(REFERENCE.findall(text))):
            if not resolve(path):
                errors.append(f"{label} references unresolvable {path!r}")
    return errors


def check_all_docs_registered() -> list[str]:
    registered = {doc.name for doc in CHECKED_DOCS}
    errors = []
    for doc in sorted(DOCS_DIR.glob("*.md")):
        if doc.name not in registered:
            errors.append(
                f"docs/{doc.name} is not registered in "
                "tools/check_docs.py CHECKED_DOCS"
            )
    return errors


def check_deprecated_mentions() -> list[str]:
    errors = []
    for doc in CHECKED_DOCS:
        if not doc.is_file():
            continue  # already reported by check_doc_references
        label = _label(doc)
        for number, line in enumerate(
            doc.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for symbol, pattern in _DEPRECATED_PATTERNS:
                if pattern.search(line) and not _DEPRECATION_MARK.search(line):
                    errors.append(
                        f"{label}:{number} mentions deprecated {symbol!r} "
                        "without flagging it as deprecated"
                    )
    return errors


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    errors = (
        check_obs_exports()
        + check_doc_references()
        + check_all_docs_registered()
        + check_deprecated_mentions()
    )
    for error in errors:
        print(f"ERROR: {error}", file=sys.stderr)
    if not errors:
        checked = ", ".join(
            str(doc.relative_to(REPO_ROOT)) for doc in CHECKED_DOCS
        )
        print(
            "check_docs: repro.obs exports, deprecation flags, and "
            f"{checked} references OK"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
