#!/usr/bin/env python
"""Fail if a committed benchmark result violates its floors.

The bench-regression guard re-checks committed ``BENCH_*.json`` files
against the same acceptance floors the benches assert *without
re-running them*, so CI (and a reviewer) can verify the committed
numbers are in contract even on a machine too noisy to reproduce them.
The payload kind is detected from its keys:

``BENCH_microops.json`` (``benchmarks/bench_microops.py``):

* ``median_probe_speedup``      >= 2.0   (packed probes, strategy mix)
* ``cold_attach.speedup``       >= 10.0  (verified mmap attach vs
                                          verified SQLite rehydration)
* every per-op speedup          >= 0.8   (no single op regresses
                                          beyond measurement noise)

``BENCH_durability.json`` (``benchmarks/bench_durability.py``):

* ``recovery.fingerprint_match`` / ``generation_match``  must be true
  (crash recovery lands byte-exactly on the crashed primary's index)
* ``recovery.records_per_second``  >= 50    (WAL replay must not crawl)
* ``follower.parity``  true  and  ``follower.final_lag`` == 0
  (a caught-up replica answers all eight query kinds byte-identically)
* ``fsync_batching_speedup``  >= 0.8  (group commit never regresses
  below per-record fsync beyond measurement noise)

``BENCH_planner.json`` (``benchmarks/bench_planner.py``):

* ``workloads.skewed.p95_ratio``   <= 0.9  (the planner must cut p95 by
  at least 10% on the Zipf hub-heavy workload it exists for)
* ``workloads.uniform.p95_ratio``  <= 1.1  (its bookkeeping may not
  regress a uniform workload beyond measurement noise)
* ``workloads.*.parity``  true  and  ``fingerprint_match``  true
  (planned answers and built indexes are identical to the fixed
  discipline's — a faster wrong answer is a bug, not a win)
* ``workloads.skewed.planned.pruned_probes``  > 0

Run from the repository root::

    python tools/check_bench_regression.py [path/to/BENCH_file.json ...]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

MEDIAN_PROBE_FLOOR = 2.0
COLD_ATTACH_FLOOR = 10.0
PER_OP_FLOOR = 0.8
REPLAY_RATE_FLOOR = 50.0
BATCHING_FLOOR = 0.8
SKEWED_P95_RATIO_CEILING = 0.9
UNIFORM_P95_RATIO_CEILING = 1.1


def check(payload: dict) -> list:
    """The floor violations in a microops payload (empty = in contract)."""
    failures = []

    def require(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    median = payload.get("median_probe_speedup")
    require(
        isinstance(median, (int, float)) and median >= MEDIAN_PROBE_FLOOR,
        f"median_probe_speedup {median!r} < {MEDIAN_PROBE_FLOOR}",
    )
    attach = payload.get("cold_attach", {})
    speedup = attach.get("speedup")
    require(
        isinstance(speedup, (int, float)) and speedup >= COLD_ATTACH_FLOOR,
        f"cold_attach.speedup {speedup!r} < {COLD_ATTACH_FLOOR}",
    )
    require(
        attach.get("verified") is True,
        "cold_attach must time the *verified* attach path on both sides",
    )
    ops = payload.get("ops", {})
    require(bool(ops), "payload has no per-op section")
    for op, strategies in ops.items():
        for strategy, entry in strategies.items():
            per_op = entry.get("speedup")
            require(
                isinstance(per_op, (int, float)) and per_op >= PER_OP_FLOOR,
                f"ops.{op}.{strategy}.speedup {per_op!r} < {PER_OP_FLOOR}",
            )
    return failures


def check_durability(payload: dict) -> list:
    """The floor violations in a durability payload."""
    failures = []

    def require(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    recovery = payload.get("recovery", {})
    require(
        recovery.get("fingerprint_match") is True,
        "recovery.fingerprint_match must be true (recovered index must "
        "equal the crashed primary's byte-for-byte)",
    )
    require(
        recovery.get("generation_match") is True,
        "recovery.generation_match must be true",
    )
    rate = recovery.get("records_per_second")
    require(
        isinstance(rate, (int, float)) and rate >= REPLAY_RATE_FLOOR,
        f"recovery.records_per_second {rate!r} < {REPLAY_RATE_FLOOR}",
    )
    follower = payload.get("follower", {})
    require(
        follower.get("parity") is True,
        "follower.parity must be true (all eight query kinds byte-"
        "identical to the primary)",
    )
    require(
        follower.get("final_lag") == 0,
        f"follower.final_lag {follower.get('final_lag')!r} != 0",
    )
    batching = payload.get("fsync_batching_speedup")
    require(
        isinstance(batching, (int, float)) and batching >= BATCHING_FLOOR,
        f"fsync_batching_speedup {batching!r} < {BATCHING_FLOOR}",
    )
    return failures


def check_planner(payload: dict) -> list:
    """The floor violations in a probe-planner payload."""
    failures = []

    def require(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    workloads = payload.get("workloads", {})
    skewed = workloads.get("skewed", {})
    uniform = workloads.get("uniform", {})
    for name, workload in (("skewed", skewed), ("uniform", uniform)):
        require(
            workload.get("parity") is True,
            f"workloads.{name}.parity must be true (planned answers must "
            "be byte-identical to the fixed discipline's)",
        )
    require(
        payload.get("fingerprint_match") is True,
        "fingerprint_match must be true (the planner is a query-time "
        "layer; the built indexes may not differ)",
    )
    skewed_ratio = skewed.get("p95_ratio")
    require(
        isinstance(skewed_ratio, (int, float))
        and skewed_ratio <= SKEWED_P95_RATIO_CEILING,
        f"workloads.skewed.p95_ratio {skewed_ratio!r} > "
        f"{SKEWED_P95_RATIO_CEILING} (the planner must cut skewed p95 "
        "by at least 10%)",
    )
    uniform_ratio = uniform.get("p95_ratio")
    require(
        isinstance(uniform_ratio, (int, float))
        and uniform_ratio <= UNIFORM_P95_RATIO_CEILING,
        f"workloads.uniform.p95_ratio {uniform_ratio!r} > "
        f"{UNIFORM_P95_RATIO_CEILING} (planner bookkeeping regressed a "
        "uniform workload)",
    )
    pruned = skewed.get("planned", {}).get("pruned_probes")
    require(
        isinstance(pruned, int) and pruned > 0,
        f"workloads.skewed.planned.pruned_probes {pruned!r} must be > 0",
    )
    return failures


def _check_file(path: Path) -> int:
    if not path.is_file():
        print(f"check_bench_regression: {path} not found", file=sys.stderr)
        return 1
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        print(f"check_bench_regression: {path} is not JSON: {exc}", file=sys.stderr)
        return 1
    if "planner" in payload and "workloads" in payload:
        failures = check_planner(payload)
        workloads = payload.get("workloads", {})
        summary = (
            f"{path.name}: skewed p95 ratio "
            f"{workloads.get('skewed', {}).get('p95_ratio', float('nan')):.2f}, "
            f"uniform "
            f"{workloads.get('uniform', {}).get('p95_ratio', float('nan')):.2f}, "
            f"parity {workloads.get('skewed', {}).get('parity')}"
        )
    elif "recovery" in payload and "fsync_policies" in payload:
        failures = check_durability(payload)
        summary = (
            f"{path.name}: replay "
            f"{payload['recovery']['records_per_second']:.0f} records/s, "
            f"follower parity {payload['follower']['parity']}, "
            f"lag {payload['follower']['final_lag']}"
        )
    else:
        failures = check(payload)
        summary = (
            f"{path.name}: "
            f"median probe {payload.get('median_probe_speedup')}x, "
            f"cold attach {payload.get('cold_attach', {}).get('speedup')}x, "
            f"{sum(len(s) for s in payload.get('ops', {}).values())} "
            "per-op floors"
        )
    if failures:
        for failure in failures:
            print(
                f"check_bench_regression: FAIL [{path.name}] {failure}",
                file=sys.stderr,
            )
        return 1
    print(f"check_bench_regression: {summary} OK")
    return 0


def main(argv: list) -> int:
    paths = (
        [Path(arg) for arg in argv[1:]]
        if len(argv) > 1
        else [
            REPO_ROOT / "BENCH_microops.json",
            REPO_ROOT / "BENCH_durability.json",
            REPO_ROOT / "BENCH_planner.json",
        ]
    )
    status = 0
    for path in paths:
        status |= _check_file(path)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
