#!/usr/bin/env python
"""Fail if a committed microops benchmark result violates its floors.

The bench-regression guard: ``benchmarks/bench_microops.py`` measures
the packed hot-path layout against the object layout and writes
``BENCH_microops.json``; this script re-checks that file against the
same acceptance floors *without re-running the bench*, so CI (and a
reviewer) can verify the committed numbers are in contract even on a
machine too noisy to reproduce them:

* ``median_probe_speedup``      >= 2.0   (packed probes, strategy mix)
* ``cold_attach.speedup``       >= 10.0  (verified mmap attach vs
                                          verified SQLite rehydration)
* every per-op speedup          >= 0.8   (no single op regresses
                                          beyond measurement noise)

Run from the repository root::

    python tools/check_bench_regression.py [path/to/BENCH_microops.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

MEDIAN_PROBE_FLOOR = 2.0
COLD_ATTACH_FLOOR = 10.0
PER_OP_FLOOR = 0.8


def check(payload: dict) -> list:
    """The floor violations in a bench payload (empty = in contract)."""
    failures = []

    def require(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    median = payload.get("median_probe_speedup")
    require(
        isinstance(median, (int, float)) and median >= MEDIAN_PROBE_FLOOR,
        f"median_probe_speedup {median!r} < {MEDIAN_PROBE_FLOOR}",
    )
    attach = payload.get("cold_attach", {})
    speedup = attach.get("speedup")
    require(
        isinstance(speedup, (int, float)) and speedup >= COLD_ATTACH_FLOOR,
        f"cold_attach.speedup {speedup!r} < {COLD_ATTACH_FLOOR}",
    )
    require(
        attach.get("verified") is True,
        "cold_attach must time the *verified* attach path on both sides",
    )
    ops = payload.get("ops", {})
    require(bool(ops), "payload has no per-op section")
    for op, strategies in ops.items():
        for strategy, entry in strategies.items():
            per_op = entry.get("speedup")
            require(
                isinstance(per_op, (int, float)) and per_op >= PER_OP_FLOOR,
                f"ops.{op}.{strategy}.speedup {per_op!r} < {PER_OP_FLOOR}",
            )
    return failures


def main(argv: list) -> int:
    path = Path(argv[1]) if len(argv) > 1 else REPO_ROOT / "BENCH_microops.json"
    if not path.is_file():
        print(f"check_bench_regression: {path} not found", file=sys.stderr)
        return 1
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        print(f"check_bench_regression: {path} is not JSON: {exc}", file=sys.stderr)
        return 1
    failures = check(payload)
    if failures:
        for failure in failures:
            print(f"check_bench_regression: FAIL {failure}", file=sys.stderr)
        return 1
    print(
        "check_bench_regression: "
        f"median probe {payload['median_probe_speedup']}x, "
        f"cold attach {payload['cold_attach']['speedup']}x, "
        f"{sum(len(s) for s in payload['ops'].values())} per-op floors OK"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
