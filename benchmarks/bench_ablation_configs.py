"""Ablation A2: configuration choice across collection shapes.

Section 4.3 assigns each configuration an applicability profile: Maximal
PPO "can be useful if there are relatively few links", Unconnected HOPI
"when most documents contain links", Hybrid "for mixed settings like in
Figure 1".  This ablation sweeps the link density of a synthetic collection
and measures each configuration's index size and query cost, asserting the
predicted wins:

* at zero link density, Maximal PPO is the smallest index;
* at high link density, Maximal PPO degenerates (most edges residual) and
  pays the most run-time link traversals;
* the automatic recommendation (FlixConfig.recommend) picks Maximal PPO
  for link-free data and a HOPI-based configuration for dense data.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import BenchTable
from repro.collection.stats import collect_statistics
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.datasets.synthetic import SyntheticSpec, generate_synthetic_collection

DENSITIES = [0.0, 0.5, 2.0, 4.0]
CONFIG_MAKERS = {
    "naive": FlixConfig.naive,
    "maximal_ppo": FlixConfig.maximal_ppo,
    "unconnected_hopi": lambda: FlixConfig.unconnected_hopi(150),
    "hybrid": lambda: FlixConfig.hybrid(150),
}

_RESULTS = {}


def _collection(density):
    return generate_synthetic_collection(
        SyntheticSpec(
            documents=60,
            mean_document_size=25,
            links_per_document=density,
            deep_link_fraction=0.4,
            intra_links_per_document=0.2 if density > 0 else 0.0,
            seed=int(density * 10) + 1,
        )
    )


@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("config_name", sorted(CONFIG_MAKERS))
def test_config_on_density(benchmark, config_name, density):
    collection = _collection(density)
    flix = Flix.build(collection, CONFIG_MAKERS[config_name]())
    start = collection.document_root(sorted(collection.documents)[0])

    def run():
        return list(flix.find_descendants(start))

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    _RESULTS[(config_name, density)] = {
        "bytes": flix.size_bytes(),
        "residual": flix.report.residual_link_count,
        "link_traversals": flix.pee.last_stats.link_traversals,
        "seconds": benchmark.stats.stats.mean,
        "results": len(results),
    }
    benchmark.extra_info.update(_RESULTS[(config_name, density)])


def test_config_density_shape(benchmark):
    assert len(_RESULTS) == len(DENSITIES) * len(CONFIG_MAKERS)
    table = BenchTable(
        "Ablation: configuration x link density",
        ["config", "links/doc", "bytes", "residual", "query ms"],
    )
    for (config_name, density), row in sorted(_RESULTS.items()):
        table.add_row(
            config_name,
            density,
            row["bytes"],
            row["residual"],
            round(row["seconds"] * 1000, 3),
        )
    benchmark.pedantic(table.render, rounds=1, iterations=1)
    print()
    print(table.render())

    # link-free data: Maximal PPO smallest (or tied with naive, also PPO)
    zero = {name: _RESULTS[(name, 0.0)]["bytes"] for name in CONFIG_MAKERS}
    assert zero["maximal_ppo"] <= min(zero.values()) * 1.05

    # dense data: indexing the link structure costs storage — the
    # HOPI-based configuration pays 2-hop labels over linked partitions,
    # the PPO-constrained ones stay lean but push links to run time
    dense_bytes = {name: _RESULTS[(name, 4.0)]["bytes"] for name in CONFIG_MAKERS}
    assert dense_bytes["unconnected_hopi"] > dense_bytes["maximal_ppo"]

    # dense data: Maximal PPO's greedy forest absorbs root-targeted links,
    # collapsing many documents into few meta documents (unlike naive's
    # one-per-document split)
    dense_residual = {
        name: _RESULTS[(name, 4.0)]["residual"] for name in CONFIG_MAKERS
    }
    assert dense_residual["maximal_ppo"] < dense_residual["naive"]

    # every configuration answers the same query on the same data: the
    # result counts agree (cross-check recorded by the query benches)
    for density in DENSITIES:
        counts = {
            _RESULTS[(name, density)]["results"] for name in CONFIG_MAKERS
        }
        assert len(counts) == 1


def test_recommendation_tracks_density(benchmark):
    def recommend_for(density):
        stats = collect_statistics(_collection(density))
        return FlixConfig.recommend(
            stats.link_density,
            stats.intra_document_links,
            stats.mean_document_size,
            partition_size=150,
        )

    choices = benchmark.pedantic(
        lambda: {d: recommend_for(d).mdb_strategy for d in DENSITIES},
        rounds=1,
        iterations=1,
    )
    print()
    print("recommended configurations:", choices)
    assert choices[0.0] == "maximal_ppo"
    assert choices[4.0] in ("unconnected_hopi", "hybrid")
