"""Durability benchmarks: fsync policies, replay rate, follower catch-up.

Profiles the write-ahead log's three fsync policies over the same append
sequence, times crash recovery (snapshot load + WAL replay) against the
live index it must reproduce, and drives a follower replica through the
same log checking eight-kind query parity.  Writes the machine-readable
result to ``BENCH_durability.json`` at the repository root (published as
a CI artifact by the ``durability-bench`` job; the ``bench-regression``
guard in ``tools/check_bench_regression.py`` re-checks the committed
numbers against the same floors).

Measurement semantics live in :mod:`repro.bench.durability`.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.durability import (
    profile_durability,
    render_durability_profile,
)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_durability.json"


def test_durability():
    payload = profile_durability()
    payload["generated_by"] = "benchmarks/bench_durability.py"
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print()
    print(render_durability_profile(payload))
    print(f"-> {BENCH_JSON}")

    # the durability contract (mirrored by the CI guard): recovery must
    # land byte-exactly on the crashed primary's index, the follower
    # must reach parity with zero lag, and replay must not crawl
    recovery = payload["recovery"]
    assert recovery["fingerprint_match"] is True, payload
    assert recovery["generation_match"] is True, payload
    assert recovery["records_per_second"] >= 50.0, payload
    follower = payload["follower"]
    assert follower["parity"] is True, payload
    assert follower["final_lag"] == 0, payload
    # group commit may never make appends slower than per-record fsync
    assert payload["fsync_batching_speedup"] >= 0.8, payload
