"""Incremental-maintenance benchmark (the maintenance verbs on ``Flix``).

Measures sequential ``add_document`` vs one batched ``add_documents``
publish onto a large standing collection, compares an incremental add to
the full rebuild it avoids, and profiles online compaction's cost and
benefit.  The machine-readable profile lands in
``BENCH_incremental.json`` at the repository root (published as a CI
artifact by the ``incremental-bench`` job).

The cost model and figure semantics live in
:mod:`repro.bench.incremental`: the added documents are deliberately
tiny so the per-publish layout cost — what batching amortizes — is what
gets measured, not per-document index construction.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.bench.incremental import profile_incremental, render_incremental

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_incremental.json"


def test_incremental_maintenance():
    payload = profile_incremental(
        base_documents=int(os.environ.get("FLIX_BENCH_BASE_DOCS", "1500")),
        added=24,
    )
    payload["generated_by"] = "benchmarks/bench_incremental.py"
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print()
    print(render_incremental(payload))
    print(f"-> {BENCH_JSON}")

    # correctness first: both growth paths (and the compacted index)
    # must answer the probe queries with identical node sets
    assert payload["answers_identical"]
    # the acceptance floor: one batched publish for N documents must
    # beat N sequential publishes by 3x or more...
    assert payload["batch_speedup"] >= 3.0, payload
    # ...and compaction must actually shrink the layout: the merged
    # meta replaces the candidates and absorbs their inter-meta links
    compaction = payload["compaction"]
    assert compaction["metas_after"] < compaction["metas_before"], payload
    assert (
        compaction["residual_links_after"]
        < compaction["residual_links_before"]
    ), payload
