"""Resilience idle-overhead check.

The fault-tolerance layer promises to be free when unused: without a
``ResilienceConfig`` nothing changes at all, and with one attached but
no faults occurring the hot-loop additions reduce to attribute tests
(budget checks against ``None`` limits, completeness bookkeeping) plus
the storage wrapper's pass-through on the build path.
``test_fault_overhead`` measures both claims over the session DBLP
workload and writes the machine-readable comparison to
``BENCH_fault_overhead.json`` at the repository root.

As in ``bench_query_overhead.py`` the plain mode is measured as two
interleaved series and their spread (``noise_pct``) is the yardstick:
an overhead smaller than the noise floor is indistinguishable from
zero.  Transparency is asserted outright — the resilient build must be
fingerprint-identical to the plain one.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.harness import profile_fault_overhead
from repro.core.config import FlixConfig

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_fault_overhead.json"


def test_fault_overhead(dblp_collection):
    payload = profile_fault_overhead(
        dblp_collection, FlixConfig.naive(), queries=20, repeats=5
    )
    payload["generated_by"] = "benchmarks/bench_fault_overhead.py"
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print()
    print(
        f"build plain {payload['plain_build_seconds']:.4f}s, "
        f"resilient {payload['resilient_build_seconds']:.4f}s "
        f"(+{payload['build_overhead_pct']:.2f}%); "
        f"query plain {payload['plain_seconds']:.4f}s "
        f"(rerun {payload['plain_rerun_seconds']:.4f}s, "
        f"noise {payload['noise_pct']:.2f}%), "
        f"resilient {payload['resilient_seconds']:.4f}s "
        f"(+{payload['query_overhead_pct']:.2f}%)"
    )
    print(f"-> {BENCH_JSON}")

    # transparency: the wrapper may not change what gets built or found
    assert payload["fingerprint_identical"]
    assert payload["workload"]["results_per_pass"] > 0
    # The idle query-side machinery must sit within the noise floor of
    # the plain path (micro-benchmark noise on shared runners dwarfs a
    # few attribute tests); the bound is a catastrophe guard against the
    # layer accidentally growing per-result work.
    assert payload["query_overhead_pct"] <= max(10.0, 3 * payload["noise_pct"])
    # The build-side wrapper adds one delegation layer per storage call;
    # it must stay a modest fraction of build time.
    assert payload["build_overhead_pct"] < 50.0
