"""Sharded multi-process serving benchmark (the ``repro.shard`` layer).

Spawns 2/4/8 shard worker processes over one saved packed index, drives
the repeat-free request mix through a ``ShardCoordinator``, and compares
cold/warm throughput to the serial single-process baseline.  The
machine-readable profile lands in ``BENCH_sharded.json`` at the
repository root (published as a CI artifact by the ``sharded-bench``
job).

The latency model — the same GIL-releasing stall as the thread bench,
injected into every worker via ``FLIX_SHARD_LATENCY_MS`` — and its
rationale live in :mod:`repro.bench.sharding`.  Floors asserted here:

* every configuration byte-identical to serial ``Flix.query``, across
  all eight ``QueryRequest`` kinds;
* cold throughput at 8 shard processes >= 5x the serial baseline;
* the coordinator result cache actually served the warm pass.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.bench.sharding import profile_sharded_queries, render_sharded_profile

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"


def test_sharded_queries():
    payload = profile_sharded_queries(
        documents=int(os.environ.get("FLIX_BENCH_SHARD_DOCS", "16")),
        lookup_latency_seconds=0.01,
        shard_counts=(2, 4, 8),
        repeats=2,
    )
    payload["generated_by"] = "benchmarks/bench_sharded.py"
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print()
    print(render_sharded_profile(payload))
    print(f"-> {BENCH_JSON}")

    # correctness first: sharding must be invisible in the answers
    assert payload["all_results_identical_to_serial"], payload
    assert payload["parity_all_kinds"], payload
    # the acceptance floor: 8 worker processes >= 5x serial cold rps
    assert payload["speedup_max_shards_vs_serial"] >= 5.0, payload
    # monotonic-ish scaling: more shards never below the 2-shard floor
    by_shards = {run["shards"]: run for run in payload["runs"]}
    assert by_shards[8]["cold_rps"] >= by_shards[2]["cold_rps"], payload
    # the warm pass must have been served by the coordinator cache
    assert by_shards[8]["cache_hits"] > 0, payload
