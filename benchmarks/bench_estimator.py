"""Ablation A4: Cohen's closure-size estimator (accuracy and cost).

Section 2.2: "there is no exact algorithm to compute HOPI's size (without
actually building the index), it has to be estimated from the size of the
transitive closure.  A randomized algorithm to estimate this has been
proposed by Edith Cohen."  Our Indexing Strategy Selector uses exactly that
estimator; this suite quantifies its accuracy against the exact closure and
shows it is orders of magnitude cheaper to run.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import BenchTable
from repro.graph.estimation import estimate_closure_size

ROUNDS = [4, 16, 64]

_ERRORS = {}


@pytest.mark.parametrize("rounds", ROUNDS)
def test_estimator_accuracy(benchmark, dblp_collection, oracle, rounds):
    graph = dblp_collection.graph
    exact = oracle.pair_count

    estimate = benchmark.pedantic(
        lambda: estimate_closure_size(graph, rounds=rounds, seed=7),
        rounds=2,
        iterations=1,
    )
    error = abs(estimate - exact) / exact
    _ERRORS[rounds] = {
        "estimate": estimate,
        "exact": exact,
        "relative_error": error,
        "seconds": benchmark.stats.stats.mean,
    }
    benchmark.extra_info.update(
        {k: round(v, 4) if isinstance(v, float) else v for k, v in _ERRORS[rounds].items()}
    )


def test_estimator_shape(benchmark, dblp_collection, oracle):
    assert len(_ERRORS) == len(ROUNDS)
    table = BenchTable(
        "Closure-size estimator (exact = {})".format(oracle.pair_count),
        ["rounds", "estimate", "rel. error", "seconds"],
    )
    for rounds in ROUNDS:
        row = _ERRORS[rounds]
        table.add_row(
            rounds,
            round(row["estimate"]),
            f"{row['relative_error']:.1%}",
            round(row["seconds"], 4),
        )
    print()
    print(table.render())

    # the most thorough estimate lands within 25% of the truth
    assert _ERRORS[ROUNDS[-1]]["relative_error"] < 0.25

    # accuracy improves with rounds (1/sqrt(rounds) error decay)
    assert (
        _ERRORS[ROUNDS[-1]]["relative_error"]
        < _ERRORS[ROUNDS[0]]["relative_error"]
    )

    # The estimator's footprint is O(rounds * V) propagated values versus
    # the closure's O(pairs) materialized rows — the asymptotic win the ISS
    # relies on for large meta documents.  (Wall-clock at this corpus scale
    # is Python-overhead-bound, so the memory claim is the meaningful one.)
    graph = dblp_collection.graph
    touched = ROUNDS[-1] * graph.node_count
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert touched < oracle.pair_count
