"""Table 1 reproduction: database storage required by each index.

Paper (section 6, Table 1) on 6,210 DBLP documents / 168,991 elements /
25,368 links:

    index        HOPI   APEX   PPO-naive  HOPI-5000  HOPI-20000  MaximalPPO
    size [MB]    (largest) ...            ~2x APEX   ...         (smallest)

with the transitive closure "more than an order of magnitude" above HOPI.
This suite rebuilds every index fresh (measuring build cost on the way) and
asserts the size ordering the paper reports:

* closure >> monolithic HOPI,
* monolithic HOPI >> every FliX configuration,
* partitioned HOPI in the same ballpark as (about twice) APEX,
* the PPO-based configurations smallest.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import BenchTable
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.storage.sizing import format_bytes

_SIZES = {}


def _build_and_record(benchmark, name, build):
    flix = benchmark.pedantic(build, rounds=1, iterations=1)
    _SIZES[name] = flix.size_bytes()
    benchmark.extra_info["index_bytes"] = flix.size_bytes()
    benchmark.extra_info["meta_documents"] = len(flix.meta_documents)
    return flix


def test_build_transitive_closure(benchmark, dblp_collection, oracle_node_limit):
    if dblp_collection.node_count > oracle_node_limit:
        pytest.skip("materializing the closure at this scale needs gigabytes")
    _build_and_record(
        benchmark,
        "TransitiveClosure",
        lambda: Flix.build_monolithic(dblp_collection, "transitive_closure"),
    )


def test_build_monolithic_hopi(benchmark, dblp_collection):
    _build_and_record(
        benchmark, "HOPI", lambda: Flix.build_monolithic(dblp_collection, "hopi")
    )


def test_build_monolithic_apex(benchmark, dblp_collection):
    _build_and_record(
        benchmark, "APEX", lambda: Flix.build_monolithic(dblp_collection, "apex")
    )


def test_build_ppo_naive(benchmark, dblp_collection):
    _build_and_record(
        benchmark,
        "PPO-naive",
        lambda: Flix.build(dblp_collection, FlixConfig.naive()),
    )


def test_build_hopi_small_partitions(benchmark, dblp_collection, partition_sizes):
    small, _large = partition_sizes
    _build_and_record(
        benchmark,
        f"HOPI-{small}",
        lambda: Flix.build(dblp_collection, FlixConfig.unconnected_hopi(small)),
    )


def test_build_hopi_large_partitions(benchmark, dblp_collection, partition_sizes):
    _small, large = partition_sizes
    _build_and_record(
        benchmark,
        f"HOPI-{large}",
        lambda: Flix.build(dblp_collection, FlixConfig.unconnected_hopi(large)),
    )


def test_build_maximal_ppo(benchmark, dblp_collection):
    _build_and_record(
        benchmark,
        "MaximalPPO",
        lambda: Flix.build(dblp_collection, FlixConfig.maximal_ppo()),
    )


def test_table1_shape(benchmark, partition_sizes):
    """Render the table and assert the paper's size ordering."""
    small, large = partition_sizes
    assert len(_SIZES) >= 6, "build benchmarks must run first (same module)"

    table = BenchTable(
        "Table 1 (reproduced): index sizes", ["index", "size", "bytes"]
    )
    for name, size in sorted(_SIZES.items(), key=lambda kv: -kv[1]):
        table.add_row(name, format_bytes(size), size)
    benchmark.pedantic(table.render, rounds=1, iterations=1)
    print()
    print(table.render())

    hopi = _SIZES["HOPI"]
    apex = _SIZES["APEX"]
    flix_configs = [
        _SIZES["PPO-naive"],
        _SIZES[f"HOPI-{small}"],
        _SIZES[f"HOPI-{large}"],
        _SIZES["MaximalPPO"],
    ]
    # "more than an order of magnitude smaller than ... the closure"
    if "TransitiveClosure" in _SIZES:
        assert _SIZES["TransitiveClosure"] > 5 * hopi
    # "using FliX can save a lot of space as compared to the HOPI index"
    for size in flix_configs:
        assert size < hopi
    # "HOPI-5000 requires only about twice as much space as APEX"
    assert _SIZES[f"HOPI-{small}"] < 4 * apex
    # "Maximal PPO is as space efficient as PPO"
    assert _SIZES["MaximalPPO"] <= 1.2 * _SIZES["PPO-naive"]
