"""Ablation A5: automatic subcollection partitioning (section 7).

The paper's stated goal is that FliX "can itself determine the optimal
configuration for the actual application or, if the collection is too
heterogeneous, automatically build homogeneous partitions of the
collection."  This bench builds a deliberately heterogeneous collection —
a flat, link-free record corpus glued to a densely interlinked web — and
compares the automatic subcollection pipeline against every fixed
configuration.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import BenchTable
from repro.collection.builder import build_collection
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.core.subcollections import build_auto_partitioned
from repro.datasets.dblp import DblpSpec, generate_dblp_documents
from repro.datasets.synthetic import SyntheticSpec, generate_synthetic_documents

_RESULTS = {}


@pytest.fixture(scope="module")
def heterogeneous_collection():
    flat = generate_dblp_documents(DblpSpec(documents=120, mean_citations=0.0))
    dense = generate_synthetic_documents(
        SyntheticSpec(
            documents=30,
            mean_document_size=30,
            links_per_document=4.0,
            deep_link_fraction=0.5,
            intra_links_per_document=0.5,
            seed=99,
        )
    )
    return build_collection(flat + dense)


@pytest.fixture(scope="module")
def probe(heterogeneous_collection):
    return heterogeneous_collection.document_root(
        sorted(heterogeneous_collection.documents)[0]
    )


def _measure(benchmark, name, flix, probe):
    def run():
        return list(flix.find_descendants(probe))

    benchmark.pedantic(run, rounds=3, iterations=1)
    _RESULTS[name] = {
        "bytes": flix.size_bytes(),
        "residual": flix.report.residual_link_count,
        "meta_documents": len(flix.meta_documents),
        "seconds": benchmark.stats.stats.mean,
    }
    benchmark.extra_info.update(_RESULTS[name])


@pytest.mark.parametrize(
    "config_name", ["naive", "maximal_ppo", "unconnected_hopi", "hybrid"]
)
def test_fixed_configs(benchmark, heterogeneous_collection, probe, config_name):
    makers = {
        "naive": FlixConfig.naive,
        "maximal_ppo": FlixConfig.maximal_ppo,
        "unconnected_hopi": lambda: FlixConfig.unconnected_hopi(500),
        "hybrid": lambda: FlixConfig.hybrid(500),
    }
    flix = Flix.build(heterogeneous_collection, makers[config_name]())
    _measure(benchmark, config_name, flix, probe)


def test_auto_subcollections(benchmark, heterogeneous_collection, probe):
    flix, subcollections = build_auto_partitioned(
        heterogeneous_collection, partition_size=500
    )
    print()
    print("identified subcollections:")
    for subcollection in subcollections:
        print(f"  {subcollection.summary()}")
    _measure(benchmark, "auto", flix, probe)
    benchmark.extra_info["subcollections"] = len(subcollections)
    assert len(subcollections) >= 2  # the two families must separate


def test_auto_shape(benchmark, heterogeneous_collection):
    assert len(_RESULTS) == 5
    table = BenchTable(
        "Ablation: automatic subcollections on a heterogeneous collection",
        ["system", "bytes", "residual", "meta docs", "query ms"],
    )
    for name, row in sorted(_RESULTS.items()):
        table.add_row(
            name,
            row["bytes"],
            row["residual"],
            row["meta_documents"],
            round(row["seconds"] * 1000, 3),
        )
    benchmark.pedantic(table.render, rounds=1, iterations=1)
    print()
    print(table.render())

    auto = _RESULTS["auto"]
    sizes = {name: row["bytes"] for name, row in _RESULTS.items()}
    # auto never stores more than the most expensive fixed configuration
    assert auto["bytes"] <= max(
        size for name, size in sizes.items() if name != "auto"
    )
    # and absorbs more links than the most PPO-constrained configuration
    assert auto["residual"] <= _RESULTS["maximal_ppo"]["residual"] * 1.5
