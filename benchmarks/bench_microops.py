"""Per-op microbenchmarks: object vs packed hot-path layouts.

Times single connection probes, residual link hops, tag extent scans,
and cold attach (full SQLite deserialization vs FLXPACK ``mmap``) over
the same built per-meta indexes in both representations, and writes the
machine-readable comparison to ``BENCH_microops.json`` at the repository
root (published as a CI artifact by the ``microops-bench`` job; the
``bench-regression`` guard in ``tools/check_bench_regression.py`` reads
the same file).

Measurement semantics live in :mod:`repro.bench.microops`.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.microops import profile_microops, render_microops

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_microops.json"


def test_microops(dblp_collection):
    payload = profile_microops(dblp_collection)
    payload["generated_by"] = "benchmarks/bench_microops.py"
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print()
    print(render_microops(payload))
    print(f"-> {BENCH_JSON}")

    # the tentpole's acceptance floors (ISSUE 6): a probe drawn from the
    # collection's real strategy mix must be at least 2x faster packed,
    # and attach must beat deserialization by an order of magnitude
    assert payload["median_probe_speedup"] >= 2.0, payload
    assert payload["cold_attach"]["speedup"] >= 10.0, payload
    # no single op may regress: packed is never slower than object
    # beyond measurement noise (the CI guard enforces the same floor)
    for op, strategies in payload["ops"].items():
        for strategy, entry in strategies.items():
            assert entry["speedup"] >= 0.8, (op, strategy, entry)
