"""Probe-planner benchmark: planned vs fixed discipline latencies.

Profiles the cost-based probe planner (``docs/PLANNING.md``) on a
citation-skewed synthetic DBLP corpus under the ``naive`` configuration:
a Zipf hub-heavy workload the planner must speed up, and a uniform
workload bounding its bookkeeping overhead.  Every request is answered
by both systems and compared byte-for-byte.  Writes the machine-readable
result to ``BENCH_planner.json`` at the repository root (published as a
CI artifact by the ``planner-bench`` job; the ``bench-regression`` guard
in ``tools/check_bench_regression.py`` re-checks the committed numbers
against the same floors).

Measurement semantics live in :mod:`repro.bench.planner`.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.planner import profile_planner, render_planner_profile

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_planner.json"


def test_planner():
    payload = profile_planner()
    payload["generated_by"] = "benchmarks/bench_planner.py"
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print()
    print(render_planner_profile(payload))
    print(f"-> {BENCH_JSON}")

    # the planner contract (mirrored by the CI guard): identical answers
    # and identical indexes, a real win on the skewed workload, and at
    # worst measurement noise on the uniform one
    skewed = payload["workloads"]["skewed"]
    uniform = payload["workloads"]["uniform"]
    assert skewed["parity"] is True, payload
    assert uniform["parity"] is True, payload
    assert payload["fingerprint_match"] is True, payload
    assert skewed["p95_ratio"] <= 0.9, payload
    assert uniform["p95_ratio"] <= 1.1, payload
    assert skewed["planned"]["pruned_probes"] > 0, payload
