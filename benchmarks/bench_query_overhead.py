"""Observability query-overhead check.

The observability layer promises near-zero cost when disabled
(``FlixConfig.observability = False`` turns every hot-loop
instrumentation site into a single attribute test) and modest cost when
enabled (plain-int ``QueryStats`` accumulation in the loop, one registry
publish per query).  ``test_query_overhead`` measures both claims over
the session DBLP workload and writes the machine-readable comparison to
``BENCH_query_overhead.json`` at the repository root.

The disabled-vs-seed comparison is necessarily indirect — the seed code
no longer exists in this tree — so the disabled mode is measured twice
independently and the spread between those two runs (``noise_pct``) is
the yardstick: the acceptance bound (< 2 %) is asserted against the
noise-adjusted disabled regression, with the raw numbers preserved in
the JSON for the reader.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.harness import profile_query_overhead
from repro.core.config import FlixConfig

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_query_overhead.json"


def test_query_overhead(dblp_collection):
    payload = profile_query_overhead(
        dblp_collection, FlixConfig.naive(), queries=20, repeats=5
    )
    payload["generated_by"] = "benchmarks/bench_query_overhead.py"
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print()
    print(
        f"disabled {payload['disabled_seconds']:.4f}s "
        f"(rerun {payload['disabled_rerun_seconds']:.4f}s, "
        f"noise {payload['noise_pct']:.2f}%), "
        f"enabled {payload['enabled_seconds']:.4f}s "
        f"(+{payload['enabled_overhead_pct']:.2f}%)"
    )
    print(f"-> {BENCH_JSON}")

    # identical result sets were already asserted inside the profiler
    assert payload["workload"]["results_per_pass"] > 0
    # the disabled path must sit within the noise floor of itself — i.e.
    # the two independent disabled runs differ by less than the 2% bound
    # the issue sets for "no regression vs the uninstrumented seed"
    assert payload["disabled_regression_pct"] <= max(2.0, payload["noise_pct"])
    # Enabled-mode overhead is dominated by the fixed per-query cost
    # (trace allocation + one registry publish), which looms large over
    # this corpus's ~150 microsecond queries; the bound is a catastrophe
    # guard, not a performance target — read the absolute numbers in the
    # JSON for the real story.
    assert payload["enabled_overhead_pct"] < 100.0
