"""Shared fixtures for the benchmark suites.

The corpus scale is controlled by ``FLIX_BENCH_DOCS`` (default 600
documents, ~1/10 of the paper's 6,210): all structural ratios —
citations per document, partition-to-collection fractions — are preserved,
so the paper's qualitative shapes reproduce while the whole suite stays in
the minutes range.  Set ``FLIX_BENCH_DOCS=6210`` for paper scale.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import build_all_systems, paper_partition_sizes
from repro.bench.workloads import figure5_query
from repro.datasets.dblp import DblpSpec, generate_dblp
from repro.graph.closure import transitive_closure

BENCH_DOCS = int(os.environ.get("FLIX_BENCH_DOCS", "600"))


@pytest.fixture(scope="session")
def dblp_collection():
    return generate_dblp(DblpSpec(documents=BENCH_DOCS))


@pytest.fixture(scope="session")
def systems(dblp_collection):
    """The paper's six-system lineup (section 6), built once."""
    return build_all_systems(dblp_collection)


#: beyond this many elements, materializing the exact closure (or the
#: TransitiveClosure comparator) would need gigabytes; oracle-dependent
#: measurements are skipped at such scales.
ORACLE_NODE_LIMIT = 30_000


@pytest.fixture(scope="session")
def oracle(dblp_collection):
    """Exact reachability/distances — ground truth for error rates."""
    if dblp_collection.node_count > ORACLE_NODE_LIMIT:
        pytest.skip(
            f"collection has {dblp_collection.node_count} elements; the "
            f"exact-closure oracle is only materialized up to "
            f"{ORACLE_NODE_LIMIT}"
        )
    return transitive_closure(dblp_collection.graph)


@pytest.fixture(scope="session")
def fig5(dblp_collection):
    """(start element, tag) of the Figure 5 query."""
    return figure5_query(dblp_collection)


@pytest.fixture(scope="session")
def partition_sizes(dblp_collection):
    return paper_partition_sizes(dblp_collection)


@pytest.fixture(scope="session")
def oracle_node_limit():
    return ORACLE_NODE_LIMIT
