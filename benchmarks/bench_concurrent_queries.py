"""Concurrent query-serving benchmark (the ``repro.serve`` layer).

Measures ``FlixService`` throughput at 1/2/4/8 workers over a
lookup-latency-bound workload, cold cache vs warm, and verifies every
concurrent configuration returns byte-identical results to the serial
baseline.  The machine-readable profile lands in
``BENCH_concurrent_queries.json`` at the repository root (published as a
CI artifact by the ``concurrent-bench`` job).

The latency model and its rationale live in
:mod:`repro.bench.serving`: a GIL-releasing stall in front of every
evaluator call stands in for the I/O round trip of a disk- or
network-backed index, which is what lets thread workers scale on a
single-core runner — and what the shared cache lets warm runs skip.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.serving import profile_concurrent_queries, render_profile

BENCH_JSON = (
    Path(__file__).resolve().parent.parent / "BENCH_concurrent_queries.json"
)


def test_concurrent_queries():
    payload = profile_concurrent_queries(
        documents=12,
        lookup_latency_seconds=0.0005,
        worker_counts=(1, 2, 4, 8),
        repeats=3,
    )
    payload["generated_by"] = "benchmarks/bench_concurrent_queries.py"
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print()
    print(render_profile(payload))
    print(f"-> {BENCH_JSON}")

    # correctness first: concurrency and caching must be invisible in the
    # answers — every configuration byte-identical to the serial pass
    assert payload["all_results_identical_to_serial"]
    # the acceptance floor: 4 workers must at least double 1-worker
    # throughput on the latency-bound workload...
    assert payload["speedup_4_workers_vs_1"] >= 2.0, payload
    # ...and a warm cache must beat a cold one by 5x or more
    assert payload["best_warm_over_cold"] >= 5.0, payload
    # the cache must actually have been exercised, not bypassed
    assert payload["cache"]["hits"] > 0
