"""Ablation A8: semantic + structural relaxation (section 1.1).

The paper's opening claim: strict path queries fail on heterogeneous
collections, and the relaxed form — descendant axes, ontology-similar
tags, vague text predicates — recovers the intended answers at a
quantifiable evaluation cost.  This bench measures the recall expansion
and the cost of each relaxation stage on the movie scenario, and the
engine's top-k early-stop behaviour on DBLP.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import BenchTable
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.datasets.movies import generate_movie_collection
from repro.query.engine import QueryEngine
from repro.query.parser import parse_query
from repro.query.relaxation import relax

_ROWS = {}


@pytest.fixture(scope="module")
def movie_engine():
    collection = generate_movie_collection()
    return QueryEngine(Flix.build(collection, FlixConfig.naive()))


STAGES = {
    "strict": lambda q: q,
    "structural": lambda q: relax(q, add_similarity=False),
    "structural+semantic": lambda q: relax(q, add_similarity=True),
}


@pytest.mark.parametrize("stage", sorted(STAGES))
def test_relaxation_stage(benchmark, movie_engine, stage):
    base = parse_query('/movie[title = "Matrix: Revolutions"]/actor/movie')
    query = STAGES[stage](base)

    def run():
        return movie_engine.evaluate(query, top_k=20)

    matches = benchmark.pedantic(run, rounds=5, iterations=1)
    _ROWS[stage] = {
        "results": len(matches),
        "best_score": round(max((m.score for m in matches), default=0.0), 3),
        "seconds": benchmark.stats.stats.mean,
    }
    benchmark.extra_info.update(_ROWS[stage])


def test_relaxation_shape(benchmark):
    assert len(_ROWS) == 3
    table = BenchTable(
        "Relaxation stages on the Matrix query (section 1.1)",
        ["stage", "results", "best score", "ms"],
    )
    for stage in ("strict", "structural", "structural+semantic"):
        row = _ROWS[stage]
        table.add_row(
            stage, row["results"], row["best_score"],
            round(row["seconds"] * 1000, 3),
        )
    benchmark.pedantic(table.render, rounds=1, iterations=1)
    print()
    print(table.render())

    # the paper's motivating failure and its resolution
    assert _ROWS["strict"]["results"] == 0
    assert _ROWS["structural+semantic"]["results"] > 0
    # each stage can only widen the answer
    assert (
        _ROWS["structural"]["results"]
        <= _ROWS["structural+semantic"]["results"]
    )


def test_top_k_early_stop(benchmark, dblp_collection):
    """Fagin-style cut-off: small k must cost less than exhaustive k."""
    engine = QueryEngine(
        Flix.build(dblp_collection, FlixConfig.maximal_ppo())
    )
    query = "//~paper"

    def run_small():
        return engine.evaluate(query, top_k=5)

    small = benchmark.pedantic(run_small, rounds=3, iterations=1)
    assert len(small) == 5
    import time

    began = time.perf_counter()
    large = engine.evaluate(query, top_k=500)
    large_seconds = time.perf_counter() - began
    benchmark.extra_info["k5_ms"] = round(benchmark.stats.stats.mean * 1000, 2)
    benchmark.extra_info["k500_ms"] = round(large_seconds * 1000, 2)
    assert len(large) > len(small)
    # scores sorted in both
    assert [m.score for m in large] == sorted(
        (m.score for m in large), reverse=True
    )
