"""Ablation A3: index build time vs collection size, plus the parallel
build comparison.

Section 2.2: "the time to build HOPI superlinearly increases with
increasing number of documents", while PPO "takes time O(|E|)".  This
suite builds the three core strategies over growing DBLP corpora and
asserts the scaling relationship: HOPI's growth factor dominates PPO's.

``test_parallel_build_comparison`` additionally builds the session's
multi-meta-document DBLP workload sequentially and with ``jobs=4`` and
writes the machine-readable comparison to ``BENCH_build_time.json`` at
the repository root (wall clock, per-phase totals, index fingerprints).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.bench.harness import paper_partition_sizes, profile_build
from repro.bench.reporting import BenchTable
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.datasets.dblp import DblpSpec, generate_dblp

SIZES = [100, 200, 400]

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_build_time.json"

_TIMES = {}


@pytest.fixture(scope="module")
def corpora():
    return {size: generate_dblp(DblpSpec(documents=size)) for size in SIZES}


@pytest.mark.parametrize("documents", SIZES)
@pytest.mark.parametrize("strategy", ["hopi", "apex"])
def test_build_scaling_graph_indexes(benchmark, corpora, strategy, documents):
    collection = corpora[documents]

    def build():
        return Flix.build_monolithic(collection, strategy)

    benchmark.pedantic(build, rounds=2, iterations=1)
    _TIMES[(strategy, documents)] = benchmark.stats.stats.mean
    benchmark.extra_info["elements"] = collection.node_count


@pytest.mark.parametrize("documents", SIZES)
def test_build_scaling_ppo(benchmark, corpora, documents):
    """PPO over the link-free tree view of the same corpus (O(|E|))."""
    collection = corpora[documents]
    from repro.core.config import FlixConfig

    def build():
        return Flix.build(collection, FlixConfig.maximal_ppo())

    benchmark.pedantic(build, rounds=2, iterations=1)
    _TIMES[("ppo", documents)] = benchmark.stats.stats.mean


def test_build_time_shape(benchmark):
    assert len(_TIMES) == 3 * len(SIZES)
    table = BenchTable(
        "Build time scaling (seconds)",
        ["strategy"] + [str(size) for size in SIZES] + ["growth x4 docs"],
    )
    growth = {}
    for strategy in ("hopi", "apex", "ppo"):
        times = [_TIMES[(strategy, size)] for size in SIZES]
        growth[strategy] = times[-1] / max(times[0], 1e-9)
        table.add_row(strategy, *[round(t, 4) for t in times], round(growth[strategy], 2))
    benchmark.pedantic(table.render, rounds=1, iterations=1)
    print()
    print(table.render())

    # every strategy takes longer on more data ...
    for strategy in ("hopi", "apex", "ppo"):
        assert _TIMES[(strategy, SIZES[-1])] > _TIMES[(strategy, SIZES[0])]
    # ... but HOPI's growth factor dominates PPO's (superlinearity claim)
    assert growth["hopi"] > growth["ppo"]


def test_parallel_build_comparison(dblp_collection):
    """Sequential vs jobs=4 on the multi-meta-document workload.

    Emits ``BENCH_build_time.json``.  ``build_executor="process"`` is
    pinned so the worker pool itself is measured (``auto`` would rightly
    degrade to serial on a single-CPU runner and measure nothing); the
    jobs=1 baseline stays serial regardless.

    On a runner the OS grants a *single* CPU, a process pool has zero
    parallel capacity: its wall clock measures fork + pickle overhead,
    nothing else, and publishing it as a "speedup" is misleading (the
    seed BENCH file reported 0.724x that way).  Such runs are skipped and
    the JSON records why in ``parallel_skipped`` instead of a bogus
    parallel run.  Where the pool does run, the determinism guarantee
    (equal index fingerprints across jobs settings) is asserted
    unconditionally; the speedup exceeding 1.0 is asserted only where the
    machine makes that physically possible — enough granted CPUs and a
    workload large enough to amortize pool startup.  ``effective_cpus``
    in the JSON tells the reader what the numbers mean.
    """
    import dataclasses

    from repro.core.ib import _available_cpus

    small, _large = paper_partition_sizes(dblp_collection)
    config = dataclasses.replace(
        FlixConfig.unconnected_hopi(small), build_executor="process"
    )
    single_cpu = _available_cpus() <= 1
    jobs_options = (1,) if single_cpu else (1, 4)
    payload = profile_build(
        dblp_collection, config, jobs_options=jobs_options, repeats=3
    )
    if single_cpu:
        payload["parallel_skipped"] = (
            "effective_cpus == 1: a process pool would measure fork/pickle "
            "overhead with zero parallel capacity; rerun with more granted "
            "CPUs for a meaningful jobs=4 comparison"
        )
    payload["generated_by"] = "benchmarks/bench_build_time.py"
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print()
    for run in payload["runs"]:
        print(
            f"jobs={run['jobs']} ({run['executor']}): "
            f"{run['wall_seconds']:.3f}s wall, speedup {run['speedup']:.2f}x"
        )
    print(f"-> {BENCH_JSON} (effective_cpus={payload['effective_cpus']})")

    assert payload["deterministic"], "jobs=4 produced a different index"
    sequential = payload["runs"][0]
    assert sequential["jobs"] == 1
    assert sequential["executor"] == "serial"
    assert sequential["meta_documents"] > 1
    if single_cpu:
        assert len(payload["runs"]) == 1
        return
    parallel = payload["runs"][1]
    assert parallel["jobs"] == 4
    assert parallel["executor"] == "process"
    assert parallel["meta_documents"] == sequential["meta_documents"]
    assert parallel["speedup"] > 0
    if payload["effective_cpus"] >= 4 and sequential["wall_seconds"] >= 0.3:
        assert parallel["speedup"] > 1.0
