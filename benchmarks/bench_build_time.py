"""Ablation A3: index build time vs collection size.

Section 2.2: "the time to build HOPI superlinearly increases with
increasing number of documents", while PPO "takes time O(|E|)".  This
suite builds the three core strategies over growing DBLP corpora and
asserts the scaling relationship: HOPI's growth factor dominates PPO's.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import BenchTable
from repro.core.framework import Flix
from repro.datasets.dblp import DblpSpec, generate_dblp

SIZES = [100, 200, 400]

_TIMES = {}


@pytest.fixture(scope="module")
def corpora():
    return {size: generate_dblp(DblpSpec(documents=size)) for size in SIZES}


@pytest.mark.parametrize("documents", SIZES)
@pytest.mark.parametrize("strategy", ["hopi", "apex"])
def test_build_scaling_graph_indexes(benchmark, corpora, strategy, documents):
    collection = corpora[documents]

    def build():
        return Flix.build_monolithic(collection, strategy)

    benchmark.pedantic(build, rounds=2, iterations=1)
    _TIMES[(strategy, documents)] = benchmark.stats.stats.mean
    benchmark.extra_info["elements"] = collection.node_count


@pytest.mark.parametrize("documents", SIZES)
def test_build_scaling_ppo(benchmark, corpora, documents):
    """PPO over the link-free tree view of the same corpus (O(|E|))."""
    collection = corpora[documents]
    from repro.core.config import FlixConfig

    def build():
        return Flix.build(collection, FlixConfig.maximal_ppo())

    benchmark.pedantic(build, rounds=2, iterations=1)
    _TIMES[("ppo", documents)] = benchmark.stats.stats.mean


def test_build_time_shape(benchmark):
    assert len(_TIMES) == 3 * len(SIZES)
    table = BenchTable(
        "Build time scaling (seconds)",
        ["strategy"] + [str(size) for size in SIZES] + ["growth x4 docs"],
    )
    growth = {}
    for strategy in ("hopi", "apex", "ppo"):
        times = [_TIMES[(strategy, size)] for size in SIZES]
        growth[strategy] = times[-1] / max(times[0], 1e-9)
        table.add_row(strategy, *[round(t, 4) for t in times], round(growth[strategy], 2))
    benchmark.pedantic(table.render, rounds=1, iterations=1)
    print()
    print(table.render())

    # every strategy takes longer on more data ...
    for strategy in ("hopi", "apex", "ppo"):
        assert _TIMES[(strategy, SIZES[-1])] > _TIMES[(strategy, SIZES[0])]
    # ... but HOPI's growth factor dominates PPO's (superlinearity claim)
    assert growth["hopi"] > growth["ppo"]
