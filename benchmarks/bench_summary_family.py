"""Ablation A6: the structure-summary design space (paper §2.2).

The Index Definition Scheme spans a precision/size spectrum — A(0) (label
partition, what APEX-0 uses) through A(k) to the 1-index, the F&B index,
plus the DataGuide and Index Fabric path structures.  The paper's rule of
thumb: "if all paths are short or do not contain wildcards, APEX or an
instance of the Index Definition Scheme will do fine."  This ablation
quantifies the spectrum on the DBLP corpus: class/state counts, build
times, and the size ordering A(0) <= A(1) <= ... <= 1-index <= F&B.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import BenchTable
from repro.indexes.dataguide import DataGuideIndex
from repro.indexes.fabric import FabricIndex
from repro.indexes.kindex import ForwardBackwardIndex, KBisimulationIndex
from repro.storage.memory import MemoryBackend

_ROWS = {}


@pytest.fixture(scope="module")
def graph_and_tags(dblp_collection):
    graph = dblp_collection.graph
    tags = {node: dblp_collection.tag(node) for node in graph}
    return graph, tags


def _record(benchmark, name, build, classes_of):
    index = benchmark.pedantic(build, rounds=1, iterations=1)
    _ROWS[name] = {
        "classes": classes_of(index),
        "bytes": index.size_bytes(),
        "seconds": benchmark.stats.stats.mean,
    }
    benchmark.extra_info.update(_ROWS[name])


@pytest.mark.parametrize("k", [0, 1, 2])
def test_ak_index(benchmark, graph_and_tags, k):
    graph, tags = graph_and_tags
    _record(
        benchmark,
        f"A({k})",
        lambda: KBisimulationIndex.build_k(graph, tags, MemoryBackend(), k),
        lambda index: index.class_count,
    )


def test_one_index(benchmark, graph_and_tags):
    graph, tags = graph_and_tags
    _record(
        benchmark,
        "1-index",
        lambda: KBisimulationIndex.build(graph, tags, MemoryBackend()),
        lambda index: index.class_count,
    )


def test_fb_index(benchmark, graph_and_tags):
    graph, tags = graph_and_tags
    _record(
        benchmark,
        "F&B",
        lambda: ForwardBackwardIndex.build(graph, tags, MemoryBackend()),
        lambda index: index.class_count,
    )


def test_dataguide(benchmark, graph_and_tags):
    graph, tags = graph_and_tags
    _record(
        benchmark,
        "DataGuide",
        lambda: DataGuideIndex.build(graph, tags, MemoryBackend()),
        lambda index: index.state_count,
    )


def test_fabric_on_tree_view(benchmark, dblp_collection):
    """Fabric indexes the documents' *tree* structure (its design target);
    see test_fabric_blows_up_on_link_graph for why not the full graph."""
    tree = dblp_collection.tree_graph()
    tags = {node: dblp_collection.tag(node) for node in tree}
    _record(
        benchmark,
        "Fabric",
        lambda: FabricIndex.build(tree, tags, MemoryBackend()),
        lambda index: index.path_count,
    )


def test_fabric_blows_up_on_link_graph(benchmark, graph_and_tags):
    """On the citation DAG, root paths multiply combinatorially: the key
    budget trips — the concrete form of the paper's point that no single
    index suits all collection shapes."""
    from repro.indexes.base import IndexNotApplicableError

    graph, tags = graph_and_tags

    def try_build():
        try:
            FabricIndex.build_bounded(graph, tags, MemoryBackend(), 40_000)
            return False
        except IndexNotApplicableError:
            return True

    tripped = benchmark.pedantic(try_build, rounds=1, iterations=1)
    assert tripped


def test_family_shape(benchmark, dblp_collection):
    assert len(_ROWS) >= 7
    table = BenchTable(
        "Structure-summary family on DBLP "
        f"({dblp_collection.node_count} elements)",
        ["summary", "classes/states", "bytes", "build s"],
    )
    order = ["A(0)", "A(1)", "A(2)", "1-index", "F&B", "DataGuide", "Fabric"]
    for name in order:
        row = _ROWS[name]
        table.add_row(name, row["classes"], row["bytes"], round(row["seconds"], 4))
    benchmark.pedantic(table.render, rounds=1, iterations=1)
    print()
    print(table.render())

    # refinement is monotone: A(0) <= A(1) <= A(2) <= 1-index <= F&B
    counts = [
        _ROWS[name]["classes"]
        for name in ("A(0)", "A(1)", "A(2)", "1-index", "F&B")
    ]
    assert counts == sorted(counts)
    # A(0) is the label partition: one class per distinct tag
    assert _ROWS["A(0)"]["classes"] == len(dblp_collection.tags())