"""Ablations for the section 7 (future work) features we implemented.

* **Exactly sorted results** ("returning results exactly sorted instead of
  approximately"): measures the cost of the ordering guarantee — time to
  the first result grows because results are buffered until final, while
  the total time stays comparable and the stream becomes inversion-free.
* **Result caching** ("caching results of frequent (sub-)queries"):
  repeated queries are answered from the LRU cache at a fraction of the
  evaluation cost.
* **Incremental growth** (the HOPI follow-up work): adding a document via
  ``Flix.add_document`` is much cheaper than rebuilding the whole index,
  and incremental 2-hop edge insertion is much cheaper than re-labeling.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.harness import order_error_rate, time_to_k
from repro.core.config import FlixConfig
from repro.core.framework import Flix
from repro.datasets.dblp import DblpSpec, generate_dblp, generate_dblp_documents
from repro.indexes.hopi import HopiIndex
from repro.storage.memory import MemoryBackend


def test_exact_order_tradeoff(benchmark, dblp_collection, oracle, fig5):
    flix = Flix.build(dblp_collection, FlixConfig.unconnected_hopi(300))
    start, tag = fig5

    def run_exact():
        return list(flix.find_descendants(start, tag=tag, exact_order=True))

    exact_results = benchmark.pedantic(run_exact, rounds=3, iterations=1)
    approx_results = list(flix.find_descendants(start, tag=tag))

    # same answers, zero inversions in the exact stream
    assert {r.node for r in exact_results} == {r.node for r in approx_results}
    distances = [r.distance for r in exact_results]
    assert distances == sorted(distances)

    exact_first = time_to_k(
        lambda: flix.find_descendants(start, tag=tag, exact_order=True), [1]
    )[1]
    approx_first = time_to_k(
        lambda: flix.find_descendants(start, tag=tag), [1]
    )[1]
    benchmark.extra_info["exact_first_ms"] = round(exact_first * 1000, 3)
    benchmark.extra_info["approx_first_ms"] = round(approx_first * 1000, 3)
    # the ordering guarantee costs the early-first-results advantage
    assert exact_first >= approx_first * 0.5  # never dramatically cheaper

    # ordering by reported distance can only reduce the true-order error
    assert order_error_rate(exact_results, oracle, start) <= order_error_rate(
        approx_results, oracle, start
    )


def test_cache_effectiveness(benchmark, dblp_collection, fig5):
    flix = Flix.build(dblp_collection, FlixConfig.unconnected_hopi(300))
    flix.enable_cache(maxsize=64)
    start, tag = fig5

    cold_started = time.perf_counter()
    cold = list(flix.find_descendants(start, tag=tag))
    cold_seconds = time.perf_counter() - cold_started

    def warm():
        return list(flix.find_descendants(start, tag=tag))

    warm_results = benchmark.pedantic(warm, rounds=5, iterations=1)
    assert warm_results == cold
    assert flix.cache_hits >= 5
    warm_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["cold_ms"] = round(cold_seconds * 1000, 3)
    benchmark.extra_info["warm_ms"] = round(warm_seconds * 1000, 3)
    assert warm_seconds < cold_seconds


def test_incremental_document_addition_vs_rebuild(benchmark):
    spec = DblpSpec(documents=200)
    documents = generate_dblp_documents(spec)
    from repro.collection.builder import build_collection

    base = build_collection(documents[:-1])
    flix = Flix.build(base, FlixConfig.naive())

    def add():
        # add_document mutates; time a fresh copy each round via rebuild of
        # the base once (rounds=1 keeps this honest)
        flix.add_document(documents[-1])
        return flix

    benchmark.pedantic(add, rounds=1, iterations=1)
    incremental_seconds = benchmark.stats.stats.mean

    rebuild_started = time.perf_counter()
    full = build_collection(documents)
    Flix.build(full, FlixConfig.naive())
    rebuild_seconds = time.perf_counter() - rebuild_started
    benchmark.extra_info["incremental_ms"] = round(incremental_seconds * 1000, 2)
    benchmark.extra_info["rebuild_ms"] = round(rebuild_seconds * 1000, 2)
    assert incremental_seconds < rebuild_seconds


def test_persisted_load_vs_rebuild(benchmark, dblp_collection, tmp_path_factory):
    """Restart story: Flix.load from disk vs rebuilding from documents."""
    directory = tmp_path_factory.mktemp("flix_idx")
    flix = Flix.build(dblp_collection, FlixConfig.hybrid(300))
    flix.save(directory)

    loaded = benchmark.pedantic(
        lambda: Flix.load(dblp_collection, directory), rounds=2, iterations=1
    )
    load_seconds = benchmark.stats.stats.mean

    rebuild_started = time.perf_counter()
    Flix.build(dblp_collection, FlixConfig.hybrid(300))
    rebuild_seconds = time.perf_counter() - rebuild_started
    benchmark.extra_info["load_ms"] = round(load_seconds * 1000, 2)
    benchmark.extra_info["rebuild_ms"] = round(rebuild_seconds * 1000, 2)

    # the loaded index answers like the original
    from repro.datasets.dblp import find_aries

    aries = find_aries(dblp_collection)
    assert [r.node for r in loaded.find_descendants(aries, tag="article")] == [
        r.node for r in flix.find_descendants(aries, tag="article")
    ]


def test_incremental_hopi_edge_vs_rebuild(benchmark, dblp_collection):
    graph = dblp_collection.graph.copy()
    tags = {n: dblp_collection.tag(n) for n in graph}
    index = HopiIndex.build(graph, tags, MemoryBackend())
    roots = sorted(
        dblp_collection.document_root(name) for name in dblp_collection.documents
    )
    new_edges = [
        (roots[i], roots[i + 1])
        for i in range(0, 40, 2)
        if not graph.has_edge(roots[i], roots[i + 1])
    ]

    def insert_all():
        for u, v in new_edges:
            index.insert_edge(u, v)

    benchmark.pedantic(insert_all, rounds=1, iterations=1)
    incremental_seconds = benchmark.stats.stats.mean

    for u, v in new_edges:
        graph.add_edge(u, v)
    rebuild_started = time.perf_counter()
    HopiIndex.build(graph, tags, MemoryBackend())
    rebuild_seconds = time.perf_counter() - rebuild_started
    benchmark.extra_info["incremental_ms"] = round(incremental_seconds * 1000, 2)
    benchmark.extra_info["rebuild_ms"] = round(rebuild_seconds * 1000, 2)
    assert incremental_seconds < rebuild_seconds
