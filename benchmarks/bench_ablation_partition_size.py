"""Ablation A1: Unconnected-HOPI partition-size sweep.

The paper evaluates two partition sizes (5,000 and 20,000 nodes) and
observes the trade-off qualitatively: larger partitions mean fewer run-time
link traversals (more of the connection structure is inside one index) at
the cost of larger indexes; smaller partitions are leaner and faster to the
first result.  This ablation sweeps the size knob across a factor of 64 and
asserts the monotone parts of that trade-off.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import BenchTable
from repro.core.config import FlixConfig
from repro.core.framework import Flix

FRACTIONS = [0.01, 0.04, 0.16, 0.64]

_ROWS = {}


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_partition_size(benchmark, dblp_collection, fig5, fraction):
    size = max(20, round(dblp_collection.node_count * fraction))
    flix = Flix.build(dblp_collection, FlixConfig.unconnected_hopi(size))
    start, tag = fig5

    def run():
        return list(flix.find_descendants(start, tag=tag))

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert results
    stats = flix.pee.last_stats
    _ROWS[fraction] = {
        "partition_size": size,
        "meta_documents": len(flix.meta_documents),
        "index_bytes": flix.size_bytes(),
        "residual_links": flix.report.residual_link_count,
        "link_traversals": stats.link_traversals,
        "query_seconds": benchmark.stats.stats.mean,
    }
    benchmark.extra_info.update(_ROWS[fraction])


def test_partition_size_tradeoff(benchmark):
    assert len(_ROWS) == len(FRACTIONS)
    table = BenchTable(
        "Ablation: Unconnected HOPI partition size",
        ["size", "meta docs", "bytes", "residual links", "link traversals"],
    )
    for fraction in FRACTIONS:
        row = _ROWS[fraction]
        table.add_row(
            row["partition_size"],
            row["meta_documents"],
            row["index_bytes"],
            row["residual_links"],
            row["link_traversals"],
        )
    benchmark.pedantic(table.render, rounds=1, iterations=1)
    print()
    print(table.render())

    ordered = [_ROWS[f] for f in FRACTIONS]
    # larger partitions -> fewer meta documents and fewer residual links
    meta_counts = [row["meta_documents"] for row in ordered]
    assert meta_counts == sorted(meta_counts, reverse=True)
    residuals = [row["residual_links"] for row in ordered]
    assert residuals == sorted(residuals, reverse=True)
    # larger partitions -> fewer run-time link traversals for the query
    assert ordered[-1]["link_traversals"] <= ordered[0]["link_traversals"]
