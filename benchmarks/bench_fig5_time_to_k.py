"""Figure 5 reproduction: time to return the first k results of a//b.

Paper (section 6, Figure 5): the query asks for all ``article`` descendants
of Mohan's VLDB 99 ARIES paper.  Findings to reproduce:

* monolithic HOPI returns *all* results in near-constant time;
* the FliX configurations (HOPI-partitioned, Maximal PPO) return the *first*
  results faster than monolithic HOPI and clearly improve on APEX;
* the FliX configurations take longer than monolithic HOPI to finish
  (they follow links at run time);
* "other experiments with different start elements and different tag names
  showed similar results" — the sweep test repeats the measurement over a
  randomized workload.
"""

from __future__ import annotations

import itertools

import pytest

from repro.bench.harness import time_to_k
from repro.bench.reporting import format_series
from repro.bench.workloads import random_descendant_queries

CHECKPOINTS = [1, 2, 5, 10, 20, 50, 100]

_SERIES = {}


@pytest.fixture(scope="module")
def system_by_name(systems):
    return {system.name: system for system in systems}


@pytest.mark.parametrize("index", range(6))
def test_fig5_query(benchmark, systems, fig5, index):
    system = systems[index]
    start, tag = fig5

    def run():
        return list(system.flix.find_descendants(start, tag=tag))

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    timings = time_to_k(
        lambda: system.flix.find_descendants(start, tag=tag), CHECKPOINTS
    )
    _SERIES[system.name] = timings
    benchmark.extra_info["results"] = len(results)
    benchmark.extra_info["time_to_first_ms"] = timings[1] * 1000
    assert results, "the Figure 5 query must have answers"


def test_fig5_shape(benchmark, systems, fig5):
    """Render the series and assert the paper's qualitative findings."""
    assert len(_SERIES) == 6, "query benchmarks must run first (same module)"
    print()
    print(format_series("Figure 5 (reproduced): seconds to k results",
                        CHECKPOINTS, _SERIES))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    hopi = _SERIES["HOPI"]
    partitioned = [
        timings
        for name, timings in _SERIES.items()
        if name.startswith("HOPI-")
    ]
    assert len(partitioned) == 2

    # HOPI's curve is almost flat: finishing costs little more than starting.
    assert hopi[CHECKPOINTS[-1]] <= 5 * hopi[1] + 1e-3

    # The FliX configurations outperform monolithic HOPI to the first result.
    fastest_first = min(t[1] for t in partitioned + [_SERIES["MaximalPPO"]])
    assert fastest_first <= hopi[1]

    # ... and clearly improve on APEX for the first results.
    assert fastest_first < _SERIES["APEX"][1]


def test_fig5_sweep_other_start_elements(benchmark, systems, dblp_collection):
    """Section 6's in-text claim: other (start, tag) pairs behave alike."""
    queries = random_descendant_queries(dblp_collection, count=5, seed=7)
    by_name = {system.name: system for system in systems}
    hopi = by_name["HOPI"].flix
    partitioned = next(
        s for s in systems if s.name.startswith("HOPI-")
    ).flix

    def run_all():
        totals = {"HOPI": 0.0, "FliX": 0.0, "FliX_first": 0.0, "HOPI_first": 0.0}
        for start, tag in queries:
            t_hopi = time_to_k(lambda: hopi.find_descendants(start, tag=tag), [1, 50])
            t_flix = time_to_k(
                lambda: partitioned.find_descendants(start, tag=tag), [1, 50]
            )
            totals["HOPI"] += t_hopi[50]
            totals["FliX"] += t_flix[50]
            totals["HOPI_first"] += t_hopi[1]
            totals["FliX_first"] += t_flix[1]
        return totals

    totals = benchmark.pedantic(run_all, rounds=2, iterations=1)
    benchmark.extra_info.update({k: round(v * 1000, 3) for k, v in totals.items()})
    # similar trend: FliX competitive to the first result across the sweep
    assert totals["FliX_first"] < 5 * totals["HOPI_first"] + 0.01
