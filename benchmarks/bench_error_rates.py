"""Result-order error rates (section 6, in-text experiment E3).

Paper: "As both connected HOPI configurations and Maximal PPO are only
approximative algorithms, we also checked the error rate (i.e., fraction of
all results that were returned in wrong order); it was 8.2% for HOPI-5000,
10.4% for HOPI-20000, and 13.3% for Maximal PPO, which is tolerable for
most applications."

Shape to reproduce: monolithic indexes stream in exact order (0% error);
the partitioned FliX configurations pay a tolerable, double-digit-at-most
percentage for their early first results.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import order_error_rate
from repro.bench.reporting import BenchTable
from repro.bench.workloads import random_descendant_queries

PAPER_RATES = {"HOPI-5000": 0.082, "HOPI-20000": 0.104, "MaximalPPO": 0.133}

_RATES = {}


@pytest.mark.parametrize("index", range(6))
def test_error_rate(benchmark, systems, oracle, dblp_collection, fig5, index):
    system = systems[index]
    start, tag = fig5
    queries = [(start, tag)] + random_descendant_queries(
        dblp_collection, count=4, seed=13
    )

    def measure():
        rates = []
        for q_start, q_tag in queries:
            results = list(system.flix.find_descendants(q_start, tag=q_tag))
            if results:
                rates.append(order_error_rate(results, oracle, q_start))
        return sum(rates) / len(rates)

    rate = benchmark.pedantic(measure, rounds=1, iterations=1)
    _RATES[system.name] = rate
    benchmark.extra_info["error_rate"] = round(rate, 4)


def test_error_rate_shape(benchmark, systems):
    assert len(_RATES) == 6, "error-rate benchmarks must run first"
    table = BenchTable(
        "Result-order error rates (paper: 8.2% / 10.4% / 13.3%)",
        ["system", "error rate"],
    )
    for name, rate in sorted(_RATES.items()):
        table.add_row(name, f"{rate:.1%}")
    benchmark.pedantic(table.render, rounds=1, iterations=1)
    print()
    print(table.render())

    # monolithic indexes stream in exact ascending distance
    assert _RATES["HOPI"] == 0.0
    assert _RATES["APEX"] == 0.0
    # approximate configurations: non-zero but tolerable (< 50%)
    approx = [rate for name, rate in _RATES.items() if name.startswith("HOPI-")]
    approx.append(_RATES["MaximalPPO"])
    assert any(rate > 0.0 for rate in approx)
    for rate in approx:
        assert rate < 0.5
