"""Connection-test experiment (section 6, in-text experiment E4).

Paper: "We also experimented with testing if two nodes are connected.
Here, we found the same performance trend as before, only with lower
absolute numbers."  We measure connection tests over a mixed workload
(half connected pairs, half disconnected) on every system, verify all
answers against the oracle, and assert that per-test cost is below the
full-enumeration cost of the Figure 5 query on the same system.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import BenchTable
from repro.bench.workloads import connection_pairs

_COSTS = {}


@pytest.fixture(scope="module")
def pairs(dblp_collection):
    return connection_pairs(dblp_collection, count=20, seed=21)


@pytest.mark.parametrize("index", range(6))
def test_connection_tests(benchmark, systems, oracle, pairs, index):
    system = systems[index]

    def run():
        answers = []
        for source, target, _expected in pairs:
            answers.append(system.flix.connection_test(source, target, max_distance=50))
        return answers

    answers = benchmark.pedantic(run, rounds=3, iterations=1)
    for (source, target, expected), answer in zip(pairs, answers):
        assert (answer is not None) == expected, (system.name, source, target)
        if answer is not None:
            assert answer >= oracle.distance(source, target)
    _COSTS[system.name] = benchmark.stats.stats.mean / len(pairs)
    benchmark.extra_info["per_test_ms"] = round(_COSTS[system.name] * 1000, 4)


def test_connection_tests_cheaper_than_enumeration(benchmark, systems, fig5):
    """'the same performance trend ... only with lower absolute numbers'."""
    assert len(_COSTS) == 6
    table = BenchTable("Connection tests", ["system", "per-test ms"])
    for name, cost in sorted(_COSTS.items()):
        table.add_row(name, round(cost * 1000, 4))
    print()
    print(table.render())

    start, tag = fig5
    hopi = next(s for s in systems if s.name == "HOPI").flix

    def full_enumeration():
        return list(hopi.find_descendants(start, tag=tag))

    began = time.perf_counter()
    full_enumeration()
    enumeration_cost = time.perf_counter() - began
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # a single reachability probe is cheaper than enumerating everything
    assert _COSTS["HOPI"] < enumeration_cost + 1e-3


def test_bidirectional_connection_tests(benchmark, systems, oracle, pairs):
    """Section 5.2's optimization: bidirectional search stays correct."""
    flix = next(s for s in systems if s.name.startswith("HOPI-")).flix

    def run():
        answers = []
        for source, target, _expected in pairs:
            answers.append(
                flix.connection_test(source, target, max_distance=50,
                                     bidirectional=True)
            )
        return answers

    answers = benchmark.pedantic(run, rounds=2, iterations=1)
    for (source, target, expected), answer in zip(pairs, answers):
        assert (answer is not None) == expected
